//! Stream trace record/replay.
//!
//! Experiments must be repeatable against byte-identical inputs even
//! across machines; a [`Trace`] captures a stream's schema and element
//! sequence to JSON and replays it as a [`VecStream`].

use geostreams_core::model::{Element, GeoStream, StreamSchema, VecStream};
use serde::{Deserialize, Serialize};

/// A recorded stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Schema of the recorded stream.
    pub schema: StreamSchema,
    /// All recorded elements in order.
    pub elements: Vec<Element<f32>>,
}

impl Trace {
    /// Records a stream to completion.
    pub fn record<S: GeoStream<V = f32>>(stream: &mut S) -> Trace {
        let schema = stream.schema().clone();
        let mut elements = Vec::new();
        while let Some(el) = stream.next_element() {
            elements.push(el);
        }
        Trace { schema, elements }
    }

    /// Serializes to JSON bytes.
    pub fn to_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("trace serializes")
    }

    /// Deserializes from JSON bytes.
    pub fn from_json(bytes: &[u8]) -> Result<Trace, String> {
        serde_json::from_slice(bytes).map_err(|e| e.to_string())
    }

    /// Replays the trace as a stream.
    pub fn replay(&self) -> VecStream<f32> {
        VecStream::new(self.schema.clone(), self.elements.clone())
    }

    /// Number of point elements recorded.
    pub fn point_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_point()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::EarthModel;
    use crate::goes::goes_like;

    #[test]
    fn record_replay_round_trip() {
        let sc = goes_like(16, 8, 5);
        let mut original = sc.band_stream(0, 2);
        let trace = Trace::record(&mut original);
        assert_eq!(trace.point_count(), 2 * 16 * 8);

        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, trace);

        // Replay yields the identical element sequence.
        let mut replayed = back.replay();
        let mut fresh = sc.band_stream(0, 2);
        loop {
            let a = replayed.next_element();
            let b = fresh.next_element();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        let _ = EarthModel::new(0); // keep the import honest
    }

    #[test]
    fn corrupted_json_is_rejected() {
        assert!(Trace::from_json(b"{not json").is_err());
    }
}
