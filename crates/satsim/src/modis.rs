//! MODIS-like polar-orbiter preset.
//!
//! The paper's introduction names Aqua/Terra (MODIS) among the
//! instruments continuously streaming imagery. Unlike a staring
//! geostationary imager, a polar orbiter sweeps the globe: consecutive
//! granules (scan sectors) cover successive along-track swaths. The
//! preset uses the sinusoidal equal-area grid — the native projection of
//! the MODIS land products — and drifts each granule along track.

use crate::field::{BandKind, EarthModel};
use crate::instrument::{BandSpec, Instrument};
use crate::scanner::Scanner;
use geostreams_core::model::{Organization, TimeSemantics};
use geostreams_geo::{Coord, Crs, LatticeGeoref, Rect};

/// Builds a MODIS-like polar orbiter.
///
/// The first granule covers a swath starting at `(start_lon, start_lat)`
/// degrees; each subsequent granule advances one swath-height southward
/// along the descending track.
pub fn modis_like(width: u32, height: u32, start_lon: f64, start_lat: f64, seed: u64) -> Scanner {
    let sinu = Crs::Sinusoidal { lon0: 0.0 };
    // A swath ≈ 2330 km across track (the real MODIS swath) scaled to
    // keep granules compact relative to the requested grid.
    let origin = sinu.forward(Coord::new(start_lon, start_lat)).expect("start point projects");
    let swath_w = 2_330_000.0;
    let swath_h = swath_w * f64::from(height) / f64::from(width);
    let bounds = Rect::new(origin.x, origin.y - swath_h, origin.x + swath_w, origin.y);
    let base_lattice = LatticeGeoref::north_up(sinu, bounds, width, height);
    let instrument = Instrument {
        name: "modis-sim".into(),
        crs: sinu,
        organization: Organization::RowByRow,
        time_semantics: TimeSemantics::SectorId,
        bands: vec![
            BandSpec { id: 1, name: "red".into(), kind: BandKind::Visible, reduction: 1 },
            BandSpec { id: 2, name: "nir".into(), kind: BandKind::NearInfrared, reduction: 1 },
            BandSpec { id: 31, name: "tir".into(), kind: BandKind::ThermalIr, reduction: 2 },
        ],
        base_lattice,
        sector_period: 1,
        // Descending track: each granule is one swath-height further south.
        drift_per_sector: (0.0, -swath_h),
    };
    Scanner::new(instrument, EarthModel::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_core::model::{Element, GeoStream};

    #[test]
    fn granules_advance_along_track() {
        let sc = modis_like(32, 16, -100.0, 45.0, 8);
        let mut s = sc.band_stream(0, 3);
        let mut tops = Vec::new();
        while let Some(el) = s.next_element() {
            if let Element::SectorStart(si) = el {
                tops.push(si.lattice.world_bbox().y_max);
            }
        }
        assert_eq!(tops.len(), 3);
        assert!(tops[0] > tops[1] && tops[1] > tops[2], "southbound: {tops:?}");
    }

    #[test]
    fn sinusoidal_native_grid() {
        let sc = modis_like(16, 8, -100.0, 45.0, 8);
        let s = sc.band_stream(0, 1);
        assert_eq!(s.schema().crs, Crs::Sinusoidal { lon0: 0.0 });
    }

    #[test]
    fn ndvi_bands_share_resolution() {
        let sc = modis_like(16, 8, -100.0, 45.0, 8);
        assert_eq!(sc.instrument.band_lattice(0).width, sc.instrument.band_lattice(1).width);
        // Thermal band 31 is half resolution.
        assert_eq!(sc.instrument.band_lattice(2).width, 8);
        assert_eq!(sc.instrument.band_index(31), Some(2));
    }

    #[test]
    fn granule_radiance_is_sensible() {
        let sc = modis_like(24, 12, -100.0, 45.0, 8);
        let mut s = sc.band_stream(1, 1);
        let pts = s.drain_points();
        assert_eq!(pts.len(), 24 * 12);
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.value)));
    }
}
