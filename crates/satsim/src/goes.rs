//! GOES-like imager preset.
//!
//! The paper's prototype processes GOES imager data: 5 spectral channels
//! streamed row-by-row in the satellite-native "GOES Variable Format",
//! with a visible-band frame of up to 20 840 × 10 820 points at 1 km
//! resolution (§3.2) and IR channels at 4 km. This preset reproduces
//! that structure on the geostationary view projection at a configurable
//! scale factor (scale 1.0 ≈ the real CONUS sector dimensions; tests and
//! benches use small scales).

use crate::field::{BandKind, EarthModel};
use crate::instrument::{BandSpec, Instrument};
use crate::scanner::Scanner;
use geostreams_core::model::{Organization, TimeSemantics};
use geostreams_geo::{Coord, Crs, LatticeGeoref, Rect};

/// Sub-satellite longitude of the simulated GOES-East-like satellite.
pub const GOES_LON0: f64 = -75.0;

/// Full-scale CONUS-like sector dimensions for the visible band.
pub const FULL_VIS_WIDTH: u32 = 20_840;
/// Full-scale CONUS-like sector height for the visible band.
pub const FULL_VIS_HEIGHT: u32 = 10_820;

/// Builds a GOES-like scanner.
///
/// `vis_width`/`vis_height` set the visible-band sector dimensions
/// (IR bands deliver 1/4 of that per axis); radiance comes from
/// `EarthModel::new(seed)`.
pub fn goes_like(vis_width: u32, vis_height: u32, seed: u64) -> Scanner {
    let geos = Crs::geostationary(GOES_LON0);
    // A CONUS-ish scan sector in geostationary scan coordinates.
    let sw = geos.forward(Coord::new(-113.0, 22.0)).expect("CONUS visible from GOES-East");
    let ne = geos.forward(Coord::new(-68.0, 48.0)).expect("CONUS visible from GOES-East");
    let bounds = Rect::new(sw.x, sw.y, ne.x, ne.y);
    let base_lattice = LatticeGeoref::north_up(geos, bounds, vis_width, vis_height);
    let instrument = Instrument {
        name: "goes-sim".into(),
        crs: geos,
        organization: Organization::RowByRow,
        time_semantics: TimeSemantics::SectorId,
        bands: vec![
            BandSpec { id: 1, name: "b1-vis".into(), kind: BandKind::Visible, reduction: 1 },
            BandSpec { id: 2, name: "b2-nir".into(), kind: BandKind::NearInfrared, reduction: 4 },
            BandSpec { id: 3, name: "b3-wv".into(), kind: BandKind::WaterVapor, reduction: 4 },
            BandSpec { id: 4, name: "b4-ir".into(), kind: BandKind::ThermalIr, reduction: 4 },
            BandSpec { id: 5, name: "b5-ir".into(), kind: BandKind::ThermalIrDirty, reduction: 4 },
        ],
        base_lattice,
        sector_period: 1,
        drift_per_sector: (0.0, 0.0),
    };
    Scanner::new(instrument, EarthModel::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_core::model::GeoStream;

    #[test]
    fn preset_has_five_bands_with_goes_resolutions() {
        let sc = goes_like(64, 32, 1);
        assert_eq!(sc.instrument.bands.len(), 5);
        assert_eq!(sc.instrument.band_lattice(0).width, 64);
        assert_eq!(sc.instrument.band_lattice(1).width, 16); // 1/4
        assert_eq!(sc.instrument.crs, Crs::geostationary(GOES_LON0));
    }

    #[test]
    fn streams_carry_geostationary_lattices() {
        let sc = goes_like(32, 16, 1);
        let mut s = sc.band_stream(0, 1);
        assert_eq!(s.schema().crs, Crs::geostationary(GOES_LON0));
        let pts = s.drain_points();
        assert_eq!(pts.len(), 32 * 16);
        // Radiance is in [0, 1].
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.value)));
        // And not constant (the Earth has structure).
        let first = pts[0].value;
        assert!(pts.iter().any(|p| (p.value - first).abs() > 0.01));
    }

    #[test]
    fn full_scale_constants_match_the_paper() {
        // §3.2: "for GOES, the maximum frame size is about 20,840 by
        // 10,820 points for the visible band at 1km resolution".
        assert_eq!(FULL_VIS_WIDTH, 20_840);
        assert_eq!(FULL_VIS_HEIGHT, 10_820);
        // ≈280 MB at one byte per point, as the paper states.
        let bytes = FULL_VIS_WIDTH as u64 * FULL_VIS_HEIGHT as u64;
        assert!((bytes as f64 / 1e6 - 225.0).abs() < 60.0);
    }
}
