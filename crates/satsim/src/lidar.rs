//! LIDAR-like point-by-point preset (Fig. 1c).
//!
//! "Some instruments, such as LIDAR, have non-uniform point lattice
//! structures, and points are only ordered by time." The preset emits
//! small bursts on a fine lattice with measurement-time stamps — the
//! stream whose points, per §3.3, can never be composition-matched
//! against another stream.

use crate::field::{BandKind, EarthModel};
use crate::instrument::{BandSpec, Instrument};
use crate::scanner::Scanner;
use geostreams_core::model::{Organization, TimeSemantics};
use geostreams_geo::{Crs, LatticeGeoref, Rect};

/// Builds a LIDAR-like profiler over a ground swath.
pub fn lidar_profiler(swath: Rect, width: u32, height: u32, seed: u64) -> Scanner {
    let base_lattice = LatticeGeoref::north_up(Crs::LatLon, swath, width, height);
    let instrument = Instrument {
        name: "lidar".into(),
        crs: Crs::LatLon,
        organization: Organization::PointByPoint,
        time_semantics: TimeSemantics::MeasurementTime,
        bands: vec![BandSpec {
            id: 1,
            name: "elevation".into(),
            kind: BandKind::ThermalIr, // smooth terrain-like field
            reduction: 1,
        }],
        base_lattice,
        sector_period: 1,
        drift_per_sector: (0.0, swath.height() * 1.0),
    };
    Scanner::new(instrument, EarthModel::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_core::model::{Element, GeoStream};

    #[test]
    fn bursts_have_distinct_measurement_times() {
        let sc = lidar_profiler(Rect::new(0.0, 0.0, 1.0, 0.1), 64, 4, 9);
        let mut s = sc.band_stream(0, 1);
        let els = s.drain_elements();
        let stamps: Vec<i64> = els
            .iter()
            .filter_map(|e| match e {
                Element::FrameStart(fi) => Some(fi.timestamp.value()),
                _ => None,
            })
            .collect();
        assert!(stamps.len() > 2, "several bursts expected");
        for w in stamps.windows(2) {
            assert!(w[1] > w[0], "time strictly increases");
        }
    }

    #[test]
    fn point_by_point_organization_is_declared() {
        let sc = lidar_profiler(Rect::new(0.0, 0.0, 1.0, 0.1), 32, 2, 9);
        let s = sc.band_stream(0, 1);
        assert_eq!(s.schema().organization, Organization::PointByPoint);
        assert_eq!(s.schema().time_semantics, TimeSemantics::MeasurementTime);
    }
}
