//! Airborne frame-camera preset (Fig. 1a).
//!
//! "Airborne cameras typically obtain data in an image-by-image fashion
//! … several consecutive frames that cover possibly different spatial
//! regions." The camera flies north-east, each sector (= one captured
//! frame) shifted by a fraction of the footprint, so consecutive frames
//! overlap like a real photogrammetric strip.

use crate::field::{BandKind, EarthModel};
use crate::instrument::{BandSpec, Instrument};
use crate::scanner::Scanner;
use geostreams_core::model::{Organization, TimeSemantics};
use geostreams_geo::{Crs, LatticeGeoref, Rect};

/// Builds an airborne RGB-ish frame camera flying over the given start
/// footprint with 40 % forward overlap between consecutive frames.
pub fn airborne_camera(footprint: Rect, width: u32, height: u32, seed: u64) -> Scanner {
    let base_lattice = LatticeGeoref::north_up(Crs::LatLon, footprint, width, height);
    let drift = (footprint.width() * 0.6, footprint.height() * 0.6);
    let instrument = Instrument {
        name: "aircam".into(),
        crs: Crs::LatLon,
        organization: Organization::ImageByImage,
        time_semantics: TimeSemantics::SectorId,
        bands: vec![
            BandSpec { id: 1, name: "red".into(), kind: BandKind::Visible, reduction: 1 },
            BandSpec { id: 2, name: "nir".into(), kind: BandKind::NearInfrared, reduction: 1 },
        ],
        base_lattice,
        sector_period: 1,
        drift_per_sector: drift,
    };
    Scanner::new(instrument, EarthModel::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_core::model::{Element, GeoStream};

    #[test]
    fn frames_cover_shifting_overlapping_regions() {
        let sc = airborne_camera(Rect::new(-122.0, 37.0, -121.5, 37.4), 16, 16, 3);
        let mut s = sc.band_stream(0, 3);
        let mut footprints = Vec::new();
        while let Some(el) = s.next_element() {
            if let Element::SectorStart(si) = el {
                footprints.push(si.lattice.world_bbox());
            }
        }
        assert_eq!(footprints.len(), 3);
        // Consecutive frames overlap but are not identical.
        for w in footprints.windows(2) {
            assert!(w[0].intersects(&w[1]), "consecutive frames overlap");
            assert!(w[1].x_min > w[0].x_min, "the aircraft advances");
        }
        // Non-consecutive frames are disjoint (0.6 shift each).
        assert!(!footprints[0].intersects(&footprints[2]));
    }

    #[test]
    fn image_by_image_organization() {
        let sc = airborne_camera(Rect::new(0.0, 0.0, 1.0, 1.0), 8, 8, 1);
        let mut s = sc.band_stream(0, 2);
        let els = s.drain_elements();
        let frames = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        assert_eq!(frames, 2, "one frame per captured image");
    }
}
