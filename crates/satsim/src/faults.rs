//! Deterministic downlink fault injection.
//!
//! The paper's dataflow (Fig. 3) assumes a clean downlink, but real
//! GVAR/GOES feeds lose scan lines, duplicate blocks, reorder sectors,
//! corrupt values, stall, and cut out mid-sector. [`FaultPlan`] is a
//! *seeded* description of such degradation and [`ChaosStream`] applies
//! it to any [`GeoStream`], so every pipeline and test in the workspace
//! can run over a degraded feed — **reproducibly**: the same plan over
//! the same input produces the same faulted element sequence on every
//! run (stall faults burn wall time but never change the data).
//!
//! Fault taxonomy (see DESIGN.md "Fault model & recovery"):
//!
//! * **dropped elements** — individual points, whole row-frames, whole
//!   sectors, or the `FrameEnd`/`SectorEnd` markers that frame-scoped
//!   operators key their flushes on;
//! * **duplicated elements** — a block retransmitted by the link layer;
//! * **out-of-order elements** — an element held back and emitted after
//!   its successor;
//! * **value corruption** — bit errors surfacing as perturbed radiance;
//! * **latency stalls** — the feed pauses without disconnecting;
//! * **death / truncation** — the decoder crashes (`die_after`, the
//!   supervisor's restart trigger) or the downlink ends early
//!   (`truncate_after`).

use geostreams_core::model::{pack_queue, ChunkOrMarker, Element, GeoStream, StreamSchema};
use geostreams_core::stats::{OpReport, OpStats};
use geostreams_raster::Pixel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A seeded, declarative description of downlink degradation.
///
/// All probabilities are per-opportunity in `[0, 1]`; the default plan
/// injects nothing. Probabilistic decisions are drawn from a SplitMix64
/// stream keyed by `(seed, salt)`, so a plan is a pure function of its
/// seed and the input element sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed; two runs with the same seed inject identical faults.
    pub seed: u64,
    /// Probability that an individual point is lost.
    pub drop_point: f64,
    /// Probability that a whole frame (`FrameStart..FrameEnd`, e.g. a
    /// GOES scan line) is lost.
    pub drop_frame: f64,
    /// Probability that a whole sector is lost.
    pub drop_sector: f64,
    /// Probability that a `FrameEnd`/`SectorEnd` marker is lost — the
    /// fault that makes naive frame-scoped operators buffer forever.
    pub drop_end_marker: f64,
    /// Probability that an element is transmitted twice.
    pub duplicate: f64,
    /// Probability that an element is held back and emitted after its
    /// successor (pairwise disorder).
    pub reorder: f64,
    /// Probability that a point's value is perturbed.
    pub corrupt: f64,
    /// Maximum absolute perturbation applied to corrupted values.
    pub corrupt_magnitude: f64,
    /// Probability that the feed stalls before delivering an element.
    pub stall: f64,
    /// Stall duration in milliseconds (wall time only; data unchanged).
    pub stall_ms: u64,
    /// Kill the stream (simulated decoder crash) after this many input
    /// elements; [`FaultStats::died`] is set so a supervisor can
    /// distinguish death from a clean end.
    pub die_after: Option<u64>,
    /// End the stream early (truncated downlink) after this many input
    /// elements, without the death flag.
    pub truncate_after: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_point: 0.0,
            drop_frame: 0.0,
            drop_sector: 0.0,
            drop_end_marker: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            corrupt_magnitude: 0.1,
            stall: 0.0,
            stall_ms: 0,
            die_after: None,
            truncate_after: None,
        }
    }
}

impl FaultPlan {
    /// A no-fault plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Sets the per-point drop probability (builder style).
    pub fn with_dropped_points(mut self, p: f64) -> Self {
        self.drop_point = p;
        self
    }

    /// Sets the per-frame (scan-line) drop probability.
    pub fn with_dropped_rows(mut self, p: f64) -> Self {
        self.drop_frame = p;
        self
    }

    /// Sets the per-sector drop probability.
    pub fn with_dropped_sectors(mut self, p: f64) -> Self {
        self.drop_sector = p;
        self
    }

    /// Sets the end-marker (`FrameEnd`/`SectorEnd`) drop probability.
    pub fn with_dropped_end_markers(mut self, p: f64) -> Self {
        self.drop_end_marker = p;
        self
    }

    /// Sets the element duplication probability.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the pairwise reorder probability.
    pub fn with_reordering(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Sets the value-corruption probability and magnitude.
    pub fn with_corruption(mut self, p: f64, magnitude: f64) -> Self {
        self.corrupt = p;
        self.corrupt_magnitude = magnitude;
        self
    }

    /// Sets the stall probability and duration.
    pub fn with_stalls(mut self, p: f64, stall_ms: u64) -> Self {
        self.stall = p;
        self.stall_ms = stall_ms;
        self
    }

    /// Kills the stream after `n` input elements (decoder crash).
    pub fn with_death_after(mut self, n: u64) -> Self {
        self.die_after = Some(n);
        self
    }

    /// Truncates the downlink after `n` input elements.
    pub fn with_truncation_after(mut self, n: u64) -> Self {
        self.truncate_after = Some(n);
        self
    }

    /// The plan as armed for supervised ingest attempt `attempt`:
    /// lethal faults (`die_after`, `truncate_after`) only fire on the
    /// first attempt so a supervised restart can make progress, while
    /// probabilistic faults stay armed (the restart still runs over a
    /// degraded feed). Deterministic: depends only on `attempt`.
    pub fn for_attempt(&self, attempt: u32) -> FaultPlan {
        let mut plan = self.clone();
        if attempt > 0 {
            plan.die_after = None;
            plan.truncate_after = None;
        }
        plan
    }

    /// True when the plan injects nothing.
    pub fn is_benign(&self) -> bool {
        self.drop_point == 0.0
            && self.drop_frame == 0.0
            && self.drop_sector == 0.0
            && self.drop_end_marker == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.stall == 0.0
            && self.die_after.is_none()
            && self.truncate_after.is_none()
    }
}

/// Counts of injected faults, shared through [`ChaosStream::probe`] so
/// a supervisor can inspect them after the stream (or its thread) ends.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Input elements consumed from the wrapped stream.
    pub elements_in: u64,
    /// Individual points dropped.
    pub points_dropped: u64,
    /// Whole frames dropped.
    pub frames_dropped: u64,
    /// Whole sectors dropped.
    pub sectors_dropped: u64,
    /// `FrameEnd`/`SectorEnd` markers dropped.
    pub end_markers_dropped: u64,
    /// Elements transmitted twice.
    pub duplicated: u64,
    /// Elements emitted out of order.
    pub reordered: u64,
    /// Point values perturbed.
    pub corrupted: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// The stream was killed by `die_after` (supervisor restart
    /// trigger).
    pub died: bool,
    /// The stream ended early via `truncate_after`.
    pub truncated: bool,
}

impl FaultStats {
    /// Accumulates another attempt's counters into this one (flags OR).
    pub fn merge(&mut self, other: &FaultStats) {
        self.elements_in += other.elements_in;
        self.points_dropped += other.points_dropped;
        self.frames_dropped += other.frames_dropped;
        self.sectors_dropped += other.sectors_dropped;
        self.end_markers_dropped += other.end_markers_dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.corrupted += other.corrupted;
        self.stalls += other.stalls;
        self.died |= other.died;
        self.truncated |= other.truncated;
    }

    /// Total faults injected (excluding stalls, which change timing
    /// only).
    pub fn total_injected(&self) -> u64 {
        self.points_dropped
            + self.frames_dropped
            + self.sectors_dropped
            + self.end_markers_dropped
            + self.duplicated
            + self.reordered
            + self.corrupted
    }
}

/// Shared view of a [`ChaosStream`]'s fault counters; stays readable
/// after the stream was moved into an ingest thread.
#[derive(Debug, Default)]
pub struct FaultProbe {
    inner: Mutex<FaultStats>,
}

impl FaultProbe {
    /// Snapshot of the counters.
    pub fn stats(&self) -> FaultStats {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}

/// SplitMix64 step (same avalanche as [`crate::noise`]).
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`.
#[inline]
fn roll(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`GeoStream`] wrapper that degrades its input according to a
/// [`FaultPlan`]. Transparent in schema; deterministic in
/// `(plan.seed, salt, input sequence)`.
pub struct ChaosStream<S: GeoStream> {
    input: S,
    plan: FaultPlan,
    rng: u64,
    /// Already-faulted elements awaiting delivery.
    out: VecDeque<Element<S::V>>,
    /// Element held back by a reorder fault.
    held: Option<Element<S::V>>,
    /// Currently inside a dropped frame.
    skip_frame: bool,
    /// Currently inside a dropped sector.
    skip_sector: bool,
    ended: bool,
    stats: FaultStats,
    probe: Arc<FaultProbe>,
}

impl<S: GeoStream> ChaosStream<S> {
    /// Wraps `input` under `plan`. The `salt` decorrelates RNG streams
    /// that share a seed (use e.g. the band id, or the ingest attempt
    /// number) without losing run-to-run determinism.
    pub fn new(input: S, plan: FaultPlan, salt: u64) -> Self {
        let rng = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ 0x5A17_5A17_5A17_5A17;
        ChaosStream {
            input,
            plan,
            rng,
            out: VecDeque::new(),
            held: None,
            skip_frame: false,
            skip_sector: false,
            ended: false,
            stats: FaultStats::default(),
            probe: Arc::new(FaultProbe::default()),
        }
    }

    /// Shared handle to the fault counters (valid after the stream is
    /// moved into a thread, and after that thread dies).
    pub fn probe(&self) -> Arc<FaultProbe> {
        Arc::clone(&self.probe)
    }

    /// The fault counters so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats.clone()
    }

    fn sync_probe(&self) {
        let mut guard = self.probe.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = self.stats.clone();
    }

    /// Queues `el` for delivery, honoring a pending reorder hold.
    fn emit(&mut self, el: Element<S::V>) {
        if let Some(h) = self.held.take() {
            // The held element trails its successor: pairwise disorder.
            self.out.push_back(el);
            self.out.push_back(h);
        } else {
            self.out.push_back(el);
        }
    }

    /// Handles the clean end of the input: a held element is released
    /// (death drops it in [`Self::process_one`] instead).
    fn finish_input(&mut self) {
        self.ended = true;
        if let Some(h) = self.held.take() {
            self.out.push_back(h);
        }
        self.sync_probe();
    }

    /// Runs one input element through the fault machinery, queueing the
    /// survivors onto `self.out`. Shared by the scalar and chunked
    /// paths, so the RNG draw order — and therefore the injected fault
    /// sequence for a given seed — is identical in both.
    fn process_one(&mut self, el: Element<S::V>) {
        self.stats.elements_in += 1;
        if let Some(n) = self.plan.die_after {
            if self.stats.elements_in > n {
                self.stats.died = true;
                self.ended = true;
                self.held = None;
                self.sync_probe();
                return;
            }
        }
        if let Some(n) = self.plan.truncate_after {
            if self.stats.elements_in > n {
                self.stats.truncated = true;
                self.ended = true;
                self.held = None;
                self.sync_probe();
                return;
            }
        }
        if self.plan.stall > 0.0 && roll(&mut self.rng) < self.plan.stall {
            self.stats.stalls += 1;
            if self.plan.stall_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(self.plan.stall_ms));
            }
        }
        // Structural drops: whole sectors, whole frames, markers.
        let el = match el {
            Element::SectorStart(si) => {
                if roll(&mut self.rng) < self.plan.drop_sector {
                    self.stats.sectors_dropped += 1;
                    self.skip_sector = true;
                    return;
                }
                self.skip_sector = false;
                self.skip_frame = false;
                Element::SectorStart(si)
            }
            Element::SectorEnd(se) => {
                if self.skip_sector {
                    self.skip_sector = false;
                    return;
                }
                if roll(&mut self.rng) < self.plan.drop_end_marker {
                    self.stats.end_markers_dropped += 1;
                    return;
                }
                Element::SectorEnd(se)
            }
            Element::FrameStart(fi) => {
                if self.skip_sector {
                    return;
                }
                if roll(&mut self.rng) < self.plan.drop_frame {
                    self.stats.frames_dropped += 1;
                    self.skip_frame = true;
                    return;
                }
                self.skip_frame = false;
                Element::FrameStart(fi)
            }
            Element::FrameEnd(fe) => {
                if self.skip_sector {
                    return;
                }
                if self.skip_frame {
                    self.skip_frame = false;
                    return;
                }
                if roll(&mut self.rng) < self.plan.drop_end_marker {
                    self.stats.end_markers_dropped += 1;
                    return;
                }
                Element::FrameEnd(fe)
            }
            Element::Point(p) => {
                if self.skip_sector || self.skip_frame {
                    return;
                }
                if roll(&mut self.rng) < self.plan.drop_point {
                    self.stats.points_dropped += 1;
                    return;
                }
                if self.plan.corrupt > 0.0 && roll(&mut self.rng) < self.plan.corrupt {
                    self.stats.corrupted += 1;
                    let delta = (roll(&mut self.rng) * 2.0 - 1.0) * self.plan.corrupt_magnitude;
                    Element::point(p.cell, S::V::from_f64(p.value.to_f64() + delta))
                } else {
                    Element::Point(p)
                }
            }
        };
        if self.plan.duplicate > 0.0 && roll(&mut self.rng) < self.plan.duplicate {
            self.stats.duplicated += 1;
            self.out.push_back(el.clone());
        }
        if self.plan.reorder > 0.0 && self.held.is_none() && roll(&mut self.rng) < self.plan.reorder
        {
            self.stats.reordered += 1;
            self.held = Some(el);
            return;
        }
        self.emit(el);
        if self.stats.elements_in.is_multiple_of(1024) {
            self.sync_probe();
        }
    }
}

impl<S: GeoStream> GeoStream for ChaosStream<S> {
    type V = S::V;

    fn schema(&self) -> &StreamSchema {
        self.input.schema()
    }

    fn next_element(&mut self) -> Option<Element<S::V>> {
        loop {
            if let Some(el) = self.out.pop_front() {
                return Some(el);
            }
            if self.ended {
                return None;
            }
            match self.input.next_element() {
                Some(el) => self.process_one(el),
                None => self.finish_input(),
            }
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<S::V>> {
        loop {
            if let Some(item) = pack_queue(&mut self.out, budget) {
                return Some(item);
            }
            if self.ended {
                return None;
            }
            match self.input.next_chunk(budget.max(1)) {
                Some(ChunkOrMarker::Marker(m)) => self.process_one(m.into_element()),
                Some(ChunkOrMarker::Chunk(mut c)) => {
                    for p in c.points.drain(..) {
                        if self.ended {
                            // Death/truncation fired mid-run: the rest of
                            // the pulled input is never consumed, exactly
                            // as the scalar path never pulls past it.
                            break;
                        }
                        self.process_one(Element::Point(p));
                    }
                    if !self.ended {
                        if let Some(m) = c.end.take() {
                            self.process_one(m.into_element());
                        }
                    }
                    c.recycle();
                }
                None => self.finish_input(),
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.input.op_stats()
    }

    fn collect_stats(&self, out: &mut Vec<OpReport>) {
        self.input.collect_stats(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goes_like;
    use geostreams_core::model::{Element, GeoStream};

    fn drain(plan: FaultPlan) -> (Vec<Element<f32>>, FaultStats) {
        let mut s = ChaosStream::new(goes_like(16, 8, 3).band_stream(0, 2), plan, 0);
        let els = s.drain_elements();
        (els, s.fault_stats())
    }

    #[test]
    fn benign_plan_is_transparent() {
        let (els, stats) = drain(FaultPlan::seeded(1));
        let mut clean = goes_like(16, 8, 3).band_stream(0, 2);
        assert_eq!(els, clean.drain_elements());
        assert_eq!(stats.total_injected(), 0);
    }

    #[test]
    fn same_seed_same_faults() {
        let plan = FaultPlan::seeded(42)
            .with_dropped_rows(0.1)
            .with_dropped_points(0.05)
            .with_duplicates(0.05)
            .with_reordering(0.05)
            .with_corruption(0.02, 0.5);
        let (a, sa) = drain(plan.clone());
        let (b, sb) = drain(plan);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.total_injected() > 0, "{sa:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let base = FaultPlan::seeded(1).with_dropped_points(0.2);
        let (a, _) = drain(base.clone());
        let (b, _) = drain(FaultPlan { seed: 2, ..base });
        assert_ne!(a, b);
    }

    #[test]
    fn salt_decorrelates_shared_seed() {
        let plan = FaultPlan::seeded(7).with_dropped_points(0.2);
        let mut s1 = ChaosStream::new(goes_like(16, 8, 3).band_stream(0, 1), plan.clone(), 0);
        let mut s2 = ChaosStream::new(goes_like(16, 8, 3).band_stream(0, 1), plan, 1);
        assert_ne!(s1.drain_elements(), s2.drain_elements());
    }

    #[test]
    fn dropped_rows_remove_whole_frames() {
        let (els, stats) = drain(FaultPlan::seeded(11).with_dropped_rows(0.5));
        assert!(stats.frames_dropped > 0);
        // Protocol stays frame-balanced: drops remove start+points+end
        // together.
        let starts = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        let ends = els.iter().filter(|e| matches!(e, Element::FrameEnd(_))).count();
        assert_eq!(starts, ends);
        assert_eq!(starts as u64, 16 - stats.frames_dropped);
    }

    #[test]
    fn dropped_end_markers_unbalance_frames() {
        let (els, stats) = drain(FaultPlan::seeded(5).with_dropped_end_markers(0.3));
        assert!(stats.end_markers_dropped > 0);
        let starts = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        let ends = els.iter().filter(|e| matches!(e, Element::FrameEnd(_))).count();
        assert!(ends < starts, "starts={starts} ends={ends}");
    }

    #[test]
    fn death_sets_flag_and_ends_stream() {
        let (els, stats) = drain(FaultPlan::seeded(1).with_death_after(20));
        assert!(stats.died);
        assert!(!stats.truncated);
        assert_eq!(els.len(), 20);
    }

    #[test]
    fn truncation_is_not_death() {
        let (_, stats) = drain(FaultPlan::seeded(1).with_truncation_after(10));
        assert!(stats.truncated);
        assert!(!stats.died);
    }

    #[test]
    fn for_attempt_disarms_lethal_faults_after_first() {
        let plan = FaultPlan::seeded(1).with_death_after(5).with_dropped_points(0.1);
        assert_eq!(plan.for_attempt(0).die_after, Some(5));
        assert_eq!(plan.for_attempt(1).die_after, None);
        assert_eq!(plan.for_attempt(1).drop_point, 0.1);
    }

    #[test]
    fn probe_outlives_the_stream() {
        let plan = FaultPlan::seeded(9).with_dropped_points(0.3);
        let s = ChaosStream::new(goes_like(16, 8, 3).band_stream(0, 1), plan, 0);
        let probe = s.probe();
        let handle = std::thread::spawn(move || {
            let mut s = s;
            s.drain_elements().len()
        });
        let _ = handle.join().unwrap();
        assert!(probe.stats().points_dropped > 0);
    }

    #[test]
    fn reordering_swaps_adjacent_elements() {
        let (els, stats) = drain(FaultPlan::seeded(13).with_reordering(0.2));
        assert!(stats.reordered > 0);
        // Same multiset of elements, different order.
        let mut clean = goes_like(16, 8, 3).band_stream(0, 2).drain_elements();
        let mut got = els.clone();
        let key = |e: &Element<f32>| format!("{e:?}");
        clean.sort_by_key(key);
        got.sort_by_key(key);
        assert_eq!(clean, got);
    }
}
