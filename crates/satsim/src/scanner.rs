//! Stream generation: turning an instrument into GeoStreams.
//!
//! [`SyntheticStream`] lazily emits the element protocol for one band of
//! an instrument — sector metadata, frames shaped by the instrument's
//! point organization (Fig. 1 of the paper), and radiance points sampled
//! from the [`EarthModel`]. [`Scanner::multiplexed_transport`] emits the
//! physical downlink order of two bands (band-sequential for
//! image-by-image instruments, line-interleaved for row-by-row), which
//! is what the composition-buffering experiment consumes through
//! [`geostreams_core::model::split2`].

use crate::field::EarthModel;
use crate::instrument::Instrument;
use geostreams_core::model::{
    Chunk, ChunkOrMarker, Element, FrameEnd, FrameInfo, GeoStream, Marker, Organization,
    PointRecord, SectorEnd, SectorInfo, StreamSchema, TimeSemantics, Timestamp,
};
use geostreams_core::stats::OpStats;
use geostreams_geo::{Cell, CellBox, Coord, LatticeGeoref, Projection};

/// Number of points per frame for point-by-point instruments.
const POINT_BURST: u32 = 16;

/// A scanner pairs an instrument with the synthetic Earth.
#[derive(Debug, Clone)]
pub struct Scanner {
    /// Instrument description.
    pub instrument: Instrument,
    /// Radiance model.
    pub model: EarthModel,
}

impl Scanner {
    /// Creates a scanner.
    pub fn new(instrument: Instrument, model: EarthModel) -> Self {
        Scanner { instrument, model }
    }

    /// Lattice of `band_idx` for a given sector (applies per-sector
    /// drift for airborne-style instruments).
    pub fn sector_lattice(&self, band_idx: usize, sector: u64) -> LatticeGeoref {
        let mut lat = self.instrument.band_lattice(band_idx);
        let (dx, dy) = self.instrument_drift();
        lat.origin =
            Coord::new(lat.origin.x + dx * sector as f64, lat.origin.y + dy * sector as f64);
        lat
    }

    fn instrument_drift(&self) -> (f64, f64) {
        self.instrument.drift_per_sector
    }

    /// A lazy stream of `n_sectors` sectors for one band.
    pub fn band_stream(&self, band_idx: usize, n_sectors: u64) -> SyntheticStream {
        self.band_stream_from(band_idx, 0, n_sectors)
    }

    /// A lazy stream of `n_sectors` sectors for one band, starting at
    /// `first_sector` (the "now" of a live feed joining a downlink that
    /// has been transmitting for a while). Frame ids are assigned from
    /// the global scan position, so `band_stream_from(b, k, n)` emits
    /// exactly the frames (ids included) that sectors `[k, k+n)` of
    /// `band_stream(b, k+n)` would — archived history and a late-started
    /// live feed agree on identity.
    pub fn band_stream_from(
        &self,
        band_idx: usize,
        first_sector: u64,
        n_sectors: u64,
    ) -> SyntheticStream {
        let ins = &self.instrument;
        assert!(band_idx < ins.bands.len(), "band index out of range");
        let band = &ins.bands[band_idx];
        let mut schema = StreamSchema::new(format!("{}.{}", ins.name, band.name), ins.crs);
        schema.band = band.id;
        schema.organization = ins.organization;
        schema.time_semantics = ins.time_semantics;
        schema.value_range = (0.0, 1.0);
        schema.sector_lattice = Some(ins.band_lattice(band_idx));
        let projection = ins.crs.projection().expect("instrument CRS must project");
        SyntheticStream {
            scanner: self.clone(),
            band_idx,
            n_sectors: first_sector + n_sectors,
            projection,
            schema,
            sector: first_sector,
            row: 0,
            col: 0,
            burst_left: 0,
            next_frame_id: first_sector * self.frames_per_sector(band_idx),
            phase: Phase::SectorStart,
            lattice: None,
            stats: OpStats::default(),
            points_emitted: 0,
        }
    }

    /// Frames one sector of `band_idx` decomposes into (rows for
    /// row-by-row instruments, one whole image for frame cameras, point
    /// bursts for LIDAR-style instruments).
    pub fn frames_per_sector(&self, band_idx: usize) -> u64 {
        let lat = self.instrument.band_lattice(band_idx);
        match self.instrument.organization {
            Organization::ImageByImage => 1,
            Organization::RowByRow => u64::from(lat.height),
            Organization::PointByPoint => {
                u64::from(lat.height) * u64::from(lat.width.div_ceil(POINT_BURST))
            }
        }
    }

    /// Stream for a band selected by its id.
    pub fn band_stream_by_id(&self, band_id: u16, n_sectors: u64) -> Option<SyntheticStream> {
        self.instrument.band_index(band_id).map(|i| self.band_stream(i, n_sectors))
    }

    /// The physical downlink order of two bands over `n_sectors`
    /// sectors: `(side, element)` pairs where side 0 is `band_a`.
    ///
    /// * image-by-image instruments transmit band-sequentially: all of
    ///   `band_a`'s sector, then all of `band_b`'s;
    /// * row-by-row instruments interleave line by line;
    /// * point-by-point instruments alternate small bursts.
    pub fn multiplexed_transport(
        &self,
        band_a: usize,
        band_b: usize,
        n_sectors: u64,
    ) -> Vec<(u8, Element<f32>)> {
        let mut out = Vec::new();
        for sector in 0..n_sectors {
            let mut sa = self.band_stream(band_a, sector + 1);
            let mut sb = self.band_stream(band_b, sector + 1);
            // Skip to this sector.
            let a: Vec<Element<f32>> = sector_elements(&mut sa, sector);
            let b: Vec<Element<f32>> = sector_elements(&mut sb, sector);
            match self.instrument.organization {
                Organization::ImageByImage => {
                    out.extend(a.into_iter().map(|e| (0u8, e)));
                    out.extend(b.into_iter().map(|e| (1u8, e)));
                }
                Organization::RowByRow | Organization::PointByPoint => {
                    // Interleave frame groups (a line or a burst each).
                    let ga = frame_groups(a);
                    let gb = frame_groups(b);
                    let mut ita = ga.into_iter();
                    let mut itb = gb.into_iter();
                    loop {
                        match (ita.next(), itb.next()) {
                            (None, None) => break,
                            (x, y) => {
                                if let Some(g) = x {
                                    out.extend(g.into_iter().map(|e| (0u8, e)));
                                }
                                if let Some(g) = y {
                                    out.extend(g.into_iter().map(|e| (1u8, e)));
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Collects the elements of exactly one sector index from a stream.
fn sector_elements(stream: &mut SyntheticStream, sector: u64) -> Vec<Element<f32>> {
    let mut out = Vec::new();
    let mut in_target = false;
    while let Some(el) = stream.next_element() {
        match &el {
            Element::SectorStart(si) if si.sector_id == sector => {
                in_target = true;
                out.push(el);
            }
            Element::SectorEnd(se) if in_target => {
                let done = se.sector_id == sector;
                out.push(el);
                if done {
                    break;
                }
            }
            _ if in_target => out.push(el),
            _ => {}
        }
    }
    out
}

/// Splits a sector's elements into groups of whole frames (keeping the
/// sector markers attached to the first/last group).
fn frame_groups(els: Vec<Element<f32>>) -> Vec<Vec<Element<f32>>> {
    let mut groups: Vec<Vec<Element<f32>>> = vec![Vec::new()];
    for el in els {
        let boundary = matches!(el, Element::FrameEnd(_));
        groups.last_mut().expect("nonempty").push(el);
        if boundary {
            groups.push(Vec::new());
        }
    }
    groups.retain(|g| !g.is_empty());
    groups
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SectorStart,
    FrameStart,
    Points,
    FrameEnd,
    SectorEnd,
    Done,
}

/// A lazily-generated band stream (implements [`GeoStream`]).
pub struct SyntheticStream {
    scanner: Scanner,
    band_idx: usize,
    n_sectors: u64,
    projection: Box<dyn Projection>,
    schema: StreamSchema,
    sector: u64,
    row: u32,
    col: u32,
    burst_left: u32,
    next_frame_id: u64,
    phase: Phase,
    lattice: Option<LatticeGeoref>,
    stats: OpStats,
    points_emitted: u64,
}

impl SyntheticStream {
    fn timestamp(&self) -> Timestamp {
        match self.schema.time_semantics {
            TimeSemantics::SectorId => Timestamp::new(self.sector as i64),
            TimeSemantics::MeasurementTime => Timestamp::new(
                self.sector as i64 * self.scanner.instrument.sector_period * 1_000_000
                    + self.points_emitted as i64,
            ),
        }
    }

    fn sample(&self, lattice: &LatticeGeoref, cell: Cell) -> f32 {
        let w = lattice.cell_to_world(cell);
        let kind = self.scanner.instrument.bands[self.band_idx].kind;
        let t = self.sector as i64 * self.scanner.instrument.sector_period;
        match self.projection.inverse(w) {
            Ok(lonlat) => self.scanner.model.sample(kind, lonlat, t) as f32,
            Err(_) => 0.0, // off-Earth view (e.g. beyond the limb)
        }
    }

    /// Cells covered by the frame that starts at the current cursor.
    fn frame_cells(&self, lattice: &LatticeGeoref) -> CellBox {
        match self.scanner.instrument.organization {
            Organization::ImageByImage => CellBox::full(lattice.width, lattice.height),
            Organization::RowByRow => {
                CellBox::new(0, self.row, lattice.width.saturating_sub(1), self.row)
            }
            Organization::PointByPoint => {
                // A burst along the current row.
                let end = (self.col + POINT_BURST - 1).min(lattice.width.saturating_sub(1));
                CellBox::new(self.col, self.row, end, self.row)
            }
        }
    }
}

impl GeoStream for SyntheticStream {
    type V = f32;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<f32>> {
        loop {
            match self.phase {
                Phase::Done => return None,
                Phase::SectorStart => {
                    if self.sector >= self.n_sectors {
                        self.phase = Phase::Done;
                        continue;
                    }
                    let lattice = self.scanner.sector_lattice(self.band_idx, self.sector);
                    self.lattice = Some(lattice);
                    self.row = 0;
                    self.col = 0;
                    self.phase = Phase::FrameStart;
                    return Some(Element::SectorStart(SectorInfo {
                        sector_id: self.sector,
                        lattice,
                        band: self.scanner.instrument.bands[self.band_idx].id,
                        organization: self.scanner.instrument.organization,
                        timestamp: Timestamp::new(self.sector as i64),
                    }));
                }
                Phase::FrameStart => {
                    let lattice = self.lattice.expect("sector open");
                    if lattice.is_empty() || self.row >= lattice.height {
                        self.phase = Phase::SectorEnd;
                        continue;
                    }
                    let cells = self.frame_cells(&lattice);
                    self.burst_left = cells.width();
                    let info = FrameInfo {
                        frame_id: self.next_frame_id,
                        sector_id: self.sector,
                        timestamp: self.timestamp(),
                        cells,
                        // Event-time origin: the instrument materialized
                        // this frame *now*; e2e lag is measured from here.
                        synth_ns: geostreams_core::obs::now_ns(),
                    };
                    self.phase = Phase::Points;
                    self.stats.frames_out += 1;
                    return Some(Element::FrameStart(info));
                }
                Phase::Points => {
                    let lattice = self.lattice.expect("sector open");
                    let org = self.scanner.instrument.organization;
                    let frame_exhausted = match org {
                        Organization::ImageByImage => self.row >= lattice.height,
                        Organization::RowByRow => self.col >= lattice.width,
                        Organization::PointByPoint => {
                            self.burst_left == 0 || self.col >= lattice.width
                        }
                    };
                    if frame_exhausted {
                        self.phase = Phase::FrameEnd;
                        continue;
                    }
                    let cell = Cell::new(self.col, self.row);
                    let v = self.sample(&lattice, cell);
                    self.points_emitted += 1;
                    self.stats.points_out += 1;
                    // Advance the raster cursor.
                    self.col += 1;
                    if self.burst_left > 0 {
                        self.burst_left -= 1;
                    }
                    if self.col >= lattice.width && org == Organization::ImageByImage {
                        self.col = 0;
                        self.row += 1;
                    }
                    return Some(Element::Point(PointRecord { cell, value: v }));
                }
                Phase::FrameEnd => {
                    let lattice = self.lattice.expect("sector open");
                    let frame_id = self.next_frame_id;
                    self.next_frame_id += 1;
                    // Position the cursor for the next frame.
                    match self.scanner.instrument.organization {
                        Organization::ImageByImage => {
                            self.row = lattice.height; // sector complete
                        }
                        Organization::RowByRow => {
                            self.col = 0;
                            self.row += 1;
                        }
                        Organization::PointByPoint => {
                            if self.col >= lattice.width {
                                self.col = 0;
                                self.row += 1;
                            }
                        }
                    }
                    self.phase = if self.row >= lattice.height {
                        Phase::SectorEnd
                    } else {
                        Phase::FrameStart
                    };
                    return Some(Element::FrameEnd(FrameEnd { frame_id, sector_id: self.sector }));
                }
                Phase::SectorEnd => {
                    let id = self.sector;
                    self.sector += 1;
                    self.phase = Phase::SectorStart;
                    return Some(Element::SectorEnd(SectorEnd { sector_id: id }));
                }
            }
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<f32>> {
        let budget = budget.max(1);
        let mut chunk = Chunk::with_budget(budget);
        if self.phase != Phase::Points {
            // Marker phases emit exactly one element each; serve it
            // standalone through the scalar state machine so all phase
            // transitions stay in one place.
            let el = self.next_element()?;
            match Marker::from_element(el) {
                Ok(m) => {
                    chunk.recycle();
                    return Some(ChunkOrMarker::Marker(m));
                }
                Err(p) => chunk.points.push(p),
            }
        }
        // Points phase: emit the rest of the frame's run inline with the
        // exact scalar cursor semantics. `points_emitted` advances per
        // point because MeasurementTime timestamps derive from it.
        let lattice = self.lattice.expect("sector open");
        let org = self.scanner.instrument.organization;
        while chunk.points.len() < budget {
            let frame_exhausted = match org {
                Organization::ImageByImage => self.row >= lattice.height,
                Organization::RowByRow => self.col >= lattice.width,
                Organization::PointByPoint => self.burst_left == 0 || self.col >= lattice.width,
            };
            if frame_exhausted {
                self.phase = Phase::FrameEnd;
                // The scalar FrameEnd phase repositions the cursor and
                // picks the next phase; fold its marker into this run.
                if let Some(Ok(m)) = self.next_element().map(Marker::from_element) {
                    chunk.end = Some(m);
                }
                break;
            }
            let cell = Cell::new(self.col, self.row);
            let v = self.sample(&lattice, cell);
            self.points_emitted += 1;
            self.stats.points_out += 1;
            self.col += 1;
            if self.burst_left > 0 {
                self.burst_left -= 1;
            }
            if self.col >= lattice.width && org == Organization::ImageByImage {
                self.col = 0;
                self.row += 1;
            }
            chunk.points.push(PointRecord { cell, value: v });
        }
        if chunk.points.is_empty() {
            let end = chunk.end.take();
            chunk.recycle();
            return match end {
                Some(m) => Some(ChunkOrMarker::Marker(m)),
                None => self.next_chunk(budget),
            };
        }
        Some(ChunkOrMarker::Chunk(chunk))
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{BandKind, EarthModel};
    use crate::instrument::BandSpec;
    use geostreams_geo::{Crs, Rect};

    fn instrument(org: Organization) -> Instrument {
        Instrument {
            name: "sim".into(),
            crs: Crs::LatLon,
            organization: org,
            time_semantics: TimeSemantics::SectorId,
            bands: vec![
                BandSpec { id: 1, name: "vis".into(), kind: BandKind::Visible, reduction: 1 },
                BandSpec { id: 2, name: "nir".into(), kind: BandKind::NearInfrared, reduction: 1 },
            ],
            base_lattice: LatticeGeoref::north_up(
                Crs::LatLon,
                Rect::new(-100.0, 30.0, -92.0, 38.0),
                8,
                8,
            ),
            sector_period: 1,
            drift_per_sector: (0.0, 0.0),
        }
    }

    fn scanner(org: Organization) -> Scanner {
        Scanner::new(instrument(org), EarthModel::new(7))
    }

    #[test]
    fn row_by_row_emits_one_frame_per_row() {
        let mut s = scanner(Organization::RowByRow).band_stream(0, 1);
        let els = s.drain_elements();
        let frames = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        assert_eq!(frames, 8);
        let points = els.iter().filter(|e| e.is_point()).count();
        assert_eq!(points, 64);
    }

    #[test]
    fn image_by_image_emits_single_frame() {
        let mut s = scanner(Organization::ImageByImage).band_stream(0, 1);
        let els = s.drain_elements();
        let frames = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        assert_eq!(frames, 1);
        assert_eq!(els.iter().filter(|e| e.is_point()).count(), 64);
    }

    #[test]
    fn point_by_point_emits_bursts() {
        let mut s = scanner(Organization::PointByPoint).band_stream(0, 1);
        let els = s.drain_elements();
        let frames = els.iter().filter(|e| matches!(e, Element::FrameStart(_))).count();
        // 8 cols per row < 16-point burst: one burst per row.
        assert_eq!(frames, 8);
        assert_eq!(els.iter().filter(|e| e.is_point()).count(), 64);
    }

    #[test]
    fn sectors_advance_with_timestamps() {
        let mut s = scanner(Organization::RowByRow).band_stream(0, 3);
        let els = s.drain_elements();
        let sector_ids: Vec<u64> = els
            .iter()
            .filter_map(|e| match e {
                Element::SectorStart(si) => Some(si.sector_id),
                _ => None,
            })
            .collect();
        assert_eq!(sector_ids, vec![0, 1, 2]);
        for el in &els {
            if let Element::FrameStart(fi) = el {
                assert_eq!(fi.timestamp.value() as u64, fi.sector_id);
            }
        }
    }

    #[test]
    fn values_match_the_model_directly() {
        let sc = scanner(Organization::RowByRow);
        let mut s = sc.band_stream(0, 1);
        let lattice = sc.sector_lattice(0, 0);
        let pts = s.drain_points();
        for p in pts.iter().step_by(7) {
            let ll = lattice.cell_to_world(p.cell);
            let expect = sc.model.visible(ll, 0) as f32;
            assert_eq!(p.value, expect);
        }
    }

    #[test]
    fn stream_values_are_deterministic() {
        let a: Vec<f32> = scanner(Organization::RowByRow)
            .band_stream(0, 2)
            .drain_points()
            .iter()
            .map(|p| p.value)
            .collect();
        let b: Vec<f32> = scanner(Organization::RowByRow)
            .band_stream(0, 2)
            .drain_points()
            .iter()
            .map(|p| p.value)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn multiplexed_transport_band_sequential_for_images() {
        let sc = scanner(Organization::ImageByImage);
        let t = sc.multiplexed_transport(0, 1, 1);
        // First half all side 0, second half all side 1.
        let first_b = t.iter().position(|(s, _)| *s == 1).unwrap();
        assert!(t[..first_b].iter().all(|(s, _)| *s == 0));
        assert!(t[first_b..].iter().all(|(s, _)| *s == 1));
    }

    #[test]
    fn multiplexed_transport_interleaves_rows() {
        let sc = scanner(Organization::RowByRow);
        let t = sc.multiplexed_transport(0, 1, 1);
        // Longest run of one side ≈ one row's elements, far below a
        // whole image.
        let mut longest = 0;
        let mut run = 0;
        let mut cur = 2u8;
        for (s, _) in &t {
            if *s == cur {
                run += 1;
            } else {
                cur = *s;
                run = 1;
            }
            longest = longest.max(run);
        }
        assert!(longest <= 12, "longest same-side run {longest}");
    }

    #[test]
    fn measurement_time_gives_unique_timestamps() {
        let mut ins = instrument(Organization::PointByPoint);
        ins.time_semantics = TimeSemantics::MeasurementTime;
        let sc = Scanner::new(ins, EarthModel::new(7));
        let mut s = sc.band_stream(0, 1);
        let els = s.drain_elements();
        let mut stamps: Vec<i64> = els
            .iter()
            .filter_map(|e| match e {
                Element::FrameStart(fi) => Some(fi.timestamp.value()),
                _ => None,
            })
            .collect();
        let n = stamps.len();
        stamps.dedup();
        assert_eq!(stamps.len(), n, "burst timestamps must differ");
    }

    #[test]
    fn band_stream_from_matches_the_tail_of_a_full_run() {
        for org in [Organization::RowByRow, Organization::ImageByImage, Organization::PointByPoint]
        {
            let sc = scanner(org);
            let full: Vec<Element<f32>> = sc.band_stream(0, 4).drain_elements();
            let tail: Vec<Element<f32>> = sc.band_stream_from(0, 2, 2).drain_elements();
            // The late-started stream is exactly the suffix of the full
            // run from sector 2 on — frame ids included.
            let cut = full
                .iter()
                .position(|e| matches!(e, Element::SectorStart(si) if si.sector_id == 2))
                .unwrap();
            assert_eq!(&full[cut..], &tail[..], "{org}");
        }
    }

    #[test]
    fn drift_shifts_sector_lattices() {
        let mut ins = instrument(Organization::ImageByImage);
        ins.drift_per_sector = (1.0, 0.5);
        let sc = Scanner::new(ins, EarthModel::new(7));
        let l0 = sc.sector_lattice(0, 0);
        let l2 = sc.sector_lattice(0, 2);
        assert!((l2.origin.x - l0.origin.x - 2.0).abs() < 1e-12);
        assert!((l2.origin.y - l0.origin.y - 1.0).abs() < 1e-12);
    }
}
