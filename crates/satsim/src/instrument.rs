//! Instrument descriptions.

use crate::field::BandKind;
use geostreams_core::model::{Organization, TimeSemantics};
use geostreams_geo::{Crs, LatticeGeoref};
use serde::{Deserialize, Serialize};

/// One spectral band of an instrument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandSpec {
    /// Band identifier (1-based, GOES style).
    pub id: u16,
    /// Human-readable name (`"b1-visible"`).
    pub name: String,
    /// Radiance class sampled from the Earth model.
    pub kind: BandKind,
    /// Resolution divisor relative to the instrument's base lattice:
    /// 1 = full resolution, 4 = every 4th cell (GOES IR bands are 4 km
    /// against the 1 km visible band).
    pub reduction: u32,
}

/// A scanning instrument: bands, geometry, organization, and timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instrument {
    /// Instrument name (`"goes-sim"`).
    pub name: String,
    /// Native acquisition CRS of the point lattices.
    pub crs: Crs,
    /// Point organization of transmitted sectors (Fig. 1).
    pub organization: Organization,
    /// Timestamp semantics of transmitted points.
    pub time_semantics: TimeSemantics,
    /// Spectral bands.
    pub bands: Vec<BandSpec>,
    /// Full-resolution lattice of one scan sector.
    pub base_lattice: LatticeGeoref,
    /// Logical time between sector starts (ticks).
    pub sector_period: i64,
    /// World-coordinate offset of consecutive sector lattices (airborne
    /// frame cameras cover "possibly different spatial regions" per
    /// frame — Fig. 1a); `(0, 0)` for staring satellite instruments.
    pub drift_per_sector: (f64, f64),
}

impl Instrument {
    /// The lattice a band actually delivers (base lattice reduced by the
    /// band's resolution divisor).
    pub fn band_lattice(&self, band_idx: usize) -> LatticeGeoref {
        let r = self.bands[band_idx].reduction.max(1);
        self.base_lattice.reduced(r)
    }

    /// Index of a band by its id.
    pub fn band_index(&self, id: u16) -> Option<usize> {
        self.bands.iter().position(|b| b.id == id)
    }

    /// Points one band transmits per sector.
    pub fn band_points_per_sector(&self, band_idx: usize) -> u64 {
        self.band_lattice(band_idx).len()
    }

    /// Points transmitted per sector across all bands.
    pub fn points_per_sector(&self) -> u64 {
        (0..self.bands.len()).map(|i| self.band_points_per_sector(i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_geo::Rect;

    fn instrument() -> Instrument {
        Instrument {
            name: "test".into(),
            crs: Crs::LatLon,
            organization: Organization::RowByRow,
            time_semantics: TimeSemantics::SectorId,
            bands: vec![
                BandSpec { id: 1, name: "vis".into(), kind: BandKind::Visible, reduction: 1 },
                BandSpec { id: 2, name: "nir".into(), kind: BandKind::NearInfrared, reduction: 2 },
            ],
            base_lattice: LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8),
            sector_period: 1,
            drift_per_sector: (0.0, 0.0),
        }
    }

    #[test]
    fn band_lattices_respect_reduction() {
        let ins = instrument();
        assert_eq!(ins.band_lattice(0).width, 8);
        assert_eq!(ins.band_lattice(1).width, 4);
        assert_eq!(ins.band_points_per_sector(0), 64);
        assert_eq!(ins.band_points_per_sector(1), 16);
        assert_eq!(ins.points_per_sector(), 80);
    }

    #[test]
    fn band_lookup_by_id() {
        let ins = instrument();
        assert_eq!(ins.band_index(2), Some(1));
        assert_eq!(ins.band_index(9), None);
    }
}
