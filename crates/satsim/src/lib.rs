//! Remote-sensing instrument simulator.
//!
//! The paper's prototype ingests live GOES downlink (§4) — 20–60 GB/day
//! of multi-spectral imagery. This crate is the substitution documented
//! in DESIGN.md: a deterministic, seeded simulator that reproduces the
//! *stream-relevant* properties of such instruments —
//!
//! * the three point organizations of Fig. 1 (image-by-image, row-by-row,
//!   point-by-point),
//! * multi-band scan sectors with scan-sector-id (or measurement-time)
//!   timestamps,
//! * native acquisition coordinate systems (geostationary view for the
//!   GOES-like preset),
//! * band-dependent resolutions and physically plausible radiance
//!   (vegetation, clouds, diurnal cycles) so products like NDVI are
//!   meaningful,
//! * the transmission multiplexing of bands (band-sequential vs
//!   line-interleaved), which drives the composition-buffering
//!   experiment E3.
//!
//! Everything is reproducible from a seed; no external data is needed.

#![warn(missing_docs)]

pub mod airborne;
pub mod faults;
pub mod field;
pub mod goes;
pub mod instrument;
pub mod lidar;
pub mod modis;
pub mod noise;
pub mod scanner;
pub mod trace;

pub use faults::{ChaosStream, FaultPlan, FaultProbe, FaultStats};
pub use field::{BandKind, EarthModel};
pub use goes::goes_like;
pub use instrument::{BandSpec, Instrument};
pub use modis::modis_like;
pub use scanner::{Scanner, SyntheticStream};
