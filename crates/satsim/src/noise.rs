//! Seeded 2-D value noise with fractional Brownian motion.
//!
//! A tiny, dependency-free procedural noise generator: lattice hashes of
//! the integer cell corners, smoothly interpolated, summed over octaves.
//! Deterministic in `(seed, x, y)` so every experiment is reproducible.

/// Hashes an integer lattice point with a seed into `[0, 1)`.
#[inline]
fn lattice_hash(seed: u64, ix: i64, iy: i64) -> f64 {
    // SplitMix64-style avalanche over the packed coordinates.
    let mut z = seed
        ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (iy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Quintic smoothstep (C² continuous, Perlin's fade curve).
#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Single-octave value noise at `(x, y)`, output in `[0, 1)`.
pub fn value_noise(seed: u64, x: f64, y: f64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = fade(x - x0);
    let ty = fade(y - y0);
    let (ix, iy) = (x0 as i64, y0 as i64);
    let v00 = lattice_hash(seed, ix, iy);
    let v10 = lattice_hash(seed, ix + 1, iy);
    let v01 = lattice_hash(seed, ix, iy + 1);
    let v11 = lattice_hash(seed, ix + 1, iy + 1);
    let top = v00 + (v10 - v00) * tx;
    let bot = v01 + (v11 - v01) * tx;
    top + (bot - top) * ty
}

/// Fractional Brownian motion: `octaves` octaves of value noise with
/// per-octave frequency doubling and amplitude halving. Output ≈ `[0, 1]`.
pub fn fbm(seed: u64, x: f64, y: f64, octaves: u32) -> f64 {
    let mut total = 0.0;
    let mut amplitude = 0.5;
    let mut fx = x;
    let mut fy = y;
    let mut norm = 0.0;
    for octave in 0..octaves.max(1) {
        total += amplitude * value_noise(seed.wrapping_add(u64::from(octave) * 0x51F3), fx, fy);
        norm += amplitude;
        amplitude *= 0.5;
        fx *= 2.0;
        fy *= 2.0;
    }
    total / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed_and_position() {
        assert_eq!(value_noise(42, 1.5, 2.5), value_noise(42, 1.5, 2.5));
        assert_ne!(value_noise(42, 1.5, 2.5), value_noise(43, 1.5, 2.5));
        assert_ne!(value_noise(42, 1.5, 2.5), value_noise(42, 1.6, 2.5));
    }

    #[test]
    fn output_in_unit_interval() {
        for i in 0..200 {
            let x = (i as f64) * 0.37 - 30.0;
            let y = (i as f64) * 0.73 + 11.0;
            let v = value_noise(7, x, y);
            assert!((0.0..=1.0).contains(&v), "{v} at ({x},{y})");
            let f = fbm(7, x, y, 4);
            assert!((0.0..=1.0).contains(&f), "fbm {f} at ({x},{y})");
        }
    }

    #[test]
    fn noise_is_continuous() {
        // Tiny steps produce tiny value changes.
        let a = value_noise(1, 10.0, 10.0);
        let b = value_noise(1, 10.0 + 1e-6, 10.0);
        assert!((a - b).abs() < 1e-4);
    }

    #[test]
    fn noise_matches_lattice_at_integers() {
        // At integer coordinates, noise equals the corner hash.
        let v = value_noise(5, 3.0, 4.0);
        assert_eq!(v, lattice_hash(5, 3, 4));
    }

    #[test]
    fn one_octave_fbm_is_plain_value_noise() {
        for i in 0..50 {
            let x = i as f64 * 0.31;
            let y = i as f64 * 0.17;
            assert_eq!(fbm(9, x, y, 1), value_noise(9, x, y));
        }
    }

    #[test]
    fn fbm_has_more_detail_than_single_octave() {
        // Energy of small-step increments grows with octave count
        // (higher octaves contribute amplitude × frequency ≈ constant
        // per octave). Use a large sample for statistical stability.
        let var = |oct: u32| {
            let mut acc = 0.0;
            for i in 0..4000 {
                let x = i as f64 * 0.11;
                let y = (i % 37) as f64 * 0.29;
                let d = fbm(9, x + 0.03, y, oct) - fbm(9, x, y, oct);
                acc += d * d;
            }
            acc
        };
        assert!(var(6) > 1.1 * var(1), "var6={} var1={}", var(6), var(1));
    }

    #[test]
    fn negative_coordinates_work() {
        let v = value_noise(3, -10.25, -0.5);
        assert!((0.0..=1.0).contains(&v));
    }
}
