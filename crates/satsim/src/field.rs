//! The synthetic Earth: physically plausible radiance fields.
//!
//! Real remotely-sensed radiance has structure that the paper's
//! operators exploit and that the experiments' data products (NDVI,
//! split-window differences, aggregates) need to be meaningful:
//! vegetation raises near-infrared and lowers visible reflectance,
//! clouds are bright in both and cold in thermal IR, and everything
//! drifts over time. [`EarthModel`] synthesizes these fields from seeded
//! value noise — deterministic, continuous, and cheap to sample at any
//! geographic coordinate and logical time.

use crate::noise::fbm;
use geostreams_geo::Coord;
use serde::{Deserialize, Serialize};

/// Spectral band classes supported by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandKind {
    /// Visible reflectance (GOES band 1-like), 0..1.
    Visible,
    /// Near-infrared reflectance (vegetation-sensitive), 0..1.
    NearInfrared,
    /// Mid-IR / water-vapor channel, normalized 0..1.
    WaterVapor,
    /// Thermal infrared brightness temperature, normalized 0..1
    /// (0 ≈ 200 K, 1 ≈ 320 K).
    ThermalIr,
    /// "Dirty window" thermal channel (GOES channel 5-like): like
    /// [`BandKind::ThermalIr`] but attenuated by atmospheric moisture,
    /// so the split-window difference against the clean window senses
    /// water vapor.
    ThermalIrDirty,
}

/// A deterministic synthetic Earth radiance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarthModel {
    /// Master seed; all fields derive sub-seeds from it.
    pub seed: u64,
    /// Cloud speed in degrees of longitude per time tick.
    pub cloud_speed: f64,
}

impl EarthModel {
    /// Creates a model from a seed.
    pub fn new(seed: u64) -> Self {
        EarthModel { seed, cloud_speed: 0.08 }
    }

    /// Static vegetation density at a geographic coordinate, 0..1.
    /// Higher toward temperate latitudes, modulated by terrain noise.
    pub fn vegetation(&self, lonlat: Coord) -> f64 {
        let base = fbm(self.seed ^ VEG_SEED, lonlat.x * 0.05, lonlat.y * 0.05, 5);
        // Suppress vegetation at extreme latitudes (deserts/ice caps are
        // driven by the noise itself).
        let lat_factor = (1.0 - (lonlat.y.abs() / 90.0).powi(2)).max(0.0);
        (base * 1.3 - 0.15).clamp(0.0, 1.0) * lat_factor
    }

    /// Cloud optical thickness at a coordinate and time, 0..1. Clouds
    /// drift eastward with `cloud_speed`.
    pub fn cloud(&self, lonlat: Coord, t: i64) -> f64 {
        let drift = self.cloud_speed * t as f64;
        let raw = fbm(
            self.seed ^ 0xC10D,
            (lonlat.x - drift) * 0.08,
            lonlat.y * 0.08 + (t as f64) * 0.002,
            4,
        );
        // Threshold so much of the sky is clear.
        ((raw - 0.55) * 3.0).clamp(0.0, 1.0)
    }

    /// Soil brightness (bare-ground albedo variation), 0..1.
    fn soil(&self, lonlat: Coord) -> f64 {
        fbm(self.seed ^ 0x5011, lonlat.x * 0.11, lonlat.y * 0.11, 3)
    }

    /// Visible-band reflectance, 0..1.
    pub fn visible(&self, lonlat: Coord, t: i64) -> f64 {
        let veg = self.vegetation(lonlat);
        let soil = self.soil(lonlat);
        let ground = 0.08 + 0.25 * soil - 0.10 * veg;
        let cloud = self.cloud(lonlat, t);
        (ground * (1.0 - cloud) + 0.85 * cloud).clamp(0.0, 1.0)
    }

    /// Near-infrared reflectance, 0..1 (vegetation is bright here).
    pub fn near_infrared(&self, lonlat: Coord, t: i64) -> f64 {
        let veg = self.vegetation(lonlat);
        let soil = self.soil(lonlat);
        let ground = 0.12 + 0.18 * soil + 0.45 * veg;
        let cloud = self.cloud(lonlat, t);
        (ground * (1.0 - cloud) + 0.80 * cloud).clamp(0.0, 1.0)
    }

    /// Water-vapor channel, 0..1.
    pub fn water_vapor(&self, lonlat: Coord, t: i64) -> f64 {
        let humid = fbm(self.seed ^ 0x1120, lonlat.x * 0.06 + t as f64 * 0.01, lonlat.y * 0.06, 4);
        (0.3 + 0.5 * humid + 0.2 * self.cloud(lonlat, t)).clamp(0.0, 1.0)
    }

    /// Thermal-IR brightness temperature, normalized 0..1
    /// (≈ 200–320 K). Cloud tops are cold; the surface cools toward the
    /// poles and with a mild diurnal cycle.
    pub fn thermal_ir(&self, lonlat: Coord, t: i64) -> f64 {
        let lat_cool = (lonlat.y.abs() / 90.0).powi(2) * 0.35;
        let diurnal = 0.04 * ((t as f64) * 0.26).sin();
        let surface = 0.78 - lat_cool + diurnal + 0.05 * self.soil(lonlat);
        let cloud = self.cloud(lonlat, t);
        (surface * (1.0 - cloud) + 0.25 * cloud).clamp(0.0, 1.0)
    }

    /// "Dirty window" brightness temperature: the clean thermal window
    /// depressed by column moisture (the split-window signal).
    pub fn thermal_ir_dirty(&self, lonlat: Coord, t: i64) -> f64 {
        let clean = self.thermal_ir(lonlat, t);
        let moisture = self.water_vapor(lonlat, t);
        (clean - 0.06 * moisture).clamp(0.0, 1.0)
    }

    /// Samples a band at a geographic coordinate and logical time.
    pub fn sample(&self, kind: BandKind, lonlat: Coord, t: i64) -> f64 {
        match kind {
            BandKind::Visible => self.visible(lonlat, t),
            BandKind::NearInfrared => self.near_infrared(lonlat, t),
            BandKind::WaterVapor => self.water_vapor(lonlat, t),
            BandKind::ThermalIr => self.thermal_ir(lonlat, t),
            BandKind::ThermalIrDirty => self.thermal_ir_dirty(lonlat, t),
        }
    }

    /// Ground-truth NDVI at a clear-sky coordinate (for validation).
    pub fn true_ndvi(&self, lonlat: Coord, t: i64) -> f64 {
        let nir = self.near_infrared(lonlat, t);
        let vis = self.visible(lonlat, t);
        if nir + vis <= 0.0 {
            0.0
        } else {
            (nir - vis) / (nir + vis)
        }
    }
}

/// Sub-seed salt for the vegetation field.
const VEG_SEED: u64 = 0x7E6E;

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EarthModel {
        EarthModel::new(20_060_330)
    }

    #[test]
    fn fields_are_deterministic() {
        let m = model();
        let p = Coord::new(-95.0, 38.0);
        assert_eq!(m.visible(p, 5), m.visible(p, 5));
        assert_eq!(m.sample(BandKind::ThermalIr, p, 9), m.thermal_ir(p, 9));
    }

    #[test]
    fn fields_stay_in_unit_range() {
        let m = model();
        for i in 0..200 {
            let p = Coord::new(-130.0 + i as f64 * 0.7, -60.0 + i as f64 * 0.6);
            for kind in [
                BandKind::Visible,
                BandKind::NearInfrared,
                BandKind::WaterVapor,
                BandKind::ThermalIr,
            ] {
                let v = m.sample(kind, p, i);
                assert!((0.0..=1.0).contains(&v), "{kind:?} {v} at {p}");
            }
        }
    }

    #[test]
    fn vegetation_raises_ndvi() {
        let m = model();
        // Find a high-veg and a low-veg clear-sky point.
        let mut high = None;
        let mut low = None;
        for i in 0..4000 {
            let p = Coord::new(-140.0 + (i % 80) as f64, -40.0 + (i / 80) as f64);
            if m.cloud(p, 0) > 0.01 {
                continue;
            }
            let v = m.vegetation(p);
            if v > 0.6 && high.is_none() {
                high = Some(p);
            }
            if v < 0.05 && low.is_none() {
                low = Some(p);
            }
        }
        let (high, low) = (high.expect("dense veg exists"), low.expect("barren exists"));
        assert!(
            m.true_ndvi(high, 0) > m.true_ndvi(low, 0) + 0.2,
            "ndvi(veg)={} ndvi(barren)={}",
            m.true_ndvi(high, 0),
            m.true_ndvi(low, 0)
        );
    }

    #[test]
    fn clouds_move_with_time() {
        let m = model();
        // Find a clearly cloudy point at t=0.
        let mut cloudy = None;
        for i in 0..4000 {
            let p = Coord::new(-160.0 + (i % 100) as f64 * 0.8, -50.0 + (i / 100) as f64 * 2.0);
            if m.cloud(p, 0) > 0.8 {
                cloudy = Some(p);
                break;
            }
        }
        let p = cloudy.expect("some cloud exists");
        // Far in the future the cloud field at this point has changed.
        let later = m.cloud(p, 500);
        assert!((m.cloud(p, 0) - later).abs() > 0.05, "cloud field should evolve");
    }

    #[test]
    fn clouds_brighten_visible_and_cool_ir() {
        let m = model();
        // Scan a dense grid for the thickest cloud and a clear pixel at
        // comparable latitude.
        let mut best_cloud = (0.0, Coord::new(0.0, 0.0));
        let mut clear = None;
        for i in 0..40_000 {
            let p = Coord::new(-170.0 + (i % 200) as f64 * 0.85, -50.0 + (i / 200) as f64 * 0.5);
            let c = m.cloud(p, 0);
            if c > best_cloud.0 {
                best_cloud = (c, p);
            }
            if c < 1e-9 && clear.is_none() {
                clear = Some(p);
            }
        }
        let (thickness, pc) = best_cloud;
        assert!(thickness > 0.6, "a thick cloud exists somewhere: {thickness}");
        let pl = clear.expect("clear sky exists");
        assert!(
            m.visible(pc, 0) > 0.5,
            "thick cloud is bright: {} (thickness {thickness})",
            m.visible(pc, 0)
        );
        // Compare IR against a clear pixel at the *same* latitude to
        // remove the pole-equator gradient.
        let pl_same_lat = Coord::new(pl.x, pc.y);
        assert!(
            m.thermal_ir(pc, 0) < m.thermal_ir(pl_same_lat, 0) + 0.1,
            "cloud tops are cold-ish"
        );
    }

    #[test]
    fn poles_are_colder_than_tropics() {
        let m = model();
        let tropics = m.thermal_ir(Coord::new(-60.0, 5.0), 0);
        let pole = m.thermal_ir(Coord::new(-60.0, 85.0), 0);
        assert!(tropics > pole + 0.1, "tropics {tropics} vs pole {pole}");
    }
}
