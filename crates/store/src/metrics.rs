//! `geostreams_store_*` metrics, registered on the DSMS's shared
//! [`Registry`] so they render on the same `/metrics` endpoint as the
//! server and pipeline metrics.

use geostreams_core::obs::{Counter, Gauge, HistogramHandle, Registry};

/// Cloneable bundle of store metric handles.
#[derive(Clone)]
pub struct StoreMetrics {
    /// Live (non-evicted) segment files.
    pub segments: Gauge,
    /// Compressed bytes appended to segments (records incl. headers).
    pub bytes_written: Counter,
    /// Raw pixel bytes represented (4 bytes per delivered point).
    pub raw_bytes: Counter,
    /// Frames persisted.
    pub frames_persisted: Counter,
    /// Tile records written.
    pub tiles_written: Counter,
    /// Decoded-tile cache hits.
    pub cache_hits: Counter,
    /// Decoded-tile cache misses.
    pub cache_misses: Counter,
    /// Segments evicted by retention.
    pub evicted_segments: Counter,
    /// Points dropped at ingest (orphans outside any open frame or
    /// outside the frame's declared cell range).
    pub dropped_points: Counter,
    /// Compression ratio ×1000 (raw bytes / written bytes), updated on
    /// every frame flush.
    pub compression_ratio_permille: Gauge,
    /// Backfill latency: nanoseconds from replay start to the live
    /// splice, one observation per hybrid query.
    pub backfill_ns: HistogramHandle,
    /// Frames restored from the write-ahead log at recovery.
    pub recovery_frames: Counter,
    /// Bytes discarded at recovery (uncommitted tails, torn records,
    /// superseded WAL files).
    pub recovery_bytes_discarded: Counter,
    /// Integrity-check failures: CRC mismatches on WAL frames, segment
    /// records, or tile payloads served to readers.
    pub corruption_detected: Counter,
    /// Group-commit records written to the WAL.
    pub wal_commits: Counter,
    /// Bytes appended to the WAL (kept separate from `bytes_written`,
    /// which tracks segment bytes only).
    pub wal_bytes: Counter,
    /// Damaged segment/WAL tails truncated at recovery.
    pub truncated_tails: Counter,
    /// Splice handoffs refused because backfill replay failed (the gap
    /// between archive and live tail could not be verified).
    pub splice_refused: Counter,
}

impl StoreMetrics {
    /// Registers every store metric (idempotent per registry: handles
    /// alias the same underlying series).
    pub fn register(registry: &Registry) -> StoreMetrics {
        for (name, help) in [
            ("geostreams_store_segments", "Live (non-evicted) segment files."),
            (
                "geostreams_store_bytes_written_total",
                "Compressed bytes appended to archive segments.",
            ),
            (
                "geostreams_store_raw_bytes_total",
                "Raw pixel bytes represented by archived points (4 bytes each).",
            ),
            ("geostreams_store_frames_persisted_total", "Frames persisted to the archive."),
            ("geostreams_store_tiles_written_total", "Tile records written to segments."),
            ("geostreams_store_tile_cache_hits_total", "Decoded-tile cache hits."),
            ("geostreams_store_tile_cache_misses_total", "Decoded-tile cache misses."),
            (
                "geostreams_store_evicted_segments_total",
                "Segments evicted by the retention policy.",
            ),
            (
                "geostreams_store_dropped_points_total",
                "Points dropped at ingest (protocol damage).",
            ),
            (
                "geostreams_store_compression_ratio_permille",
                "Compression ratio x1000 (raw bytes / written bytes).",
            ),
            (
                "geostreams_store_backfill_ns",
                "Backfill latency in nanoseconds per hybrid query splice.",
            ),
            (
                "geostreams_store_recovery_frames_total",
                "Frames restored from the write-ahead log at recovery.",
            ),
            (
                "geostreams_store_recovery_bytes_discarded_total",
                "Bytes discarded at recovery (uncommitted or damaged tails).",
            ),
            (
                "geostreams_store_corruption_detected_total",
                "CRC integrity failures on WAL, segment, or tile bytes.",
            ),
            ("geostreams_store_wal_commits_total", "Group-commit records written to the WAL."),
            ("geostreams_store_wal_bytes_total", "Bytes appended to the write-ahead log."),
            (
                "geostreams_store_truncated_tail_total",
                "Damaged segment/WAL tails truncated at recovery.",
            ),
            (
                "geostreams_store_splice_refused_total",
                "Splice handoffs refused after a failed backfill replay.",
            ),
        ] {
            registry.set_help(name, help);
        }
        StoreMetrics {
            segments: registry.gauge("geostreams_store_segments", &[]),
            bytes_written: registry.counter("geostreams_store_bytes_written_total", &[]),
            raw_bytes: registry.counter("geostreams_store_raw_bytes_total", &[]),
            frames_persisted: registry.counter("geostreams_store_frames_persisted_total", &[]),
            tiles_written: registry.counter("geostreams_store_tiles_written_total", &[]),
            cache_hits: registry.counter("geostreams_store_tile_cache_hits_total", &[]),
            cache_misses: registry.counter("geostreams_store_tile_cache_misses_total", &[]),
            evicted_segments: registry.counter("geostreams_store_evicted_segments_total", &[]),
            dropped_points: registry.counter("geostreams_store_dropped_points_total", &[]),
            compression_ratio_permille: registry
                .gauge("geostreams_store_compression_ratio_permille", &[]),
            backfill_ns: registry.histogram("geostreams_store_backfill_ns", &[]),
            recovery_frames: registry.counter("geostreams_store_recovery_frames_total", &[]),
            recovery_bytes_discarded: registry
                .counter("geostreams_store_recovery_bytes_discarded_total", &[]),
            corruption_detected: registry
                .counter("geostreams_store_corruption_detected_total", &[]),
            wal_commits: registry.counter("geostreams_store_wal_commits_total", &[]),
            wal_bytes: registry.counter("geostreams_store_wal_bytes_total", &[]),
            truncated_tails: registry.counter("geostreams_store_truncated_tail_total", &[]),
            splice_refused: registry.counter("geostreams_store_splice_refused_total", &[]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_render_on_the_registry() {
        let reg = Registry::new();
        let m = StoreMetrics::register(&reg);
        m.bytes_written.add(100);
        m.raw_bytes.add(400);
        m.segments.set(2);
        m.backfill_ns.record(1_000);
        let text = reg.render_prometheus();
        assert!(text.contains("geostreams_store_bytes_written_total 100"));
        assert!(text.contains("geostreams_store_segments 2"));
        assert!(text.contains("geostreams_store_backfill_ns"));
    }
}
