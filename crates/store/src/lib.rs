//! # GeoStreams store: a tiled raster archive for streaming image data
//!
//! The paper's temporal restriction `G|T` (§3.1) is only honest for
//! windows that reach into the past if the DSMS retains history. This
//! crate is that history: a compact, chunked time-series store in the
//! spirit of compact raster-time-series representations and tiled image
//! serving layers, built for the GeoStreams element protocol.
//!
//! * **Write path** — [`Archive::ingest`] consumes live stream elements
//!   and persists frames as fixed-width column stripes (**tiles**),
//!   delta-compressed against the previous frame (quantization + byte
//!   planes + PackBits, see [`codec`]), appended to segment files with a
//!   sparse in-memory index `(band, sector, frame, tile) → offset`.
//! * **Read path** — [`ArchiveReplay`] replays any `[t0, t1) × region`
//!   slice in lattice order as a standard `GeoStream`, decoding only
//!   tiles that intersect the spatial restriction.
//! * **Splice** — [`SpliceStream`] runs backfill-from-archive, then
//!   hands off to the live feed exactly once at the recorded frame
//!   watermark; wrapped in `StreamRepair`, the seam is gap- and
//!   duplicate-free even under faulty downlinks.
//! * **Retention** — append-only segments are evicted oldest-first,
//!   segment-granular, under byte and frame budgets
//!   ([`ArchiveConfig::retention_max_bytes`] /
//!   [`ArchiveConfig::retention_max_frames`]).
//! * **Observability** — [`StoreMetrics`] lands `geostreams_store_*`
//!   series on the DSMS `/metrics` endpoint.

#![warn(missing_docs)]
// Tests may unwrap freely; the deny applies to library code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod archive;
pub mod codec;
pub mod metrics;
pub mod replay;
pub mod segment;
pub mod vfs;
pub mod wal;

pub use archive::{Archive, ArchiveConfig, ArchiveStats, RecoveryReport};
pub use codec::Codec;
pub use metrics::StoreMetrics;
pub use replay::{ArchiveReplay, SpliceStream};
pub use vfs::{ChaosVfs, DiskFaultPlan, DiskFaultProbe, DiskFaultStats, StdVfs, Vfs, VfsFile};
pub use wal::{BandWatermark, FsyncPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_core::model::{Element, GeoStream};
    use geostreams_core::query::ReplayProvider;
    use geostreams_satsim::{goes_like, Scanner};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gs-store-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn scanner() -> Scanner {
        goes_like(96, 48, 7)
    }

    /// Ingests `n_sectors` sectors of band `band_idx` and returns the
    /// drained elements for comparison.
    fn ingest_band(
        archive: &Archive,
        scanner: &Scanner,
        band_idx: usize,
        n_sectors: u64,
    ) -> Vec<Element<f32>> {
        let mut stream = scanner.band_stream(band_idx, n_sectors);
        let band = stream.schema().band;
        archive.bind_band(stream.schema()).unwrap();
        let mut seen = Vec::new();
        while let Some(el) = stream.next_element() {
            archive.ingest(band, &el).unwrap();
            seen.push(el);
        }
        seen
    }

    fn frame_ids(elements: &[Element<f32>]) -> Vec<u64> {
        elements
            .iter()
            .filter_map(|el| match el {
                Element::FrameStart(fi) => Some(fi.frame_id),
                _ => None,
            })
            .collect()
    }

    fn points(elements: &[Element<f32>]) -> Vec<(u32, u32, f32)> {
        elements
            .iter()
            .filter_map(|el| match el {
                Element::Point(p) => Some((p.cell.col, p.cell.row, p.value)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn replay_reproduces_the_ingested_run() {
        let dir = tmp_dir("roundtrip");
        let archive = Archive::create(ArchiveConfig::new(&dir)).unwrap();
        let sc = scanner();
        let live: Vec<Element<f32>> = ingest_band(&archive, &sc, 0, 3);
        let band = sc.band_stream(0, 1).schema().band;

        let mut replay = archive.replay(band, None, None, None).unwrap();
        let mut got = Vec::new();
        while let Some(el) = replay.next_element() {
            got.push(el);
        }
        assert_eq!(frame_ids(&got), frame_ids(&live));
        let (lp, gp) = (points(&live), points(&got));
        assert_eq!(lp.len(), gp.len());
        for ((lc, lr, lv), (gc, gr, gv)) in lp.iter().zip(&gp) {
            assert_eq!((lc, lr), (gc, gr));
            // Quant16 default: within one quantization step of range (0,1).
            assert!((lv - gv).abs() < 1.0 / 65534.0, "{lv} vs {gv}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lossless_codec_replays_bitwise() {
        let dir = tmp_dir("lossless");
        let mut cfg = ArchiveConfig::new(&dir);
        cfg.codec = Codec::LosslessF32;
        let archive = Archive::create(cfg).unwrap();
        let sc = scanner();
        let live = ingest_band(&archive, &sc, 1, 2);
        let band = sc.band_stream(1, 1).schema().band;
        let mut replay = archive.replay(band, None, None, None).unwrap();
        let mut got = Vec::new();
        while let Some(el) = replay.next_element() {
            got.push(el);
        }
        let (lp, gp) = (points(&live), points(&got));
        assert_eq!(lp.len(), gp.len());
        for ((lc, lr, lv), (gc, gr, gv)) in lp.iter().zip(&gp) {
            assert_eq!((lc, lr), (gc, gr));
            assert_eq!(lv.to_bits(), gv.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pooled_decode_replays_identically() {
        // Same archive, serial vs pool-decoded replay: the flattened
        // element sequences must match bit for bit (the pool only
        // reorders decode work, never output). Zero cache capacity
        // would force every tile down the decode path, but the default
        // config already misses on first touch — run each replay on a
        // fresh archive handle so neither is warmed by the other.
        let dir = tmp_dir("pooled");
        let mut cfg = ArchiveConfig::new(&dir);
        cfg.codec = Codec::LosslessF32;
        let archive = Archive::create(cfg.clone()).unwrap();
        let sc = scanner();
        ingest_band(&archive, &sc, 0, 3);
        let band = sc.band_stream(0, 1).schema().band;
        let drain = |mut r: ArchiveReplay| {
            let mut got = Vec::new();
            while let Some(el) = r.next_element() {
                got.push(el);
            }
            assert!(!r.failed());
            got
        };
        let serial = drain(archive.replay(band, None, None, None).unwrap());
        for workers in [0, 3] {
            let pool = std::sync::Arc::new(geostreams_core::exec::WorkerPool::new(workers));
            let archive2 = Archive::open(cfg.clone()).unwrap();
            let pooled =
                drain(archive2.replay(band, None, None, None).unwrap().with_decode_pool(pool));
            assert_eq!(frame_ids(&serial), frame_ids(&pooled));
            let (sp, pp) = (points(&serial), points(&pooled));
            assert_eq!(sp.len(), pp.len());
            for ((sc_, sr, sv), (pc, pr, pv)) in sp.iter().zip(&pp) {
                assert_eq!((sc_, sr), (pc, pr));
                assert_eq!(sv.to_bits(), pv.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temporal_window_selects_a_slice() {
        let dir = tmp_dir("window");
        let archive = Archive::create(ArchiveConfig::new(&dir)).unwrap();
        let sc = scanner();
        ingest_band(&archive, &sc, 0, 4);
        let band = sc.band_stream(0, 1).schema().band;
        // Sectors are timestamped by id: [1, 3) picks sectors 1 and 2.
        let mut replay = archive.replay(band, Some(1), Some(3), None).unwrap();
        let mut sectors = Vec::new();
        while let Some(el) = replay.next_element() {
            if let Element::SectorStart(s) = el {
                sectors.push(s.sector_id);
            }
        }
        assert_eq!(sectors, vec![1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spatial_pushdown_decodes_fewer_tiles() {
        let dir = tmp_dir("pushdown");
        let mut cfg = ArchiveConfig::new(&dir);
        cfg.tile_width = 16; // 96-wide lattice → 6 stripes
        cfg.tile_cache_tiles = 0; // count decodes via cache misses
        let archive = Archive::create(cfg).unwrap();
        let reg = geostreams_core::obs::Registry::new();
        archive.attach_metrics(StoreMetrics::register(&reg));
        let sc = scanner();
        ingest_band(&archive, &sc, 0, 2);
        let band_stream = sc.band_stream(0, 1);
        let schema = band_stream.schema();
        let band = schema.band;
        let lattice = schema.sector_lattice.unwrap();

        let full_region = lattice.world_bbox();
        let mut narrow = full_region;
        // A thin vertical slice ~1/6 of the width.
        narrow.x_max = narrow.x_min + (narrow.x_max - narrow.x_min) / 6.0;

        let mut r = archive.replay(band, None, None, Some(&full_region)).unwrap();
        while r.next_element().is_some() {}
        let full_misses =
            reg.counter_value("geostreams_store_tile_cache_misses_total", &[]).unwrap();

        let mut r = archive.replay(band, None, None, Some(&narrow)).unwrap();
        let mut narrow_points = 0u64;
        while let Some(el) = r.next_element() {
            if let Element::Point(p) = &el {
                narrow_points += 1;
                assert!(p.cell.col < 32, "point outside the restriction");
            }
        }
        let narrow_misses =
            reg.counter_value("geostreams_store_tile_cache_misses_total", &[]).unwrap()
                - full_misses;
        assert!(narrow_points > 0);
        assert!(
            narrow_misses * 2 < full_misses,
            "pushdown decoded {narrow_misses} tiles vs {full_misses} for the full region"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_is_segment_granular_and_replay_survives() {
        let dir = tmp_dir("evict");
        let mut cfg = ArchiveConfig::new(&dir);
        cfg.max_segment_bytes = 8 << 10; // small segments → several rolls
        cfg.retention_max_bytes = Some(24 << 10);
        let archive = Archive::create(cfg).unwrap();
        let sc = scanner();
        let band = sc.band_stream(0, 1).schema().band;

        // Snapshot a replay of the earliest data mid-ingest, then keep
        // ingesting until retention has evicted those segments.
        let mut stream = sc.band_stream(0, 6);
        archive.bind_band(stream.schema()).unwrap();
        let mut early_replay = None;
        while let Some(el) = stream.next_element() {
            archive.ingest(band, &el).unwrap();
            if early_replay.is_none() && archive.watermark(band).is_some_and(|(s, _)| s >= 1) {
                early_replay = Some(archive.replay(band, Some(0), Some(1), None).unwrap());
            }
        }
        let stats = archive.stats();
        assert!(stats.evicted_segments > 0, "retention never evicted: {stats:?}");
        assert!(stats.live_bytes <= 24 << 10);
        // The oldest sectors are gone from the index…
        let est = archive.estimate("goes-sim.b1-vis", Some(0), Some(1)).unwrap();
        assert_eq!(est.frames, 0, "sector 0 should have been evicted");
        // …but the pre-eviction snapshot still replays (open handles).
        let mut r = early_replay.unwrap();
        let mut n = 0;
        while let Some(el) = r.next_element() {
            if el.is_point() {
                n += 1;
            }
        }
        assert!(n > 0, "snapshot replay lost its data to eviction");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_archive_rebuilds_the_index() {
        let dir = tmp_dir("reopen");
        let sc = scanner();
        let band = sc.band_stream(0, 1).schema().band;
        let (stats_before, ids_before) = {
            let archive = Archive::create(ArchiveConfig::new(&dir)).unwrap();
            ingest_band(&archive, &sc, 0, 3);
            let mut r = archive.replay(band, None, None, None).unwrap();
            let mut els = Vec::new();
            while let Some(el) = r.next_element() {
                els.push(el);
            }
            (archive.stats(), frame_ids(&els))
        };
        let archive = Archive::open(ArchiveConfig::new(&dir)).unwrap();
        let stats = archive.stats();
        assert_eq!(stats.frames, stats_before.frames);
        assert_eq!(stats.tiles, stats_before.tiles);
        assert_eq!(archive.band_of("goes-sim.b1-vis"), Some(band));
        let mut r = archive.replay(band, None, None, None).unwrap();
        let mut els = Vec::new();
        while let Some(el) = r.next_element() {
            els.push(el);
        }
        assert_eq!(frame_ids(&els), ids_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn estimate_reports_bounded_sizes() {
        let dir = tmp_dir("estimate");
        let archive = Archive::create(ArchiveConfig::new(&dir)).unwrap();
        let sc = scanner();
        ingest_band(&archive, &sc, 0, 3);
        let est = archive.estimate("goes-sim.b1-vis", Some(0), Some(2)).unwrap();
        // RowByRow: one frame per row, 48 rows per sector, 2 sectors.
        assert_eq!(est.frames, 96);
        assert!(est.bytes > 0);
        assert!(archive.estimate("unknown.source", None, None).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compression_beats_raw_pixels() {
        let dir = tmp_dir("ratio");
        // Wide frames amortize the fixed per-tile record overhead; a
        // 96-pixel row (the small test fixture) is header-dominated.
        let mut cfg = ArchiveConfig::new(&dir);
        cfg.tile_width = 256;
        let archive = Archive::create(cfg).unwrap();
        let sc = goes_like(512, 48, 7);
        ingest_band(&archive, &sc, 0, 3);
        let stats = archive.stats();
        assert!(
            stats.compression_ratio >= 2.0,
            "compression ratio {} below 2x",
            stats.compression_ratio
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn splice_hands_off_without_gap_or_duplicates() {
        let dir = tmp_dir("splice");
        let archive = Archive::create(ArchiveConfig::new(&dir)).unwrap();
        let sc = scanner();
        // Archive sectors [0, 3), then go live from sector 3.
        ingest_band(&archive, &sc, 0, 3);
        let band = sc.band_stream(0, 1).schema().band;
        let replay = archive.replay(band, Some(0), Some(3), None).unwrap();
        let live = Box::new(sc.band_stream_from(0, 3, 2));
        let wm = archive.watermark(band).map(|(s, _)| s);
        let mut spliced = SpliceStream::new(replay, live, wm, None);
        let mut seen = Vec::new();
        while let Some(el) = spliced.next_element() {
            seen.push(el);
        }
        let ids = frame_ids(&seen);
        let mut full = sc.band_stream(0, 5);
        let mut full_els = Vec::new();
        while let Some(el) = full.next_element() {
            full_els.push(el);
        }
        let expected = frame_ids(&full_els);
        assert_eq!(ids, expected, "splice must cover exactly the full run's frames");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
