//! The tiled raster archive: append-only segment persistence of live
//! GeoStream ingest, a sparse in-memory index, segment-granular
//! retention, and replay planning with spatial restriction pushdown.
//!
//! Frames are buffered per band, split into fixed-width column
//! **stripes** (tiles), delta-compressed against the previous frame's
//! co-located stripe (see [`crate::codec`]) and appended to the active
//! segment. A segment only rolls **between** frames, so every frame's
//! tiles live in exactly one segment, and rolling resets every delta
//! chain — each segment is self-contained, which is what makes
//! segment-granular eviction safe (no surviving frame ever needs an
//! evicted predecessor).
//!
//! ## Durability
//!
//! Every byte destined for a segment is first logged to a write-ahead
//! log ([`crate::wal`]): the frame is the atomic unit (one `FrameRedo`
//! record, one segment append), groups of
//! [`ArchiveConfig::group_commit_frames`] frames are sealed by a commit
//! record, and the WAL rotates at every segment roll (the closing
//! segment is fsynced before the WAL covering it is deleted, so sealed
//! segments are durable without their log). [`Archive::open`] replays
//! the newest WAL: committed frames are guaranteed recovered —
//! rewritten from redo bytes if the segment tail was torn or corrupted
//! — and anything after the last commit is discarded, bounding crash
//! loss to at most one uncommitted group. The outcome is summarized in
//! a [`RecoveryReport`].

use crate::codec::{encode_stripe, Codec};
use crate::metrics::StoreMetrics;
use crate::replay::TileCache;
use crate::segment::{
    encode_band_record, encode_sector_record, encode_tile_record, parse_segment_id, scan_segment,
    segment_path, Record, SegmentWriter, TileHeader, MAGIC,
};
use crate::vfs::{crc32, StdVfs, Vfs, VfsFile};
use crate::wal::{
    parse_wal_id, scan_wal, wal_path, BandWatermark, FsyncPolicy, WalRecord, WalWriter,
};
use geostreams_core::model::{ChunkOrMarker, Element, FrameInfo, SectorInfo, StreamSchema};
use geostreams_core::query::{ReplayEstimate, ReplayProvider};
use geostreams_core::{CoreError, Result};
use geostreams_geo::{CellBox, Rect};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Configuration of an [`Archive`].
#[derive(Debug, Clone)]
pub struct ArchiveConfig {
    /// Directory holding the segment files.
    pub dir: PathBuf,
    /// Roll the active segment once it exceeds this many bytes
    /// (checked between frames; default 1 MiB).
    pub max_segment_bytes: u64,
    /// Retention: evict oldest closed segments while the archive
    /// exceeds this many bytes (`None` = unlimited).
    pub retention_max_bytes: Option<u64>,
    /// Retention: evict oldest closed segments while the archive holds
    /// more than this many frames (`None` = unlimited).
    pub retention_max_frames: Option<u64>,
    /// Stripe width in lattice columns (default 64).
    pub tile_width: u32,
    /// A keyframe at least every this many chained frames per stripe
    /// (default 16; bounds replay's chain-prefix decode cost).
    pub keyframe_interval: u32,
    /// Tile payload codec (default [`Codec::Quant16`]).
    pub codec: Codec,
    /// Decoded-tile cache capacity in tiles (default 4096).
    pub tile_cache_tiles: usize,
    /// Frames per WAL commit group (default 8): a crash loses at most
    /// this many acknowledged frames per band set.
    pub group_commit_frames: u32,
    /// When the WAL fsyncs (default [`FsyncPolicy::OnCommit`]).
    pub fsync: FsyncPolicy,
    /// File system the archive talks through — [`StdVfs`] in
    /// production, [`crate::vfs::ChaosVfs`] under fault injection.
    pub vfs: Arc<dyn Vfs>,
}

impl ArchiveConfig {
    /// Defaults for a directory.
    pub fn new(dir: impl Into<PathBuf>) -> ArchiveConfig {
        ArchiveConfig {
            dir: dir.into(),
            max_segment_bytes: 1 << 20,
            retention_max_bytes: None,
            retention_max_frames: None,
            tile_width: 64,
            keyframe_interval: 16,
            codec: Codec::default(),
            tile_cache_tiles: 4096,
            group_commit_frames: 8,
            fsync: FsyncPolicy::OnCommit,
            vfs: Arc::new(StdVfs),
        }
    }
}

/// Index entry for one stored tile.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileRef {
    pub(crate) segment: u64,
    pub(crate) offset: u64,
    pub(crate) len: u32,
    pub(crate) tile_x: u32,
    pub(crate) cells: CellBox,
    pub(crate) keyframe: bool,
    pub(crate) codec: Codec,
    /// CRC-32 of the payload, re-verified on every read.
    pub(crate) crc: u32,
}

#[derive(Debug, Clone)]
struct FrameEntry {
    timestamp: i64,
    cells: CellBox,
    tiles: Vec<TileRef>,
}

struct SectorEntry {
    info: SectorInfo,
    frames: BTreeMap<u64, FrameEntry>,
}

struct SegmentMeta {
    path: PathBuf,
    bytes: u64,
    frames: u64,
}

/// Per-stripe delta chain state.
struct StripeState {
    lanes: Vec<u32>,
    since_key: u32,
}

/// Frame under assembly.
struct FrameBuf {
    info: FrameInfo,
    values: Vec<Option<f32>>,
}

/// Per-band ingest state.
#[derive(Default)]
struct BandWriter {
    sector: Option<SectorInfo>,
    frame: Option<FrameBuf>,
    /// Frame ids already persisted for the open sector (duplicate
    /// frames from a faulty downlink are skipped, not re-archived).
    seen_frames: HashSet<u64>,
    /// Duplicate frame currently being skipped (its points are ignored
    /// silently — they are redundant, not lost).
    skipping: Option<u64>,
    chains: HashMap<u32, StripeState>,
}

#[derive(Default)]
struct Totals {
    bytes_written: u64,
    raw_bytes: u64,
    frames: u64,
    tiles: u64,
    evicted_segments: u64,
    dropped_points: u64,
    wal_bytes: u64,
    wal_commits: u64,
}

struct Inner {
    writer: Option<SegmentWriter>,
    next_segment: u64,
    wal: Option<WalWriter>,
    next_wal: u64,
    /// Frames appended since the last WAL commit.
    group_open_frames: u32,
    /// True when the WAL holds records not yet sealed by a commit.
    wal_dirty: bool,
    segments: BTreeMap<u64, SegmentMeta>,
    index: BTreeMap<(u16, u64), SectorEntry>,
    band_meta: HashMap<u16, StreamSchema>,
    writers: HashMap<u16, BandWriter>,
    watermarks: HashMap<u16, (u64, u64)>,
    frames_indexed: u64,
    totals: Totals,
    recovery: RecoveryReport,
    /// Live retention budget `(max_bytes, max_frames)`; starts from the
    /// config and may be re-tuned at runtime ([`Archive::set_retention`]).
    retention: (Option<u64>, Option<u64>),
}

/// What [`Archive::open`] had to do to bring the directory back to a
/// consistent state (all-zero on a clean open). Served on `/archive`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RecoveryReport {
    /// Committed frames whose redo records were verified or re-applied.
    pub frames_recovered: u64,
    /// Uncommitted frames discarded (the open group at crash time).
    pub frames_discarded: u64,
    /// Bytes discarded across WAL tails, segment tails, and removed
    /// files (torn, corrupt, or uncommitted).
    pub bytes_discarded: u64,
    /// Segments whose damaged tail was rewritten from WAL redo bytes.
    pub segments_repaired: u64,
    /// Segments truncated to their last valid or committed byte.
    pub segments_truncated: u64,
    /// Segment files removed outright (no committed byte survived).
    pub segments_removed: u64,
    /// Committed redo records skipped because their segment file is
    /// gone (evicted by retention after the commit).
    pub missing_segments: u64,
    /// Torn (incomplete trailing) records seen across WAL and segments.
    pub torn_tails: u64,
    /// CRC-failed or unparseable records seen across WAL and segments.
    pub corrupt_records: u64,
    /// Commit records found in the replayed WAL.
    pub wal_commits_seen: u64,
    /// Per-band watermarks after recovery (committed WAL watermarks
    /// merged with the rebuilt index) — what the runtime re-anchors to.
    pub watermarks: Vec<BandWatermark>,
}

impl RecoveryReport {
    /// True when recovery found nothing to repair or discard.
    pub fn clean(&self) -> bool {
        self.bytes_discarded == 0
            && self.segments_repaired == 0
            && self.segments_truncated == 0
            && self.segments_removed == 0
            && self.torn_tails == 0
            && self.corrupt_records == 0
    }
}

/// Aggregate archive statistics (the `GET /archive` payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveStats {
    /// Live (non-evicted) segment files.
    pub segments: u64,
    /// Bytes currently on disk across live segments.
    pub live_bytes: u64,
    /// Compressed bytes ever appended (monotone; segments only, the
    /// WAL is accounted separately in `wal_bytes`).
    pub bytes_written: u64,
    /// Raw pixel bytes represented by archived points (4 bytes each).
    pub raw_bytes: u64,
    /// Frames currently indexed.
    pub frames: u64,
    /// Frames ever persisted (monotone).
    pub frames_persisted: u64,
    /// Tile records ever written (monotone).
    pub tiles: u64,
    /// Segments evicted by retention.
    pub evicted_segments: u64,
    /// Points dropped at ingest (protocol damage).
    pub dropped_points: u64,
    /// Raw bytes / written bytes (0 when nothing written).
    pub compression_ratio: f64,
    /// Write-ahead log bytes ever written (monotone).
    pub wal_bytes: u64,
    /// WAL group commits ever written (monotone).
    pub wal_commits: u64,
    /// What the last [`Archive::open`] recovered.
    pub recovery: RecoveryReport,
}

/// The tiled raster archive.
pub struct Archive {
    cfg: ArchiveConfig,
    inner: Mutex<Inner>,
    pub(crate) cache: Arc<Mutex<TileCache>>,
    metrics: OnceLock<StoreMetrics>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl std::fmt::Debug for Archive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Archive").field("dir", &self.cfg.dir).finish_non_exhaustive()
    }
}

impl Drop for Archive {
    fn drop(&mut self) {
        // Graceful close seals the open group; a real crash skips this
        // and recovery bounds the loss instead.
        let _ = self.flush();
    }
}

impl Archive {
    /// Creates a fresh archive; refuses a directory that already holds
    /// segments (use [`Archive::open`] for those).
    pub fn create(cfg: ArchiveConfig) -> Result<Archive> {
        cfg.vfs
            .create_dir_all(&cfg.dir)
            .map_err(|e| CoreError::Storage(format!("create {}: {e}", cfg.dir.display())))?;
        if !existing_segments(cfg.vfs.as_ref(), &cfg.dir)?.is_empty() {
            return Err(CoreError::Storage(format!(
                "{} already holds segments; use Archive::open",
                cfg.dir.display()
            )));
        }
        Ok(Archive::empty(cfg))
    }

    fn empty(cfg: ArchiveConfig) -> Archive {
        let cache = Arc::new(Mutex::new(TileCache::new(cfg.tile_cache_tiles)));
        let retention = (cfg.retention_max_bytes, cfg.retention_max_frames);
        Archive {
            cfg,
            inner: Mutex::new(Inner {
                writer: None,
                next_segment: 0,
                wal: None,
                next_wal: 0,
                group_open_frames: 0,
                wal_dirty: false,
                segments: BTreeMap::new(),
                index: BTreeMap::new(),
                band_meta: HashMap::new(),
                writers: HashMap::new(),
                watermarks: HashMap::new(),
                frames_indexed: 0,
                totals: Totals::default(),
                recovery: RecoveryReport::default(),
                retention,
            }),
            cache,
            metrics: OnceLock::new(),
        }
    }

    /// Opens an existing archive directory: replays the write-ahead
    /// log, repairs or truncates damaged segment tails (reporting every
    /// discarded byte — nothing is thrown away silently), then rebuilds
    /// the in-memory index from the now-clean segment files. The
    /// outcome is available via [`Archive::recovery_report`].
    pub fn open(cfg: ArchiveConfig) -> Result<Archive> {
        cfg.vfs
            .create_dir_all(&cfg.dir)
            .map_err(|e| CoreError::Storage(format!("create {}: {e}", cfg.dir.display())))?;
        let archive = Archive::empty(cfg);
        archive.recover()?;
        Ok(archive)
    }

    /// Attaches metric handles (first call wins; typically right after
    /// the DSMS registers its metrics registry). The last recovery's
    /// counters are applied on first attach, so a restart's repairs are
    /// visible on `/metrics`.
    pub fn attach_metrics(&self, metrics: StoreMetrics) {
        if self.metrics.set(metrics).is_ok() {
            if let Some(m) = self.metrics.get() {
                let inner = lock(&self.inner);
                let r = &inner.recovery;
                m.recovery_frames.add(r.frames_recovered);
                m.recovery_bytes_discarded.add(r.bytes_discarded);
                m.truncated_tails.add(r.torn_tails);
                m.corruption_detected.add(r.corrupt_records);
            }
        }
    }

    /// Re-tunes the retention budget at runtime (e.g. from
    /// `RuntimeConfig` knobs) and enforces it immediately: segments are
    /// evicted oldest-first, whole segments at a time, until the
    /// archive fits. `None` means unlimited on that axis.
    pub fn set_retention(&self, max_bytes: Option<u64>, max_frames: Option<u64>) -> Result<()> {
        let mut inner = lock(&self.inner);
        inner.retention = (max_bytes, max_frames);
        self.enforce_retention(&mut inner)
    }

    pub(crate) fn metrics(&self) -> Option<&StoreMetrics> {
        self.metrics.get()
    }

    /// The archive configuration.
    pub fn config(&self) -> &ArchiveConfig {
        &self.cfg
    }

    /// What the last [`Archive::open`] had to recover (all-zero for an
    /// archive created fresh or opened clean).
    pub fn recovery_report(&self) -> RecoveryReport {
        lock(&self.inner).recovery.clone()
    }

    /// Declares a band's stream schema (persisted so reopened archives
    /// and replays know the value range and CRS).
    pub fn bind_band(&self, schema: &StreamSchema) -> Result<()> {
        let mut inner = lock(&self.inner);
        if inner.band_meta.get(&schema.band).is_some_and(|s| s == schema) {
            return Ok(());
        }
        inner.band_meta.insert(schema.band, schema.clone());
        let rec = encode_band_record(schema)?;
        self.append_covered(&mut inner, rec)?;
        Ok(())
    }

    /// Consumes one live stream element for `band`.
    ///
    /// Tolerates protocol damage from a faulty downlink: duplicate
    /// frames are skipped, a missing `FrameEnd` is flushed by the next
    /// boundary, orphan points are dropped and counted.
    pub fn ingest(&self, band: u16, el: &Element<f32>) -> Result<()> {
        let mut inner = lock(&self.inner);
        self.ingest_locked(&mut inner, band, el)
    }

    /// Consumes one chunked item (a run of points with an optional
    /// trailing marker, or a standalone marker) for `band`, taking the
    /// archive lock once per item instead of once per element.
    pub fn ingest_chunk(&self, band: u16, item: &ChunkOrMarker<f32>) -> Result<()> {
        let mut inner = lock(&self.inner);
        match item {
            ChunkOrMarker::Marker(m) => {
                self.ingest_locked(&mut inner, band, &m.clone().into_element::<f32>())
            }
            ChunkOrMarker::Chunk(c) => {
                for p in &c.points {
                    self.ingest_locked(&mut inner, band, &Element::Point(*p))?;
                }
                if let Some(m) = &c.end {
                    self.ingest_locked(&mut inner, band, &m.clone().into_element::<f32>())?;
                }
                Ok(())
            }
        }
    }

    fn ingest_locked(&self, inner: &mut Inner, band: u16, el: &Element<f32>) -> Result<()> {
        match el {
            Element::SectorStart(info) => {
                self.flush_open_frame(inner, band)?;
                let bw = inner.writers.entry(band).or_default();
                bw.sector = Some(info.clone());
                bw.seen_frames.clear();
                bw.skipping = None;
                // Delta chains never cross a sector boundary.
                bw.chains.clear();
                inner
                    .index
                    .entry((band, info.sector_id))
                    .or_insert_with(|| SectorEntry { info: info.clone(), frames: BTreeMap::new() })
                    .info = info.clone();
                let rec = encode_sector_record(info)?;
                self.append_covered(inner, rec)?;
            }
            Element::FrameStart(fi) => {
                self.flush_open_frame(inner, band)?;
                let bw = inner.writers.entry(band).or_default();
                bw.skipping = None;
                if bw.sector.is_none() {
                    // No sector context (its SectorStart was lost):
                    // the frame cannot be georeferenced, drop it.
                    bw.skipping = Some(fi.frame_id);
                } else if bw.seen_frames.contains(&fi.frame_id) {
                    bw.skipping = Some(fi.frame_id);
                } else {
                    let n = fi.cells.len() as usize;
                    bw.frame = Some(FrameBuf { info: *fi, values: vec![None; n] });
                }
            }
            Element::Point(p) => {
                let bw = inner.writers.entry(band).or_default();
                if bw.skipping.is_some() {
                    return Ok(());
                }
                let mut dropped = false;
                match &mut bw.frame {
                    Some(f) if f.info.cells.contains(p.cell) => {
                        let c = f.info.cells;
                        let idx = (p.cell.row - c.row_min) as usize * c.width() as usize
                            + (p.cell.col - c.col_min) as usize;
                        f.values[idx] = Some(p.value);
                    }
                    _ => dropped = true,
                }
                if dropped {
                    inner.totals.dropped_points += 1;
                    if let Some(m) = self.metrics() {
                        m.dropped_points.inc();
                    }
                }
            }
            Element::FrameEnd(_) => {
                let bw = inner.writers.entry(band).or_default();
                if bw.skipping.take().is_some() {
                    return Ok(());
                }
                self.flush_open_frame(inner, band)?;
            }
            Element::SectorEnd(_) => {
                self.flush_open_frame(inner, band)?;
                let bw = inner.writers.entry(band).or_default();
                bw.sector = None;
                bw.skipping = None;
            }
        }
        Ok(())
    }

    /// Flushes the active segment's buffered writes and seals the open
    /// WAL group with a commit (a graceful flush is a durability point).
    pub fn flush(&self) -> Result<()> {
        let mut inner = lock(&self.inner);
        if let Some(w) = inner.writer.as_mut() {
            w.flush()?;
        }
        self.commit_locked(&mut inner)
    }

    /// Ensures the write-ahead log exists. Only callable while no
    /// segment writer is active: the new WAL's floor is the *next*
    /// segment id, so an active segment would fall outside coverage.
    fn ensure_wal(&self, inner: &mut Inner) -> Result<()> {
        if inner.wal.is_some() {
            return Ok(());
        }
        let id = inner.next_wal;
        let w = WalWriter::create(
            self.cfg.vfs.as_ref(),
            &self.cfg.dir,
            id,
            inner.next_segment,
            self.cfg.fsync,
        )?;
        inner.next_wal = id + 1;
        inner.totals.wal_bytes += w.bytes();
        if let Some(m) = self.metrics() {
            m.wal_bytes.add(w.bytes());
        }
        inner.wal = Some(w);
        Ok(())
    }

    /// Ensures an active segment writer exists, creating the next
    /// segment on demand — its very first bytes (the magic) are covered
    /// by a `MetaRedo` like everything else.
    fn ensure_writer(&self, inner: &mut Inner) -> Result<()> {
        if inner.writer.is_some() {
            return Ok(());
        }
        self.ensure_wal(inner)?;
        let id = inner.next_segment;
        self.wal_append(inner, &WalRecord::MetaRedo { seg: id, off: 0, data: MAGIC.to_vec() })?;
        let mut w = SegmentWriter::create_bare(self.cfg.vfs.as_ref(), &self.cfg.dir, id)?;
        w.append_raw(MAGIC)?;
        inner.next_segment = id + 1;
        inner.segments.insert(
            id,
            SegmentMeta { path: segment_path(&self.cfg.dir, id), bytes: w.bytes(), frames: 0 },
        );
        inner.writer = Some(w);
        Ok(())
    }

    /// Appends one record to the WAL, tracking bytes. On failure the
    /// WAL is abandoned (a torn log record would hide every record
    /// after it), leaving the archive refusing further writes until
    /// reopened.
    fn wal_append(&self, inner: &mut Inner, rec: &WalRecord) -> Result<()> {
        let Some(w) = inner.wal.as_mut() else {
            return Err(CoreError::Storage(
                "write-ahead log unavailable (failed earlier); reopen the archive".into(),
            ));
        };
        let before = w.bytes();
        match w.append(rec) {
            Ok(()) => {
                let delta = w.bytes() - before;
                inner.totals.wal_bytes += delta;
                inner.wal_dirty = true;
                if let Some(m) = self.metrics() {
                    m.wal_bytes.add(delta);
                }
                Ok(())
            }
            Err(e) => {
                inner.wal = None;
                Err(e)
            }
        }
    }

    /// Seals the open group: flushes the segment, writes a commit
    /// record carrying the current per-band watermarks, and fsyncs the
    /// WAL per policy.
    fn commit_locked(&self, inner: &mut Inner) -> Result<()> {
        if !inner.wal_dirty {
            return Ok(());
        }
        if let Some(w) = inner.writer.as_mut() {
            w.flush()?;
        }
        let mut wms: Vec<BandWatermark> = inner
            .watermarks
            .iter()
            .map(|(&band, &(sector, frame))| BandWatermark { band, sector, frame })
            .collect();
        wms.sort_by_key(|w| w.band);
        let Some(w) = inner.wal.as_mut() else {
            return Err(CoreError::Storage(
                "write-ahead log unavailable (failed earlier); reopen the archive".into(),
            ));
        };
        let before = w.bytes();
        match w.commit(wms) {
            Ok(()) => {
                let delta = w.bytes() - before;
                inner.totals.wal_bytes += delta;
                inner.totals.wal_commits += 1;
                inner.wal_dirty = false;
                inner.group_open_frames = 0;
                if let Some(m) = self.metrics() {
                    m.wal_bytes.add(delta);
                    m.wal_commits.inc();
                }
                Ok(())
            }
            Err(e) => {
                inner.wal = None;
                Err(e)
            }
        }
    }

    /// Writes one pre-encoded metadata record to the active segment,
    /// WAL-first.
    fn append_covered(&self, inner: &mut Inner, rec: Vec<u8>) -> Result<u64> {
        self.ensure_writer(inner)?;
        let (seg, off) = match inner.writer.as_ref() {
            Some(w) => (w.id(), w.bytes()),
            None => return Err(CoreError::Storage("no active segment writer".into())),
        };
        let redo = WalRecord::MetaRedo { seg, off, data: rec };
        self.wal_append(inner, &redo)?;
        let WalRecord::MetaRedo { data, .. } = redo else {
            return Err(CoreError::Storage("meta redo construction".into()));
        };
        self.append_to_segment(inner, &data)
    }

    /// Appends bytes to the active segment, abandoning the writer on
    /// failure (a torn prefix may be on disk; offsets can no longer be
    /// trusted — recovery rebuilds the tail from committed redos).
    fn append_to_segment(&self, inner: &mut Inner, data: &[u8]) -> Result<u64> {
        let Some(w) = inner.writer.as_mut() else {
            return Err(CoreError::Storage("no active segment writer".into()));
        };
        match w.append_raw(data) {
            Ok(at) => {
                let bytes = w.bytes();
                note_active_bytes(inner, bytes);
                Ok(at)
            }
            Err(e) => {
                inner.writer = None;
                Err(e)
            }
        }
    }

    /// Encodes and persists the band's open frame, if any. The whole
    /// frame is encoded into one buffer, logged as one `FrameRedo`, and
    /// appended in one write — the atomic unit of crash recovery.
    fn flush_open_frame(&self, inner: &mut Inner, band: u16) -> Result<()> {
        let Some(bw) = inner.writers.get_mut(&band) else { return Ok(()) };
        let Some(frame) = bw.frame.take() else { return Ok(()) };
        let Some(sector) = bw.sector.clone() else { return Ok(()) };
        let schema_range = inner.band_meta.get(&band).map(|s| s.value_range).unwrap_or((0.0, 1.0));
        let cfg = self.cfg.clone();

        // Roll between frames so a frame's tiles share one segment.
        let must_roll = inner.writer.as_ref().is_some_and(|w| w.bytes() >= cfg.max_segment_bytes);
        if must_roll {
            self.roll_segment(inner)?;
        }

        let fi = frame.info;
        let cells = fi.cells;
        let ts = fi.timestamp.value();
        let tw = cfg.tile_width.max(1);
        let tx0 = cells.col_min / tw;
        let tx1 = cells.col_max / tw;
        let mut buf: Vec<u8> = Vec::new();
        // Tile refs staged with payload offsets relative to `buf`.
        let mut staged: Vec<(u64, TileRef)> = Vec::new();
        let mut frame_points = 0u64;
        for tx in tx0..=tx1 {
            let col_lo = (tx * tw).max(cells.col_min);
            let col_hi = ((tx + 1) * tw - 1).min(cells.col_max);
            let stripe_box = CellBox::new(col_lo, cells.row_min, col_hi, cells.row_max);
            let stripe_w = stripe_box.width() as usize;
            let mut vals = Vec::with_capacity(stripe_box.len() as usize);
            for row in cells.row_min..=cells.row_max {
                let base = (row - cells.row_min) as usize * cells.width() as usize;
                let off = (col_lo - cells.col_min) as usize;
                vals.extend_from_slice(&frame.values[base + off..base + off + stripe_w]);
            }
            if vals.iter().all(Option::is_none) {
                continue; // nothing delivered in this stripe
            }
            let bw2 = inner.writers.entry(band).or_default();
            let state = bw2.chains.get(&tx);
            let keyframe = match state {
                None => true,
                Some(s) => {
                    s.lanes.len() != vals.len() || s.since_key + 1 >= cfg.keyframe_interval.max(1)
                }
            };
            let enc = encode_stripe(
                cfg.codec,
                schema_range,
                &vals,
                state.map(|s| s.lanes.as_slice()),
                keyframe,
            )?;
            let since_key = if keyframe { 0 } else { state.map_or(0, |s| s.since_key + 1) };
            bw2.chains.insert(tx, StripeState { lanes: enc.lanes, since_key });
            let header = TileHeader {
                band,
                sector_id: sector.sector_id,
                frame_id: fi.frame_id,
                timestamp: ts,
                tile_x: tx,
                cells: stripe_box,
                codec: cfg.codec,
                keyframe,
                n_points: enc.n_points,
                payload_len: 0, // filled by encode_tile_record
                payload_crc: 0, // filled by encode_tile_record
            };
            let crc = crc32(&enc.payload);
            let (rec, payload_in_rec) = encode_tile_record(&header, &enc.payload)?;
            staged.push((
                buf.len() as u64 + payload_in_rec,
                TileRef {
                    segment: 0, // patched after the append
                    offset: 0,
                    len: enc.payload.len() as u32,
                    tile_x: tx,
                    cells: stripe_box,
                    keyframe,
                    codec: cfg.codec,
                    crc,
                },
            ));
            buf.extend_from_slice(&rec);
            frame_points += u64::from(enc.n_points);
        }
        if staged.is_empty() {
            // An empty frame (all gaps) still counts as seen.
            if let Some(bw) = inner.writers.get_mut(&band) {
                bw.seen_frames.insert(fi.frame_id);
            }
            return Ok(());
        }

        // Write-ahead: the redo record carries the frame bytes; only
        // then do the same bytes land in the segment.
        self.ensure_writer(inner)?;
        let (seg_id, base) = match inner.writer.as_ref() {
            Some(w) => (w.id(), w.bytes()),
            None => return Err(CoreError::Storage("no active segment writer".into())),
        };
        let redo = WalRecord::FrameRedo {
            seg: seg_id,
            off: base,
            band,
            sector: sector.sector_id,
            frame: fi.frame_id,
            data: buf,
        };
        self.wal_append(inner, &redo)?;
        let WalRecord::FrameRedo { data: buf, .. } = redo else {
            return Err(CoreError::Storage("frame redo construction".into()));
        };
        self.append_to_segment(inner, &buf)?;
        let frame_bytes = buf.len() as u64;
        let mut tile_refs = Vec::with_capacity(staged.len());
        for (rel, mut t) in staged {
            t.segment = seg_id;
            t.offset = base + rel;
            tile_refs.push(t);
        }

        if let Some(seg) = inner.segments.get_mut(&seg_id) {
            seg.frames += 1;
        }
        let n_tiles = tile_refs.len() as u64;
        inner
            .index
            .entry((band, sector.sector_id))
            .or_insert_with(|| SectorEntry { info: sector.clone(), frames: BTreeMap::new() })
            .frames
            .insert(fi.frame_id, FrameEntry { timestamp: ts, cells, tiles: tile_refs });
        if let Some(bw) = inner.writers.get_mut(&band) {
            bw.seen_frames.insert(fi.frame_id);
        }
        inner.frames_indexed += 1;
        inner.totals.frames += 1;
        inner.totals.tiles += n_tiles;
        inner.totals.bytes_written += frame_bytes;
        inner.totals.raw_bytes += frame_points * 4;
        let wm = inner.watermarks.entry(band).or_insert((0, 0));
        *wm = (*wm).max((sector.sector_id, fi.frame_id));
        if let Some(m) = self.metrics() {
            m.frames_persisted.inc();
            m.tiles_written.add(n_tiles);
            m.bytes_written.add(frame_bytes);
            m.raw_bytes.add(frame_points * 4);
            if let Some(permille) =
                (inner.totals.raw_bytes * 1000).checked_div(inner.totals.bytes_written)
            {
                m.compression_ratio_permille.set(permille);
            }
        }
        inner.group_open_frames += 1;
        if inner.group_open_frames >= cfg.group_commit_frames.max(1) {
            self.commit_locked(inner)?;
        }
        self.enforce_retention(inner)?;
        Ok(())
    }

    /// Closes the active segment and opens the next one, re-emitting
    /// band and open-sector metadata so the new segment is
    /// self-describing, and resetting every delta chain so chains never
    /// cross segment boundaries. The WAL rotates here: the closing
    /// segment is sealed (flush + fsync) *before* the old log — the
    /// only thing that could rebuild it — is deleted.
    fn roll_segment(&self, inner: &mut Inner) -> Result<()> {
        // Seal the open group so the outgoing WAL ends on a commit.
        self.commit_locked(inner)?;
        if let Some(mut w) = inner.writer.take() {
            w.flush()?;
            w.sync()?;
            let (id, bytes) = (w.id(), w.bytes());
            if let Some(meta) = inner.segments.get_mut(&id) {
                meta.bytes = bytes;
            }
        }
        for bw in inner.writers.values_mut() {
            bw.chains.clear();
        }
        // Rotate: create the successor WAL (fsynced, floor = the next
        // segment id), then drop the old one.
        let old = inner.wal.take();
        self.ensure_wal(inner)?;
        if let Some(old) = old {
            let path = wal_path(&self.cfg.dir, old.id());
            drop(old);
            self.cfg
                .vfs
                .remove_file(&path)
                .map_err(|e| CoreError::Storage(format!("remove {}: {e}", path.display())))?;
        }
        // Re-emit metadata under the new WAL's coverage.
        let metas: Vec<StreamSchema> = inner.band_meta.values().cloned().collect();
        let sectors: Vec<SectorInfo> =
            inner.writers.values().filter_map(|bw| bw.sector.clone()).collect();
        for schema in &metas {
            let rec = encode_band_record(schema)?;
            self.append_covered(inner, rec)?;
        }
        for info in &sectors {
            let rec = encode_sector_record(info)?;
            self.append_covered(inner, rec)?;
        }
        Ok(())
    }

    /// Evicts oldest closed segments while over the retention budget.
    fn enforce_retention(&self, inner: &mut Inner) -> Result<()> {
        loop {
            let live_bytes: u64 = inner.segments.values().map(|s| s.bytes).sum();
            let (max_bytes, max_frames) = inner.retention;
            let over_bytes = max_bytes.is_some_and(|max| live_bytes > max);
            let over_frames = max_frames.is_some_and(|max| inner.frames_indexed > max);
            if !over_bytes && !over_frames {
                return Ok(());
            }
            let active = inner.writer.as_ref().map(SegmentWriter::id);
            let Some((&victim, _)) = inner.segments.iter().find(|(id, _)| Some(**id) != active)
            else {
                return Ok(()); // only the active segment remains
            };
            let Some(meta) = inner.segments.remove(&victim) else { return Ok(()) };
            // Replays opened before this point hold their own file
            // handles; unlinking is safe for them (unix semantics).
            self.cfg
                .vfs
                .remove_file(&meta.path)
                .map_err(|e| CoreError::Storage(format!("evict {}: {e}", meta.path.display())))?;
            let mut removed_frames = 0u64;
            inner.index.retain(|_, entry| {
                entry.frames.retain(|_, fe| {
                    let gone = fe.tiles.first().is_some_and(|t| t.segment == victim);
                    if gone {
                        removed_frames += 1;
                    }
                    !gone
                });
                !entry.frames.is_empty()
            });
            inner.frames_indexed = inner.frames_indexed.saturating_sub(removed_frames);
            inner.totals.evicted_segments += 1;
            if let Some(m) = self.metrics() {
                m.evicted_segments.inc();
                m.segments.set(inner.segments.len() as u64);
            }
        }
    }

    /// Highest `(sector_id, frame_id)` persisted for a band: the splice
    /// watermark a hybrid query hands off at.
    pub fn watermark(&self, band: u16) -> Option<(u64, u64)> {
        lock(&self.inner).watermarks.get(&band).copied()
    }

    /// The schema bound to a band, if any.
    pub fn band_schema(&self, band: u16) -> Option<StreamSchema> {
        lock(&self.inner).band_meta.get(&band).cloned()
    }

    /// Resolves a stream name to its band id.
    pub fn band_of(&self, source: &str) -> Option<u16> {
        lock(&self.inner).band_meta.values().find(|s| s.name == source).map(|s| s.band)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ArchiveStats {
        let inner = lock(&self.inner);
        let live_closed: u64 = inner.segments.values().map(|s| s.bytes).sum();
        let t = &inner.totals;
        ArchiveStats {
            segments: inner.segments.len() as u64,
            live_bytes: live_closed,
            bytes_written: t.bytes_written,
            raw_bytes: t.raw_bytes,
            frames: inner.frames_indexed,
            frames_persisted: t.frames,
            tiles: t.tiles,
            evicted_segments: t.evicted_segments,
            dropped_points: t.dropped_points,
            compression_ratio: if t.bytes_written == 0 {
                0.0
            } else {
                t.raw_bytes as f64 / t.bytes_written as f64
            },
            wal_bytes: t.wal_bytes,
            wal_commits: t.wal_commits,
            recovery: inner.recovery.clone(),
        }
    }

    /// Plans a replay: snapshots the index slice for `band` over the
    /// half-open timestamp window `[lo, hi)` and optional `region`
    /// (source CRS), selecting only tiles whose stripes intersect the
    /// region (restriction pushdown) plus the chain prefixes needed to
    /// decode them, and opens the referenced segment files (so eviction
    /// cannot invalidate the snapshot).
    pub(crate) fn plan_replay(
        &self,
        band: u16,
        lo: Option<i64>,
        hi: Option<i64>,
        region: Option<&Rect>,
    ) -> Result<ReplayPlan> {
        let inner = lock(&self.inner);
        let schema = inner.band_meta.get(&band).cloned().ok_or_else(|| {
            CoreError::Storage(format!("band {band} is not bound to the archive"))
        })?;
        let (lo, hi) = (lo.unwrap_or(i64::MIN), hi.unwrap_or(i64::MAX));
        let mut sectors = Vec::new();
        let mut files: HashMap<u64, Arc<dyn VfsFile>> = HashMap::new();
        for ((b, _), entry) in inner.index.range((band, 0)..=(band, u64::MAX)) {
            debug_assert_eq!(*b, band);
            let emit_box = match region {
                None => None,
                Some(r) => match entry.info.lattice.footprint(r) {
                    Some(fb) => Some(fb),
                    None => continue, // sector disjoint from the region
                },
            };
            let frames: Vec<(&u64, &FrameEntry)> = entry.frames.iter().collect();
            let emit_flags: Vec<bool> =
                frames.iter().map(|(_, fe)| fe.timestamp >= lo && fe.timestamp < hi).collect();
            let Some(first_emit) = emit_flags.iter().position(|&e| e) else { continue };
            let Some(last_emit) = emit_flags.iter().rposition(|&e| e) else { continue };
            let selected = |t: &TileRef| match emit_box {
                None => true,
                Some(eb) => t.cells.col_min <= eb.col_max && t.cells.col_max >= eb.col_min,
            };
            // Chain prefix: per selected stripe, back up from the first
            // emitted frame to its latest keyframe.
            let mut start = first_emit;
            let stripes: HashSet<u32> = frames[..=last_emit]
                .iter()
                .flat_map(|(_, fe)| fe.tiles.iter())
                .filter(|t| selected(t))
                .map(|t| t.tile_x)
                .collect();
            for &tx in &stripes {
                let mut key_at = None;
                for (i, (_, fe)) in frames[..=first_emit].iter().enumerate().rev() {
                    if let Some(t) = fe.tiles.iter().find(|t| t.tile_x == tx) {
                        if t.keyframe {
                            key_at = Some(i);
                            break;
                        }
                    }
                }
                start = start.min(key_at.unwrap_or(0));
            }
            let mut planned_frames = Vec::new();
            for (i, (fid, fe)) in frames.iter().enumerate().skip(start) {
                if i > last_emit {
                    break;
                }
                let tiles: Vec<TileRef> = {
                    let mut ts: Vec<TileRef> =
                        fe.tiles.iter().filter(|t| selected(t)).copied().collect();
                    ts.sort_by_key(|t| t.tile_x);
                    ts
                };
                if tiles.is_empty() {
                    continue;
                }
                for t in &tiles {
                    if let std::collections::hash_map::Entry::Vacant(v) = files.entry(t.segment) {
                        let Some(seg) = inner.segments.get(&t.segment) else {
                            return Err(CoreError::Storage(format!(
                                "segment {} referenced by index but unknown",
                                t.segment
                            )));
                        };
                        let f = self.cfg.vfs.open_read(&seg.path).map_err(|e| {
                            CoreError::Storage(format!("open {}: {e}", seg.path.display()))
                        })?;
                        v.insert(Arc::from(f));
                    }
                }
                planned_frames.push(PlannedFrame {
                    frame_id: **fid,
                    timestamp: fe.timestamp,
                    cells: fe.cells,
                    tiles,
                    emit: emit_flags[i],
                });
            }
            if planned_frames.iter().any(|f| f.emit) {
                sectors.push(PlannedSector {
                    info: entry.info.clone(),
                    emit_box,
                    frames: planned_frames,
                });
            }
        }
        // Buffered appends must be visible to the opened read handles
        // (and the flush commits the open group).
        drop(inner);
        self.flush()?;
        Ok(ReplayPlan { band, schema, sectors, files })
    }

    /// Crash recovery, run by [`Archive::open`].
    ///
    /// 1. Pick the newest parseable WAL (there are two only in the
    ///    crash-during-rotation window; the newest is authoritative)
    ///    and delete every other WAL file.
    /// 2. Scan it: the prefix up to the last commit record is trusted;
    ///    everything after — uncommitted frames, torn or corrupt tail —
    ///    is counted and discarded.
    /// 3. Per governed segment (`id >= floor`): compare the CRC-valid
    ///    prefix against the committed redo coverage. Longer: truncate
    ///    to the committed end (uncommitted bytes). Shorter: truncate
    ///    to the last committed redo boundary inside the valid prefix
    ///    and re-append the remaining committed redo bytes (repair).
    ///    No committed byte at all: remove the file.
    /// 4. Per sealed segment (below the floor, or no WAL): truncate any
    ///    damaged tail, counting and logging the discarded bytes.
    /// 5. Fsync every surviving governed segment, then delete the WAL —
    ///    its coverage is now sealed into the files, which makes a
    ///    second recovery a no-op (idempotence).
    /// 6. Rebuild the index from the now-clean segments and re-anchor
    ///    per-band watermarks against the committed WAL watermarks.
    fn recover(&self) -> Result<()> {
        let vfs: Arc<dyn Vfs> = Arc::clone(&self.cfg.vfs);
        let vfs = vfs.as_ref();
        let dir = self.cfg.dir.clone();
        let mut inner = lock(&self.inner);
        let mut report = RecoveryReport::default();
        let rm_err = |p: &Path, e: std::io::Error| {
            CoreError::Storage(format!("recovery: remove {}: {e}", p.display()))
        };
        let trunc_err = |p: &Path, e: std::io::Error| {
            CoreError::Storage(format!("recovery: truncate {}: {e}", p.display()))
        };

        // 1. Choose the newest parseable WAL; delete the rest.
        let mut wal_ids = existing_wals(vfs, &dir)?;
        wal_ids.reverse();
        let mut chosen_wal: Option<u64> = None;
        let mut wal_scan: Option<crate::wal::WalScan> = None;
        for id in wal_ids {
            let path = wal_path(&dir, id);
            if chosen_wal.is_none() {
                if let Some(scan) = scan_wal(vfs, &path) {
                    if scan.floor_seg.is_some() {
                        chosen_wal = Some(id);
                        wal_scan = Some(scan);
                        inner.next_wal = inner.next_wal.max(id + 1);
                        continue;
                    }
                }
            }
            // Superseded by a newer log, or torn at birth (no durable
            // rotate record): its contents are not trusted.
            report.bytes_discarded += vfs.len(&path).unwrap_or(0);
            vfs.remove_file(&path).map_err(|e| rm_err(&path, e))?;
        }

        // 2. Extract the committed redo records, grouped per segment.
        let mut floor = 0u64;
        let mut per_seg: BTreeMap<u64, Vec<(u64, Vec<u8>, bool)>> = BTreeMap::new();
        let mut committed_watermarks: Vec<BandWatermark> = Vec::new();
        if let Some(scan) = wal_scan {
            floor = scan.floor_seg.unwrap_or(0);
            report.wal_commits_seen = scan.commits;
            report.bytes_discarded += scan.discarded_bytes;
            report.torn_tails += u64::from(scan.torn_tail);
            report.corrupt_records += scan.corrupt_records;
            report.frames_discarded += scan.uncommitted_frames;
            committed_watermarks = scan.watermarks;
            for rec in scan.committed {
                match rec {
                    WalRecord::MetaRedo { seg, off, data } => {
                        per_seg.entry(seg).or_default().push((off, data, false));
                    }
                    WalRecord::FrameRedo { seg, off, data, .. } => {
                        per_seg.entry(seg).or_default().push((off, data, true));
                    }
                    _ => {}
                }
            }
        }

        // 3./4. Repair or truncate each segment on disk.
        let mut governed_survivors: Vec<PathBuf> = Vec::new();
        for (id, path) in existing_segments(vfs, &dir)? {
            let scan = scan_segment(vfs, &path)?;
            let file_len = vfs
                .len(&path)
                .map_err(|e| CoreError::Storage(format!("stat {}: {e}", path.display())))?;
            let governed = chosen_wal.is_some() && id >= floor;
            if governed {
                let redos = per_seg.remove(&id).unwrap_or_default();
                let committed_end =
                    redos.iter().map(|(off, d, _)| off + d.len() as u64).max().unwrap_or(0);
                if committed_end == 0 {
                    // Born inside the uncommitted tail: nothing in this
                    // file is trusted.
                    report.bytes_discarded += file_len;
                    report.segments_removed += 1;
                    vfs.remove_file(&path).map_err(|e| rm_err(&path, e))?;
                    continue;
                }
                report.frames_recovered += redos.iter().filter(|(_, _, f)| *f).count() as u64;
                report.torn_tails += u64::from(scan.torn_tail);
                report.corrupt_records += scan.corrupt_records;
                if scan.valid_len >= committed_end {
                    if file_len > committed_end {
                        // Valid-but-uncommitted (or damaged) bytes past
                        // the last commit: not trusted.
                        report.bytes_discarded += file_len - committed_end;
                        report.segments_truncated += 1;
                        vfs.truncate(&path, committed_end).map_err(|e| trunc_err(&path, e))?;
                    }
                } else {
                    // Damage inside the committed range: rewind to the
                    // last committed redo boundary at or before the
                    // valid prefix and re-apply the rest. Redo coverage
                    // is contiguous from byte 0, so this closes every
                    // hole.
                    let mut cut = committed_end;
                    let mut replay_from = redos.len();
                    for (i, (off, data, _)) in redos.iter().enumerate() {
                        if off + data.len() as u64 > scan.valid_len {
                            cut = *off;
                            replay_from = i;
                            break;
                        }
                    }
                    report.bytes_discarded += file_len.saturating_sub(cut);
                    report.segments_repaired += 1;
                    vfs.truncate(&path, cut).map_err(|e| trunc_err(&path, e))?;
                    let mut f = vfs.open_append(&path).map_err(|e| {
                        CoreError::Storage(format!("recovery: open {}: {e}", path.display()))
                    })?;
                    for (_, data, _) in &redos[replay_from..] {
                        f.append(data).map_err(|e| {
                            CoreError::Storage(format!("recovery: append {}: {e}", path.display()))
                        })?;
                    }
                    f.flush().map_err(|e| {
                        CoreError::Storage(format!("recovery: flush {}: {e}", path.display()))
                    })?;
                }
                governed_survivors.push(path);
            } else if !scan.clean() {
                // Sealed (or WAL-less) segment with a damaged tail: the
                // bytes are unrecoverable — truncate loudly, never
                // silently.
                report.torn_tails += u64::from(scan.torn_tail);
                report.corrupt_records += scan.corrupt_records;
                report.bytes_discarded += scan.discarded_bytes;
                eprintln!(
                    "archive recovery: segment {id}: discarding {} damaged trailing bytes \
                     (torn_tail={}, corrupt_records={})",
                    scan.discarded_bytes, scan.torn_tail, scan.corrupt_records
                );
                if scan.valid_len == 0 {
                    report.segments_removed += 1;
                    vfs.remove_file(&path).map_err(|e| rm_err(&path, e))?;
                } else {
                    report.segments_truncated += 1;
                    vfs.truncate(&path, scan.valid_len).map_err(|e| trunc_err(&path, e))?;
                }
            }
        }
        // Committed redos whose segment file is gone: evicted by
        // retention after the commit — nothing to restore.
        report.missing_segments = per_seg.values().filter(|redos| !redos.is_empty()).count() as u64;

        // 5. Seal governed segments durable, then retire the WAL.
        if let Some(wal_id) = chosen_wal {
            for path in &governed_survivors {
                let mut f = vfs.open_append(path).map_err(|e| {
                    CoreError::Storage(format!("recovery: open {}: {e}", path.display()))
                })?;
                f.sync().map_err(|e| {
                    CoreError::Storage(format!("recovery: sync {}: {e}", path.display()))
                })?;
            }
            let path = wal_path(&dir, wal_id);
            vfs.remove_file(&path).map_err(|e| rm_err(&path, e))?;
        }

        // 6. Rebuild the index from the clean files.
        for (id, path) in existing_segments(vfs, &dir)? {
            let scan = scan_segment(vfs, &path)?;
            debug_assert!(scan.clean(), "segment {id} still damaged after recovery");
            let mut seg_frames = 0u64;
            for rec in scan.records {
                match rec {
                    Record::Band(schema) => {
                        inner.band_meta.insert(schema.band, schema);
                    }
                    Record::Sector(info) => {
                        inner.index.entry((info.band, info.sector_id)).or_insert_with(|| {
                            SectorEntry { info: info.clone(), frames: BTreeMap::new() }
                        });
                    }
                    Record::Tile { header: h, payload_offset } => {
                        let entry = inner.index.entry((h.band, h.sector_id)).or_insert_with(|| {
                            SectorEntry {
                                // Orphan tile (its SectorMeta was in a
                                // corrupted record): synthesize minimal
                                // info so the tile stays reachable.
                                info: SectorInfo {
                                    sector_id: h.sector_id,
                                    lattice: geostreams_geo::LatticeGeoref::north_up(
                                        geostreams_geo::Crs::LatLon,
                                        Rect::new(0.0, 0.0, 1.0, 1.0),
                                        h.cells.col_max + 1,
                                        h.cells.row_max + 1,
                                    ),
                                    band: h.band,
                                    organization: geostreams_core::Organization::RowByRow,
                                    timestamp: geostreams_core::model::Timestamp::new(h.timestamp),
                                },
                                frames: BTreeMap::new(),
                            }
                        });
                        let tref = TileRef {
                            segment: id,
                            offset: payload_offset,
                            len: h.payload_len,
                            tile_x: h.tile_x,
                            cells: h.cells,
                            keyframe: h.keyframe,
                            codec: h.codec,
                            crc: h.payload_crc,
                        };
                        let frame = entry.frames.entry(h.frame_id).or_insert_with(|| {
                            seg_frames += 1;
                            FrameEntry { timestamp: h.timestamp, cells: h.cells, tiles: Vec::new() }
                        });
                        frame.cells = union_cells(frame.cells, h.cells);
                        frame.tiles.push(tref);
                        inner.totals.tiles += 1;
                        inner.totals.raw_bytes += u64::from(h.n_points) * 4;
                        let wm = inner.watermarks.entry(h.band).or_insert((0, 0));
                        *wm = (*wm).max((h.sector_id, h.frame_id));
                    }
                }
            }
            inner.totals.bytes_written += scan.valid_len;
            inner.frames_indexed += seg_frames;
            inner.totals.frames += seg_frames;
            inner
                .segments
                .insert(id, SegmentMeta { path, bytes: scan.valid_len, frames: seg_frames });
            inner.next_segment = inner.next_segment.max(id + 1);
        }

        // Re-anchor watermarks: the committed WAL watermark can only
        // run ahead of the rebuilt index when the frames were evicted
        // after the commit; the max keeps splice handoff monotone.
        for wm in &committed_watermarks {
            let entry = inner.watermarks.entry(wm.band).or_insert((0, 0));
            *entry = (*entry).max((wm.sector, wm.frame));
        }
        let mut final_wms: Vec<BandWatermark> = inner
            .watermarks
            .iter()
            .map(|(&band, &(sector, frame))| BandWatermark { band, sector, frame })
            .collect();
        final_wms.sort_by_key(|w| w.band);
        report.watermarks = final_wms;
        inner.recovery = report;
        Ok(())
    }
}

impl ReplayProvider for Archive {
    fn estimate(&self, source: &str, lo: Option<i64>, hi: Option<i64>) -> Option<ReplayEstimate> {
        let inner = lock(&self.inner);
        let band = inner.band_meta.values().find(|s| s.name == source)?.band;
        let (lo, hi) = (lo.unwrap_or(i64::MIN), hi.unwrap_or(i64::MAX));
        let mut est = ReplayEstimate::default();
        for (_, entry) in inner.index.range((band, 0)..=(band, u64::MAX)) {
            for fe in entry.frames.values() {
                if fe.timestamp >= lo && fe.timestamp < hi {
                    est.frames += 1;
                    est.tiles += fe.tiles.len() as u64;
                    est.bytes += fe.tiles.iter().map(|t| u64::from(t.len)).sum::<u64>();
                }
            }
        }
        Some(est)
    }
}

/// Replay snapshot handed to [`crate::replay::ArchiveReplay`].
pub(crate) struct ReplayPlan {
    pub(crate) band: u16,
    pub(crate) schema: StreamSchema,
    pub(crate) sectors: Vec<PlannedSector>,
    pub(crate) files: HashMap<u64, Arc<dyn VfsFile>>,
}

pub(crate) struct PlannedSector {
    pub(crate) info: SectorInfo,
    pub(crate) emit_box: Option<CellBox>,
    pub(crate) frames: Vec<PlannedFrame>,
}

pub(crate) struct PlannedFrame {
    pub(crate) frame_id: u64,
    pub(crate) timestamp: i64,
    pub(crate) cells: CellBox,
    pub(crate) tiles: Vec<TileRef>,
    pub(crate) emit: bool,
}

fn union_cells(a: CellBox, b: CellBox) -> CellBox {
    CellBox::new(
        a.col_min.min(b.col_min),
        a.row_min.min(b.row_min),
        a.col_max.max(b.col_max),
        a.row_max.max(b.row_max),
    )
}

fn existing_segments(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let names = vfs
        .read_dir_names(dir)
        .map_err(|e| CoreError::Storage(format!("read {}: {e}", dir.display())))?;
    let mut out = Vec::new();
    for name in names {
        if let Some(id) = parse_segment_id(&name) {
            out.push((id, dir.join(&name)));
        }
    }
    out.sort();
    Ok(out)
}

fn existing_wals(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<u64>> {
    let names = vfs
        .read_dir_names(dir)
        .map_err(|e| CoreError::Storage(format!("read {}: {e}", dir.display())))?;
    let mut out: Vec<u64> = names.iter().filter_map(|n| parse_wal_id(n)).collect();
    out.sort_unstable();
    Ok(out)
}

/// Mirrors the active writer's size into its segment metadata (so byte
/// retention accounting sees in-progress segments).
fn note_active_bytes(inner: &mut Inner, bytes: u64) {
    let Some(id) = inner.writer.as_ref().map(SegmentWriter::id) else { return };
    if let Some(meta) = inner.segments.get_mut(&id) {
        meta.bytes = bytes;
    }
}
