//! On-disk segment files: append-only record logs holding compressed
//! tiles plus the metadata needed to rebuild the index from disk.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "GSSTORE1"                                  8-byte magic
//! record*                                     until EOF
//!
//! record   := kind:u8 len:u32 crc:u32 body[len]
//! crc      := CRC-32 (IEEE) over kind ++ len ++ body
//! kind 0   := SectorMeta — serde_json(SectorInfo)
//! kind 1   := Tile       — TileHeader(60 bytes) ++ payload
//! kind 2   := BandMeta   — serde_json(StreamSchema)
//! ```
//!
//! Every record is checksummed, and tile headers additionally carry a
//! CRC of the payload alone so the replay path can verify a tile read
//! positionally (without re-reading the record framing). Every segment
//! is self-describing: the band schema and the open sector's metadata
//! are re-emitted at the head of each new segment, so after
//! segment-granular eviction the surviving files still rebuild a
//! complete index ([`scan_segment`]).
//!
//! [`scan_segment`] never fails on damaged bytes: it reads the longest
//! valid prefix and reports what it had to stop at (torn tail, CRC
//! mismatch), leaving the recovery policy to [`crate::archive`].

use crate::codec::Codec;
use crate::vfs::{crc32, crc32_parts, Vfs, VfsFile};
use geostreams_core::model::{SectorInfo, StreamSchema};
use geostreams_core::{CoreError, Result};
use geostreams_geo::CellBox;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const MAGIC: &[u8; 8] = b"GSSTORE1";

/// Record kind tags.
const KIND_SECTOR: u8 = 0;
const KIND_TILE: u8 = 1;
const KIND_BAND: u8 = 2;

/// Bytes of record framing before the body: kind, length, CRC.
pub const RECORD_HEADER_BYTES: usize = 9;

/// Size of the fixed [`TileHeader`] encoding.
pub const TILE_HEADER_BYTES: usize = 60;

/// Fixed-size header of a tile record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileHeader {
    /// Spectral band of the owning stream.
    pub band: u16,
    /// Scan sector the tile's frame belongs to.
    pub sector_id: u64,
    /// Frame the tile belongs to.
    pub frame_id: u64,
    /// Frame timestamp (sector id under sector-id semantics).
    pub timestamp: i64,
    /// Stripe index: the tile covers columns
    /// `[tile_x * tile_width, …)` of the sector lattice.
    pub tile_x: u32,
    /// Exact cell range the tile covers (frame rows × stripe columns).
    pub cells: CellBox,
    /// Payload codec.
    pub codec: Codec,
    /// True when the payload is a keyframe (no delta predecessor).
    pub keyframe: bool,
    /// Number of present (delivered) cells.
    pub n_points: u32,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// CRC-32 of the payload bytes alone, verified on every read.
    pub payload_crc: u32,
}

impl TileHeader {
    fn encode(&self) -> [u8; TILE_HEADER_BYTES] {
        let mut b = [0u8; TILE_HEADER_BYTES];
        b[0..2].copy_from_slice(&self.band.to_le_bytes());
        b[2..10].copy_from_slice(&self.sector_id.to_le_bytes());
        b[10..18].copy_from_slice(&self.frame_id.to_le_bytes());
        b[18..26].copy_from_slice(&self.timestamp.to_le_bytes());
        b[26..30].copy_from_slice(&self.tile_x.to_le_bytes());
        b[30..34].copy_from_slice(&self.cells.col_min.to_le_bytes());
        b[34..38].copy_from_slice(&self.cells.row_min.to_le_bytes());
        b[38..42].copy_from_slice(&self.cells.col_max.to_le_bytes());
        b[42..46].copy_from_slice(&self.cells.row_max.to_le_bytes());
        b[46] = self.codec.to_u8();
        b[47] = u8::from(self.keyframe);
        b[48..52].copy_from_slice(&self.n_points.to_le_bytes());
        b[52..56].copy_from_slice(&self.payload_len.to_le_bytes());
        b[56..60].copy_from_slice(&self.payload_crc.to_le_bytes());
        b
    }

    fn parse(b: &[u8]) -> Result<TileHeader> {
        if b.len() < TILE_HEADER_BYTES {
            return Err(CoreError::Storage("short tile header".into()));
        }
        let u16le = |i: usize| u16::from_le_bytes([b[i], b[i + 1]]);
        let u32le = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let u64le = |i: usize| {
            u64::from_le_bytes([
                b[i],
                b[i + 1],
                b[i + 2],
                b[i + 3],
                b[i + 4],
                b[i + 5],
                b[i + 6],
                b[i + 7],
            ])
        };
        Ok(TileHeader {
            band: u16le(0),
            sector_id: u64le(2),
            frame_id: u64le(10),
            timestamp: u64le(18) as i64,
            tile_x: u32le(26),
            cells: CellBox::new(u32le(30), u32le(34), u32le(38), u32le(42)),
            codec: Codec::from_u8(b[46])?,
            keyframe: b[47] != 0,
            n_points: u32le(48),
            payload_len: u32le(52),
            payload_crc: u32le(56),
        })
    }
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Storage(format!("{op} {}: {e}", path.display()))
}

/// Path of segment `id` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("segment-{id:06}.seg"))
}

/// Parses a segment id back out of a file name.
pub fn parse_segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("segment-")?.strip_suffix(".seg")?.parse().ok()
}

/// Frames one record: `kind len crc body`, CRC over everything but the
/// CRC field itself. Callers that need write-ahead coverage encode
/// first, log the bytes, then [`SegmentWriter::append_raw`] them.
pub fn encode_record(kind: u8, body: &[&[u8]]) -> Result<Vec<u8>> {
    let len: usize = body.iter().map(|b| b.len()).sum();
    let len32 =
        u32::try_from(len).map_err(|_| CoreError::Storage("segment record over 4 GiB".into()))?;
    let mut rec = Vec::with_capacity(RECORD_HEADER_BYTES + len);
    rec.push(kind);
    rec.extend_from_slice(&len32.to_le_bytes());
    rec.extend_from_slice(&[0u8; 4]);
    for b in body {
        rec.extend_from_slice(b);
    }
    let crc = crc32_parts(&[&rec[..5], &rec[RECORD_HEADER_BYTES..]]);
    rec[5..RECORD_HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
    Ok(rec)
}

/// Encodes a sector-metadata record.
pub fn encode_sector_record(info: &SectorInfo) -> Result<Vec<u8>> {
    let json = serde_json::to_vec(info)
        .map_err(|e| CoreError::Storage(format!("encode sector meta: {e}")))?;
    encode_record(KIND_SECTOR, &[&json])
}

/// Encodes a band-schema record.
pub fn encode_band_record(schema: &StreamSchema) -> Result<Vec<u8>> {
    let json = serde_json::to_vec(schema)
        .map_err(|e| CoreError::Storage(format!("encode band meta: {e}")))?;
    encode_record(KIND_BAND, &[&json])
}

/// Encodes a tile record, filling in the payload length and CRC.
/// Returns the record bytes and the payload's offset *within* them.
pub fn encode_tile_record(header: &TileHeader, payload: &[u8]) -> Result<(Vec<u8>, u64)> {
    let mut h = *header;
    h.payload_len = u32::try_from(payload.len())
        .map_err(|_| CoreError::Storage("tile payload over 4 GiB".into()))?;
    h.payload_crc = crc32(payload);
    let rec = encode_record(KIND_TILE, &[&h.encode(), payload])?;
    Ok((rec, (RECORD_HEADER_BYTES + TILE_HEADER_BYTES) as u64))
}

/// Appends records to one segment file through the [`Vfs`].
pub struct SegmentWriter {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    id: u64,
    bytes: u64,
}

impl SegmentWriter {
    /// Creates segment `id` in `dir` as an empty file — not even the
    /// magic is written, so a write-ahead logger can cover every byte
    /// (magic included) with redo records before they land.
    pub fn create_bare(vfs: &dyn Vfs, dir: &Path, id: u64) -> Result<SegmentWriter> {
        let path = segment_path(dir, id);
        let file = vfs.create_new(&path).map_err(|e| io_err("create", &path, e))?;
        Ok(SegmentWriter { file, path, id, bytes: 0 })
    }

    /// Creates segment `id` in `dir` and writes the magic (stand-alone
    /// use without a WAL, e.g. tests).
    pub fn create(vfs: &dyn Vfs, dir: &Path, id: u64) -> Result<SegmentWriter> {
        let mut w = SegmentWriter::create_bare(vfs, dir, id)?;
        w.append_raw(MAGIC)?;
        Ok(w)
    }

    /// Appends pre-encoded bytes, returning the offset they start at.
    pub fn append_raw(&mut self, rec: &[u8]) -> Result<u64> {
        let at = self.bytes;
        match self.file.append(rec) {
            Ok(()) => {
                self.bytes += rec.len() as u64;
                Ok(at)
            }
            Err(e) => {
                // A torn write may have persisted a prefix; the tracked
                // length is now a lower bound only. Recovery re-scans.
                Err(io_err("append", &self.path, e))
            }
        }
    }

    /// Appends sector metadata.
    pub fn append_sector(&mut self, info: &SectorInfo) -> Result<()> {
        let rec = encode_sector_record(info)?;
        self.append_raw(&rec)?;
        Ok(())
    }

    /// Appends band (stream schema) metadata.
    pub fn append_band(&mut self, schema: &StreamSchema) -> Result<()> {
        let rec = encode_band_record(schema)?;
        self.append_raw(&rec)?;
        Ok(())
    }

    /// Appends a tile record, returning the file offset of its payload.
    pub fn append_tile(&mut self, header: &TileHeader, payload: &[u8]) -> Result<u64> {
        let (rec, payload_in_rec) = encode_tile_record(header, payload)?;
        let record_at = self.append_raw(&rec)?;
        Ok(record_at + payload_in_rec)
    }

    /// Segment id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Bytes written so far (= current file size).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes buffered writes to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush().map_err(|e| io_err("flush", &self.path, e))
    }

    /// Forces written bytes to the medium.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync().map_err(|e| io_err("sync", &self.path, e))
    }
}

/// One record recovered by [`scan_segment`].
pub enum Record {
    /// Sector metadata.
    Sector(SectorInfo),
    /// Band schema metadata.
    Band(StreamSchema),
    /// A tile: parsed header plus the file offset of its payload.
    Tile {
        /// Parsed fixed header.
        header: TileHeader,
        /// Offset of the payload within the segment file.
        payload_offset: u64,
    },
}

/// What [`scan_segment`] found: the longest valid record prefix plus
/// an account of any damage after it.
pub struct SegmentScan {
    /// Records of the valid prefix, in file order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (magic + whole records).
    pub valid_len: u64,
    /// Bytes after the valid prefix (torn or corrupt); `file length -
    /// valid_len`.
    pub discarded_bytes: u64,
    /// True when the scan stopped at an incomplete trailing record
    /// (the classic crash signature).
    pub torn_tail: bool,
    /// Number of structurally complete records rejected by CRC or
    /// parse failure (0 or 1 — the scan stops at the first).
    pub corrupt_records: u64,
}

impl SegmentScan {
    /// True when the file held only valid records.
    pub fn clean(&self) -> bool {
        self.discarded_bytes == 0 && self.corrupt_records == 0 && !self.torn_tail
    }
}

/// Reads the longest valid record prefix of a segment file. Damage
/// never turns into an error: a torn tail, CRC mismatch, or
/// unparseable body stops the scan and is reported in the returned
/// [`SegmentScan`] so the archive can repair or truncate. Only a
/// failure to read the file at all is an error. A file with a bad
/// magic scans as an empty prefix with everything discarded.
pub fn scan_segment(vfs: &dyn Vfs, path: &Path) -> Result<SegmentScan> {
    let data = vfs.read(path).map_err(|e| io_err("read", path, e))?;
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Ok(SegmentScan {
            records: Vec::new(),
            valid_len: 0,
            discarded_bytes: data.len() as u64,
            torn_tail: false,
            corrupt_records: u64::from(!data.is_empty()),
        });
    }
    let mut scan = SegmentScan {
        records: Vec::new(),
        valid_len: MAGIC.len() as u64,
        discarded_bytes: 0,
        torn_tail: false,
        corrupt_records: 0,
    };
    let mut at = MAGIC.len();
    while at < data.len() {
        let Some(hdr) = data.get(at..at + RECORD_HEADER_BYTES) else {
            scan.torn_tail = true;
            break;
        };
        let kind = hdr[0];
        let len = u32::from_le_bytes([hdr[1], hdr[2], hdr[3], hdr[4]]) as usize;
        let crc = u32::from_le_bytes([hdr[5], hdr[6], hdr[7], hdr[8]]);
        let body_at = at + RECORD_HEADER_BYTES;
        let Some(body) = data.get(body_at..body_at + len) else {
            scan.torn_tail = true;
            break;
        };
        if crc32_parts(&[&hdr[..5], body]) != crc {
            scan.corrupt_records += 1;
            break;
        }
        let parsed = parse_body(kind, body, body_at);
        match parsed {
            Some(rec) => scan.records.push(rec),
            None => {
                // CRC passed but the body does not parse — corruption
                // beyond what framing can model (or a future format).
                scan.corrupt_records += 1;
                break;
            }
        }
        at = body_at + len;
        scan.valid_len = at as u64;
    }
    scan.discarded_bytes = data.len() as u64 - scan.valid_len;
    Ok(scan)
}

fn parse_body(kind: u8, body: &[u8], body_at: usize) -> Option<Record> {
    match kind {
        KIND_SECTOR => {
            let info: SectorInfo = serde_json::from_slice(body).ok()?;
            Some(Record::Sector(info))
        }
        KIND_BAND => {
            let schema: StreamSchema = serde_json::from_slice(body).ok()?;
            Some(Record::Band(schema))
        }
        KIND_TILE => {
            let header = TileHeader::parse(body).ok()?;
            if body.len() != TILE_HEADER_BYTES + header.payload_len as usize {
                return None;
            }
            Some(Record::Tile { header, payload_offset: (body_at + TILE_HEADER_BYTES) as u64 })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;
    use geostreams_core::model::Timestamp;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gs-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_header() -> TileHeader {
        TileHeader {
            band: 1,
            sector_id: 4,
            frame_id: 9,
            timestamp: 4,
            tile_x: 0,
            cells: CellBox::new(0, 0, 7, 0),
            codec: Codec::Quant16,
            keyframe: true,
            n_points: 8,
            payload_len: 4,
            payload_crc: 0,
        }
    }

    #[test]
    fn tile_header_round_trips() {
        let h = TileHeader {
            band: 3,
            sector_id: 11,
            frame_id: 0xDEAD_BEEF,
            timestamp: -5,
            tile_x: 2,
            cells: CellBox::new(128, 7, 191, 7),
            codec: Codec::LosslessF32,
            keyframe: true,
            n_points: 64,
            payload_len: 123,
            payload_crc: 0xABCD_EF01,
        };
        assert_eq!(TileHeader::parse(&h.encode()).unwrap(), h);
    }

    #[test]
    fn write_then_scan_recovers_records() {
        let dir = tmp_dir("roundtrip");
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), 8, 8);
        let sector = SectorInfo {
            sector_id: 4,
            lattice,
            band: 1,
            organization: geostreams_core::Organization::RowByRow,
            timestamp: Timestamp::new(4),
        };
        let schema = StreamSchema::new("t", Crs::LatLon);
        let header = sample_header();
        let vfs = StdVfs;
        let mut w = SegmentWriter::create(&vfs, &dir, 0).unwrap();
        w.append_band(&schema).unwrap();
        w.append_sector(&sector).unwrap();
        let payload_at = w.append_tile(&header, &[1, 2, 3, 4]).unwrap();
        w.flush().unwrap();

        let scan = scan_segment(&vfs, &segment_path(&dir, 0)).unwrap();
        assert!(scan.clean());
        assert_eq!(scan.records.len(), 3);
        assert!(matches!(&scan.records[0], Record::Band(s) if s.name == "t"));
        assert!(matches!(&scan.records[1], Record::Sector(s) if s.sector_id == 4));
        match &scan.records[2] {
            Record::Tile { header: h, payload_offset } => {
                assert_eq!(h.band, header.band);
                assert_eq!(h.payload_crc, crc32(&[1, 2, 3, 4]));
                assert_eq!(*payload_offset, payload_at);
                let data = std::fs::read(segment_path(&dir, 0)).unwrap();
                assert_eq!(&data[*payload_offset as usize..][..4], &[1, 2, 3, 4]);
            }
            _ => unreachable!(),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_magic_scans_as_fully_discarded() {
        let dir = tmp_dir("magic");
        let path = dir.join("segment-000000.seg");
        std::fs::write(&path, b"NOTSTOREjunkjunk").unwrap();
        let scan = scan_segment(&StdVfs, &path).unwrap();
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.discarded_bytes, 16);
        assert_eq!(scan.corrupt_records, 1);
        assert!(scan.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_the_scan_and_is_reported() {
        let dir = tmp_dir("torn");
        let vfs = StdVfs;
        let mut w = SegmentWriter::create(&vfs, &dir, 0).unwrap();
        let schema = StreamSchema::new("t", Crs::LatLon);
        w.append_band(&schema).unwrap();
        let good_len = w.bytes();
        // A second record, torn mid-body.
        let rec = encode_band_record(&schema).unwrap();
        w.append_raw(&rec[..rec.len() - 3]).unwrap();
        w.flush().unwrap();

        let scan = scan_segment(&vfs, &segment_path(&dir, 0)).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.discarded_bytes, rec.len() as u64 - 3);
        assert!(scan.torn_tail);
        assert_eq!(scan.corrupt_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_fails_record_crc() {
        let dir = tmp_dir("flip");
        let vfs = StdVfs;
        let mut w = SegmentWriter::create(&vfs, &dir, 0).unwrap();
        w.append_tile(&sample_header(), &[9, 9, 9, 9]).unwrap();
        w.flush().unwrap();
        drop(w);
        let path = segment_path(&dir, 0);
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 2] ^= 0x40; // flip one payload bit
        std::fs::write(&path, &data).unwrap();

        let scan = scan_segment(&vfs, &path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.corrupt_records, 1);
        assert_eq!(scan.valid_len, MAGIC.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_parse() {
        assert_eq!(parse_segment_id("segment-000042.seg"), Some(42));
        assert_eq!(parse_segment_id("segment-x.seg"), None);
        assert_eq!(parse_segment_id("other.txt"), None);
    }
}
