//! On-disk segment files: append-only record logs holding compressed
//! tiles plus the metadata needed to rebuild the index from disk.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "GSSTORE1"                                  8-byte magic
//! record*                                     until EOF
//!
//! record   := kind:u8 len:u32 body[len]
//! kind 0   := SectorMeta — serde_json(SectorInfo)
//! kind 1   := Tile       — TileHeader(56 bytes) ++ payload
//! kind 2   := BandMeta   — serde_json(StreamSchema)
//! ```
//!
//! Every segment is self-describing: the band schema and the open
//! sector's metadata are re-emitted at the head of each new segment, so
//! after segment-granular eviction the surviving files still rebuild a
//! complete index ([`scan_segment`]).

use crate::codec::Codec;
use geostreams_core::model::{SectorInfo, StreamSchema};
use geostreams_core::{CoreError, Result};
use geostreams_geo::CellBox;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const MAGIC: &[u8; 8] = b"GSSTORE1";

/// Record kind tags.
const KIND_SECTOR: u8 = 0;
const KIND_TILE: u8 = 1;
const KIND_BAND: u8 = 2;

/// Size of the fixed [`TileHeader`] encoding.
pub const TILE_HEADER_BYTES: usize = 56;

/// Fixed-size header of a tile record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileHeader {
    /// Spectral band of the owning stream.
    pub band: u16,
    /// Scan sector the tile's frame belongs to.
    pub sector_id: u64,
    /// Frame the tile belongs to.
    pub frame_id: u64,
    /// Frame timestamp (sector id under sector-id semantics).
    pub timestamp: i64,
    /// Stripe index: the tile covers columns
    /// `[tile_x * tile_width, …)` of the sector lattice.
    pub tile_x: u32,
    /// Exact cell range the tile covers (frame rows × stripe columns).
    pub cells: CellBox,
    /// Payload codec.
    pub codec: Codec,
    /// True when the payload is a keyframe (no delta predecessor).
    pub keyframe: bool,
    /// Number of present (delivered) cells.
    pub n_points: u32,
    /// Payload length in bytes.
    pub payload_len: u32,
}

impl TileHeader {
    fn encode(&self) -> [u8; TILE_HEADER_BYTES] {
        let mut b = [0u8; TILE_HEADER_BYTES];
        b[0..2].copy_from_slice(&self.band.to_le_bytes());
        b[2..10].copy_from_slice(&self.sector_id.to_le_bytes());
        b[10..18].copy_from_slice(&self.frame_id.to_le_bytes());
        b[18..26].copy_from_slice(&self.timestamp.to_le_bytes());
        b[26..30].copy_from_slice(&self.tile_x.to_le_bytes());
        b[30..34].copy_from_slice(&self.cells.col_min.to_le_bytes());
        b[34..38].copy_from_slice(&self.cells.row_min.to_le_bytes());
        b[38..42].copy_from_slice(&self.cells.col_max.to_le_bytes());
        b[42..46].copy_from_slice(&self.cells.row_max.to_le_bytes());
        b[46] = self.codec.to_u8();
        b[47] = u8::from(self.keyframe);
        b[48..52].copy_from_slice(&self.n_points.to_le_bytes());
        b[52..56].copy_from_slice(&self.payload_len.to_le_bytes());
        b
    }

    fn parse(b: &[u8]) -> Result<TileHeader> {
        if b.len() < TILE_HEADER_BYTES {
            return Err(CoreError::Storage("short tile header".into()));
        }
        let u16le = |i: usize| u16::from_le_bytes([b[i], b[i + 1]]);
        let u32le = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let u64le = |i: usize| {
            u64::from_le_bytes([
                b[i],
                b[i + 1],
                b[i + 2],
                b[i + 3],
                b[i + 4],
                b[i + 5],
                b[i + 6],
                b[i + 7],
            ])
        };
        Ok(TileHeader {
            band: u16le(0),
            sector_id: u64le(2),
            frame_id: u64le(10),
            timestamp: u64le(18) as i64,
            tile_x: u32le(26),
            cells: CellBox::new(u32le(30), u32le(34), u32le(38), u32le(42)),
            codec: Codec::from_u8(b[46])?,
            keyframe: b[47] != 0,
            n_points: u32le(48),
            payload_len: u32le(52),
        })
    }
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Storage(format!("{op} {}: {e}", path.display()))
}

/// Path of segment `id` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("segment-{id:06}.seg"))
}

/// Parses a segment id back out of a file name.
pub fn parse_segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("segment-")?.strip_suffix(".seg")?.parse().ok()
}

/// Appends records to one segment file.
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    id: u64,
    bytes: u64,
}

impl SegmentWriter {
    /// Creates segment `id` in `dir` and writes the magic.
    pub fn create(dir: &Path, id: u64) -> Result<SegmentWriter> {
        let path = segment_path(dir, id);
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, e))?;
        file.write_all(MAGIC).map_err(|e| io_err("write", &path, e))?;
        Ok(SegmentWriter { file, path, id, bytes: MAGIC.len() as u64 })
    }

    fn append(&mut self, kind: u8, body: &[&[u8]]) -> Result<u64> {
        let len: usize = body.iter().map(|b| b.len()).sum();
        let len32 = u32::try_from(len)
            .map_err(|_| CoreError::Storage("segment record over 4 GiB".into()))?;
        let mut rec = Vec::with_capacity(5 + len);
        rec.push(kind);
        rec.extend_from_slice(&len32.to_le_bytes());
        for b in body {
            rec.extend_from_slice(b);
        }
        self.file.write_all(&rec).map_err(|e| io_err("append", &self.path, e))?;
        let at = self.bytes;
        self.bytes += rec.len() as u64;
        Ok(at)
    }

    /// Appends sector metadata.
    pub fn append_sector(&mut self, info: &SectorInfo) -> Result<()> {
        let json = serde_json::to_vec(info)
            .map_err(|e| CoreError::Storage(format!("encode sector meta: {e}")))?;
        self.append(KIND_SECTOR, &[&json])?;
        Ok(())
    }

    /// Appends band (stream schema) metadata.
    pub fn append_band(&mut self, schema: &StreamSchema) -> Result<()> {
        let json = serde_json::to_vec(schema)
            .map_err(|e| CoreError::Storage(format!("encode band meta: {e}")))?;
        self.append(KIND_BAND, &[&json])?;
        Ok(())
    }

    /// Appends a tile record, returning the file offset of its payload.
    pub fn append_tile(&mut self, header: &TileHeader, payload: &[u8]) -> Result<u64> {
        let record_at = self.append(KIND_TILE, &[&header.encode(), payload])?;
        Ok(record_at + 5 + TILE_HEADER_BYTES as u64)
    }

    /// Segment id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Bytes written so far (= current file size).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes buffered writes to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush().map_err(|e| io_err("flush", &self.path, e))
    }
}

/// One record recovered by [`scan_segment`].
pub enum Record {
    /// Sector metadata.
    Sector(SectorInfo),
    /// Band schema metadata.
    Band(StreamSchema),
    /// A tile: parsed header plus the file offset of its payload.
    Tile {
        /// Parsed fixed header.
        header: TileHeader,
        /// Offset of the payload within the segment file.
        payload_offset: u64,
    },
}

/// Reads every record of a segment file (used to rebuild the in-memory
/// index when an archive directory is reopened).
pub fn scan_segment(path: &Path) -> Result<Vec<Record>> {
    let data = std::fs::read(path).map_err(|e| io_err("read", path, e))?;
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(CoreError::Storage(format!("{}: bad segment magic", path.display())));
    }
    let mut out = Vec::new();
    let mut at = MAGIC.len();
    while at < data.len() {
        let Some(hdr) = data.get(at..at + 5) else {
            return Err(CoreError::Storage(format!(
                "{}: truncated record header at {at}",
                path.display()
            )));
        };
        let kind = hdr[0];
        let len = u32::from_le_bytes([hdr[1], hdr[2], hdr[3], hdr[4]]) as usize;
        let body_at = at + 5;
        let Some(body) = data.get(body_at..body_at + len) else {
            return Err(CoreError::Storage(format!(
                "{}: truncated record body at {at}",
                path.display()
            )));
        };
        match kind {
            KIND_SECTOR => {
                let info: SectorInfo = serde_json::from_slice(body).map_err(|e| {
                    CoreError::Storage(format!("{}: sector meta: {e}", path.display()))
                })?;
                out.push(Record::Sector(info));
            }
            KIND_BAND => {
                let schema: StreamSchema = serde_json::from_slice(body).map_err(|e| {
                    CoreError::Storage(format!("{}: band meta: {e}", path.display()))
                })?;
                out.push(Record::Band(schema));
            }
            KIND_TILE => {
                let header = TileHeader::parse(body)?;
                if body.len() != TILE_HEADER_BYTES + header.payload_len as usize {
                    return Err(CoreError::Storage(format!(
                        "{}: tile record length mismatch at {at}",
                        path.display()
                    )));
                }
                out.push(Record::Tile {
                    header,
                    payload_offset: (body_at + TILE_HEADER_BYTES) as u64,
                });
            }
            other => {
                return Err(CoreError::Storage(format!(
                    "{}: unknown record kind {other} at {at}",
                    path.display()
                )));
            }
        }
        at = body_at + len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_core::model::Timestamp;
    use geostreams_geo::{Crs, LatticeGeoref, Rect};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gs-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tile_header_round_trips() {
        let h = TileHeader {
            band: 3,
            sector_id: 11,
            frame_id: 0xDEAD_BEEF,
            timestamp: -5,
            tile_x: 2,
            cells: CellBox::new(128, 7, 191, 7),
            codec: Codec::LosslessF32,
            keyframe: true,
            n_points: 64,
            payload_len: 123,
        };
        assert_eq!(TileHeader::parse(&h.encode()).unwrap(), h);
    }

    #[test]
    fn write_then_scan_recovers_records() {
        let dir = tmp_dir("roundtrip");
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), 8, 8);
        let sector = SectorInfo {
            sector_id: 4,
            lattice,
            band: 1,
            organization: geostreams_core::Organization::RowByRow,
            timestamp: Timestamp::new(4),
        };
        let schema = StreamSchema::new("t", Crs::LatLon);
        let header = TileHeader {
            band: 1,
            sector_id: 4,
            frame_id: 9,
            timestamp: 4,
            tile_x: 0,
            cells: CellBox::new(0, 0, 7, 0),
            codec: Codec::Quant16,
            keyframe: true,
            n_points: 8,
            payload_len: 4,
        };
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append_band(&schema).unwrap();
        w.append_sector(&sector).unwrap();
        let payload_at = w.append_tile(&header, &[1, 2, 3, 4]).unwrap();
        w.flush().unwrap();

        let recs = scan_segment(&segment_path(&dir, 0)).unwrap();
        assert_eq!(recs.len(), 3);
        assert!(matches!(&recs[0], Record::Band(s) if s.name == "t"));
        assert!(matches!(&recs[1], Record::Sector(s) if s.sector_id == 4));
        match &recs[2] {
            Record::Tile { header: h, payload_offset } => {
                assert_eq!(*h, header);
                assert_eq!(*payload_offset, payload_at);
                let data = std::fs::read(segment_path(&dir, 0)).unwrap();
                assert_eq!(&data[*payload_offset as usize..][..4], &[1, 2, 3, 4]);
            }
            _ => unreachable!(),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let dir = tmp_dir("magic");
        let path = dir.join("segment-000000.seg");
        std::fs::write(&path, b"NOTSTORE").unwrap();
        assert!(scan_segment(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_parse() {
        assert_eq!(parse_segment_id("segment-000042.seg"), Some(42));
        assert_eq!(parse_segment_id("segment-x.seg"), None);
        assert_eq!(parse_segment_id("other.txt"), None);
    }
}
