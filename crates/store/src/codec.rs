//! Tile codecs: quantization, delta chains, byte planes and PackBits.
//!
//! A tile stripe (one `tile_width`-column slice of a frame) is encoded
//! in four steps:
//!
//! 1. **Lanes** — each cell value becomes an integer lane: a 16-bit
//!    quantized count under [`Codec::Quant16`] (faithful to GOES GVAR's
//!    10-bit detector counts, and half the size of `f32` before any
//!    compression even starts), or the raw `f32` bit pattern under
//!    [`Codec::LosslessF32`].
//! 2. **Delta** — a *keyframe* stripe stores horizontal deltas (each
//!    lane minus its left neighbor); a chained stripe stores vertical
//!    deltas against the previous frame's co-located stripe. Deltas are
//!    wrapping subtraction for Quant16 and XOR for LosslessF32, so the
//!    chain is exactly invertible.
//! 3. **Byte planes** — deltas are split into per-byte planes (2 for
//!    Quant16, 4 for LosslessF32); smooth imagery concentrates entropy
//!    in the low plane and leaves high planes almost all zero.
//! 4. **PackBits RLE** — each plane (and the presence bitmap) is
//!    run-length encoded with the classic PackBits scheme.
//!
//! Cells the instrument never delivered are recorded in a **presence
//! bitmap** and re-emitted as gaps on replay — the archive never invents
//! data. Missing lanes are filled with their predicted value (left
//! neighbor on keyframes, previous frame otherwise) so they cost ~zero
//! bits and keep the delta chain deterministic on both sides.

use geostreams_core::{CoreError, Result};

/// Tile payload encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// 16-bit quantization over the stream's declared value range
    /// (lossy: ~1/65535 of the range, below sensor noise for GOES-class
    /// counts), then delta + 2 byte planes + PackBits.
    #[default]
    Quant16,
    /// Bit-exact `f32` storage: XOR delta of bit patterns, 4 byte
    /// planes + PackBits. Larger, but replay is bitwise identical.
    LosslessF32,
}

impl Codec {
    /// Number of byte planes a delta lane splits into.
    pub fn planes(self) -> usize {
        match self {
            Codec::Quant16 => 2,
            Codec::LosslessF32 => 4,
        }
    }

    /// Wire tag for segment records.
    pub fn to_u8(self) -> u8 {
        match self {
            Codec::Quant16 => 0,
            Codec::LosslessF32 => 1,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(v: u8) -> Result<Codec> {
        match v {
            0 => Ok(Codec::Quant16),
            1 => Ok(Codec::LosslessF32),
            other => Err(CoreError::Storage(format!("unknown codec tag {other}"))),
        }
    }

    /// Lane for a value.
    fn lane(self, v: f32, range: (f64, f64)) -> u32 {
        match self {
            Codec::Quant16 => u32::from(quantize(v, range)),
            Codec::LosslessF32 => v.to_bits(),
        }
    }

    /// Value for a lane.
    pub fn value(self, lane: u32, range: (f64, f64)) -> f32 {
        match self {
            Codec::Quant16 => dequantize(lane as u16, range),
            Codec::LosslessF32 => f32::from_bits(lane),
        }
    }

    /// Invertible delta `a ⊖ b`.
    fn delta(self, a: u32, b: u32) -> u32 {
        match self {
            Codec::Quant16 => u32::from((a as u16).wrapping_sub(b as u16)),
            Codec::LosslessF32 => a ^ b,
        }
    }

    /// Inverse of [`Codec::delta`]: recovers `a` from `d = a ⊖ b`.
    fn undelta(self, d: u32, b: u32) -> u32 {
        match self {
            Codec::Quant16 => u32::from((d as u16).wrapping_add(b as u16)),
            Codec::LosslessF32 => d ^ b,
        }
    }
}

/// Quantizes a value into the 16-bit lane domain over `range` (clamped;
/// a degenerate range maps everything to 0).
pub fn quantize(v: f32, (lo, hi): (f64, f64)) -> u16 {
    let span = hi - lo;
    if span <= 0.0 {
        return 0;
    }
    let t = ((f64::from(v) - lo) / span * 65535.0).round();
    if t <= 0.0 {
        0
    } else if t >= 65535.0 {
        65535
    } else {
        t as u16
    }
}

/// Inverse of [`quantize`] (the codebook midpoint of the chosen level).
pub fn dequantize(q: u16, (lo, hi): (f64, f64)) -> f32 {
    (lo + f64::from(q) / 65535.0 * (hi - lo)) as f32
}

/// PackBits run-length encoding: control byte `c` in `0..=127` is
/// followed by `c + 1` literal bytes; `c` in `129..=255` means the next
/// byte repeats `257 - c` times; `128` is reserved (never emitted).
pub fn packbits_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut i = 0;
    while i < data.len() {
        // Measure the run starting at i (capped at 128).
        let b = data[i];
        let mut run = 1;
        while run < 128 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal chunk: extend until a run of >= 3 starts (or 128 bytes).
        let start = i;
        let mut end = i + run;
        while end < data.len() && end - start < 128 {
            let c = data[end];
            let mut r = 1;
            while r < 3 && end + r < data.len() && data[end + r] == c {
                r += 1;
            }
            if r >= 3 {
                break;
            }
            end += r;
        }
        let end = end.min(start + 128).min(data.len());
        out.push((end - start - 1) as u8);
        out.extend_from_slice(&data[start..end]);
        i = end;
    }
    out
}

/// Decodes PackBits data into exactly `expected_len` bytes.
pub fn packbits_decode(data: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0;
    while out.len() < expected_len {
        let Some(&c) = data.get(i) else {
            return Err(CoreError::Storage("truncated PackBits stream".into()));
        };
        i += 1;
        if c < 128 {
            let n = usize::from(c) + 1;
            let Some(lit) = data.get(i..i + n) else {
                return Err(CoreError::Storage("truncated PackBits literal".into()));
            };
            out.extend_from_slice(lit);
            i += n;
        } else if c == 128 {
            return Err(CoreError::Storage("reserved PackBits control byte 128".into()));
        } else {
            let n = 257 - usize::from(c);
            let Some(&b) = data.get(i) else {
                return Err(CoreError::Storage("truncated PackBits run".into()));
            };
            i += 1;
            out.extend(std::iter::repeat_n(b, n));
        }
    }
    if out.len() != expected_len || i != data.len() {
        return Err(CoreError::Storage(format!(
            "PackBits length mismatch: decoded {} of {expected_len} expected bytes, \
             consumed {i} of {} input bytes",
            out.len(),
            data.len()
        )));
    }
    Ok(out)
}

fn pack_bits(present: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; present.len().div_ceil(8)];
    for (i, &p) in present.iter().enumerate() {
        if p {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

fn push_section(out: &mut Vec<u8>, raw: &[u8]) {
    let packed = packbits_encode(raw);
    out.extend_from_slice(&u32::try_from(packed.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&packed);
}

fn read_section(payload: &[u8], at: &mut usize, raw_len: usize) -> Result<Vec<u8>> {
    let Some(hdr) = payload.get(*at..*at + 4) else {
        return Err(CoreError::Storage("truncated tile section header".into()));
    };
    let clen = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
    *at += 4;
    let Some(body) = payload.get(*at..*at + clen) else {
        return Err(CoreError::Storage("truncated tile section body".into()));
    };
    *at += clen;
    packbits_decode(body, raw_len)
}

/// An encoded stripe plus the lane vector that continues its delta chain.
pub struct EncodedStripe {
    /// Payload bytes for the segment's tile record.
    pub payload: Vec<u8>,
    /// Reconstructed lanes — the `prev` input for the next frame's
    /// co-located stripe.
    pub lanes: Vec<u32>,
    /// Number of present (delivered) cells.
    pub n_points: u32,
}

/// Encodes one stripe of cell values.
///
/// `prev` is the co-located stripe of the previous frame; pass
/// `keyframe = true` whenever it is absent or its length differs (the
/// caller decides keyframe cadence, the codec enforces soundness).
pub fn encode_stripe(
    codec: Codec,
    range: (f64, f64),
    values: &[Option<f32>],
    prev: Option<&[u32]>,
    keyframe: bool,
) -> Result<EncodedStripe> {
    let chained = match prev {
        Some(p) if !keyframe && p.len() == values.len() => Some(p),
        Some(_) if !keyframe => {
            return Err(CoreError::Storage("delta chain length mismatch without keyframe".into()));
        }
        _ if !keyframe => {
            return Err(CoreError::Storage("delta chain has no predecessor".into()));
        }
        _ => None,
    };
    let mut present = Vec::with_capacity(values.len());
    let mut lanes = Vec::with_capacity(values.len());
    let mut n_points = 0u32;
    for (i, v) in values.iter().enumerate() {
        match v {
            Some(v) => {
                present.push(true);
                lanes.push(codec.lane(*v, range));
                n_points += 1;
            }
            None => {
                present.push(false);
                // Predicted fill: zero delta bits, deterministic on decode.
                let fill = match chained {
                    Some(p) => p[i],
                    None if i > 0 => lanes[i - 1],
                    None => 0,
                };
                lanes.push(fill);
            }
        }
    }
    let deltas: Vec<u32> = (0..lanes.len())
        .map(|i| match chained {
            Some(p) => codec.delta(lanes[i], p[i]),
            None if i > 0 => codec.delta(lanes[i], lanes[i - 1]),
            None => lanes[i],
        })
        .collect();
    let mut payload = Vec::new();
    push_section(&mut payload, &pack_bits(&present));
    for p in 0..codec.planes() {
        let plane: Vec<u8> = deltas.iter().map(|d| (d >> (8 * p)) as u8).collect();
        push_section(&mut payload, &plane);
    }
    Ok(EncodedStripe { payload, lanes, n_points })
}

/// A decoded stripe: which cells were present, and the lane vector (both
/// the data and the chain state for the next frame).
pub struct DecodedStripe {
    /// Presence bitmap, one flag per cell of the stripe.
    pub present: Vec<bool>,
    /// Reconstructed lanes (convert with [`Codec::value`]).
    pub lanes: Vec<u32>,
}

/// Decodes one stripe of `n_cells` cells; `prev` must be the lanes of
/// the previous frame's co-located stripe unless `keyframe`.
pub fn decode_stripe(
    codec: Codec,
    payload: &[u8],
    n_cells: usize,
    prev: Option<&[u32]>,
    keyframe: bool,
) -> Result<DecodedStripe> {
    let chained = match prev {
        _ if keyframe => None,
        Some(p) if p.len() == n_cells => Some(p),
        _ => {
            return Err(CoreError::Storage(
                "chained tile decoded without a matching predecessor".into(),
            ));
        }
    };
    let mut at = 0usize;
    let present = unpack_bits(&read_section(payload, &mut at, n_cells.div_ceil(8))?, n_cells);
    let mut planes = Vec::with_capacity(codec.planes());
    for _ in 0..codec.planes() {
        planes.push(read_section(payload, &mut at, n_cells)?);
    }
    if at != payload.len() {
        return Err(CoreError::Storage("trailing bytes after tile sections".into()));
    }
    let mut lanes = Vec::with_capacity(n_cells);
    for i in 0..n_cells {
        let mut d = 0u32;
        for (p, plane) in planes.iter().enumerate() {
            d |= u32::from(plane[i]) << (8 * p);
        }
        let lane = match chained {
            Some(p) => codec.undelta(d, p[i]),
            None if i > 0 => codec.undelta(d, lanes[i - 1]),
            None => d,
        };
        lanes.push(lane);
    }
    Ok(DecodedStripe { present, lanes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packbits_round_trips() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 1000],
            vec![1, 2, 3, 4, 5],
            vec![1, 1, 2, 2, 3, 3],
            (0..=255u8).chain(std::iter::repeat_n(9, 300)).collect(),
            {
                let mut v: Vec<u8> = (0..512).map(|i| (i % 7) as u8).collect();
                v.extend(vec![42u8; 129]);
                v
            },
        ];
        for data in cases {
            let enc = packbits_encode(&data);
            let dec = packbits_decode(&enc, data.len()).unwrap();
            assert_eq!(dec, data);
        }
    }

    #[test]
    fn packbits_compresses_constant_data() {
        let data = vec![0u8; 4096];
        assert!(packbits_encode(&data).len() < 80);
    }

    #[test]
    fn quantize_is_monotone_and_clamped() {
        let r = (0.0, 1.0);
        assert_eq!(quantize(-1.0, r), 0);
        assert_eq!(quantize(2.0, r), 65535);
        assert!(quantize(0.25, r) < quantize(0.75, r));
        // Dequantized value stays within half a step of the original.
        let v = 0.6180339f32;
        assert!((dequantize(quantize(v, r), r) - v).abs() < 1.0 / 65534.0);
    }

    fn chain_case(codec: Codec) {
        let range = (0.0, 1.0);
        let rows: Vec<Vec<Option<f32>>> = (0..5)
            .map(|f| {
                (0..64)
                    .map(|c| {
                        if f == 2 && c % 7 == 0 {
                            None // a frame with gaps
                        } else {
                            Some((c as f32 / 64.0 + f as f32 * 0.01).min(1.0))
                        }
                    })
                    .collect()
            })
            .collect();
        let mut enc_prev: Option<Vec<u32>> = None;
        let mut dec_prev: Option<Vec<u32>> = None;
        for (f, vals) in rows.iter().enumerate() {
            let key = f == 0;
            let e = encode_stripe(codec, range, vals, enc_prev.as_deref(), key).unwrap();
            let d = decode_stripe(codec, &e.payload, vals.len(), dec_prev.as_deref(), key).unwrap();
            assert_eq!(d.lanes, e.lanes, "frame {f}");
            for (i, v) in vals.iter().enumerate() {
                match v {
                    None => assert!(!d.present[i]),
                    Some(v) => {
                        assert!(d.present[i]);
                        let got = codec.value(d.lanes[i], range);
                        match codec {
                            Codec::LosslessF32 => assert_eq!(got.to_bits(), v.to_bits()),
                            Codec::Quant16 => assert!((got - v).abs() < 1.0 / 65534.0),
                        }
                    }
                }
            }
            enc_prev = Some(e.lanes);
            dec_prev = Some(d.lanes);
        }
    }

    #[test]
    fn quant16_chain_round_trips() {
        chain_case(Codec::Quant16);
    }

    #[test]
    fn lossless_chain_is_bitwise_exact() {
        chain_case(Codec::LosslessF32);
    }

    #[test]
    fn chained_decode_without_predecessor_errors() {
        let vals: Vec<Option<f32>> = (0..8).map(|c| Some(c as f32)).collect();
        let range = (0.0, 8.0);
        let key = encode_stripe(Codec::Quant16, range, &vals, None, true).unwrap();
        let e = encode_stripe(Codec::Quant16, range, &vals, Some(&key.lanes), false).unwrap();
        assert!(decode_stripe(Codec::Quant16, &e.payload, 8, None, false).is_err());
        assert!(encode_stripe(Codec::Quant16, range, &vals, None, false).is_err());
    }

    #[test]
    fn smooth_rows_compress_well() {
        // A smooth gradient row chained over 16 frames: the payload must
        // be much smaller than raw f32 (the ratio the bench reports).
        let range = (0.0, 1.0);
        let mut prev: Option<Vec<u32>> = None;
        let mut payload_bytes = 0usize;
        let n = 512;
        for f in 0..16 {
            let vals: Vec<Option<f32>> =
                (0..n).map(|c| Some(((c as f32 / n as f32) + f as f32 * 0.001).fract())).collect();
            let e = encode_stripe(Codec::Quant16, range, &vals, prev.as_deref(), f == 0).unwrap();
            payload_bytes += e.payload.len();
            prev = Some(e.lanes);
        }
        let raw = 16 * n * 4;
        assert!(payload_bytes * 2 < raw, "compressed {payload_bytes} vs raw {raw} bytes");
    }
}
