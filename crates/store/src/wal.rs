//! Write-ahead log for the archive.
//!
//! Every byte destined for a segment file is first framed into a redo
//! record here (strict write-ahead: WAL append happens *before* the
//! segment append it describes). A group-commit record seals a batch;
//! recovery trusts only the committed prefix — anything after the last
//! commit is discarded, bounding crash loss to at most one uncommitted
//! group.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "GSWALOG1"                                  8-byte magic
//! record*                                     until EOF
//!
//! record   := len:u32 crc:u32 body[len]       crc = CRC-32(body)
//! body     := kind:u8 payload
//! kind 0   := MetaRedo  — seg:u64 off:u64 data            (raw segment bytes)
//! kind 1   := FrameRedo — seg:u64 off:u64 band:u16
//!                         sector:u64 frame:u64 data       (one frame's records)
//! kind 2   := Commit    — count:u16 (band:u16 sector:u64 frame:u64)*
//! kind 3   := Rotate    — floor_seg:u64                   (first record of a WAL)
//! ```
//!
//! The `Rotate` record partitions the segment space: segments with
//! `id >= floor_seg` are governed by this WAL (their tails may need
//! redo-based repair); segments below the floor were fsynced before
//! the previous WAL was deleted and are sealed-durable.
//!
//! Scanning mirrors [`crate::segment::scan_segment`]: damage is never
//! an error, it just ends the trusted prefix and is reported.

use crate::vfs::{crc32, Vfs, VfsFile};
use geostreams_core::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"GSWALOG1";

const KIND_META_REDO: u8 = 0;
const KIND_FRAME_REDO: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_ROTATE: u8 = 3;

/// When the WAL forces bytes to the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsyncPolicy {
    /// fsync the WAL on every group commit (default): a crash loses at
    /// most the open group, even through power failure.
    OnCommit,
    /// Never fsync during steady state (only at rotation). Fastest;
    /// an OS crash can lose any bytes still in the page cache, but
    /// recovery still never serves a torn or corrupt record.
    Never,
}

/// Per-band high-water mark carried by commit records: the last frame
/// of `band` known durable at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BandWatermark {
    /// Spectral band.
    pub band: u16,
    /// Scan sector of the frame.
    pub sector: u64,
    /// Frame id.
    pub frame: u64,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Raw segment bytes (magic, metadata records) to redo at `off`.
    MetaRedo {
        /// Target segment id.
        seg: u64,
        /// Byte offset within the segment file.
        off: u64,
        /// The exact bytes the segment write will append.
        data: Vec<u8>,
    },
    /// One frame's concatenated tile records to redo at `off`.
    FrameRedo {
        /// Target segment id.
        seg: u64,
        /// Byte offset within the segment file.
        off: u64,
        /// Band the frame belongs to.
        band: u16,
        /// Sector the frame belongs to.
        sector: u64,
        /// Frame id.
        frame: u64,
        /// The exact bytes the segment write will append.
        data: Vec<u8>,
    },
    /// Seals every record before it; carries per-band watermarks.
    Commit {
        /// High-water marks at commit time.
        watermarks: Vec<BandWatermark>,
    },
    /// First record of every WAL: segments `>= floor_seg` are governed
    /// by this WAL.
    Rotate {
        /// Lowest segment id this WAL covers.
        floor_seg: u64,
    },
}

impl WalRecord {
    /// Bytes this record's redo payload will append to a segment
    /// (zero for commit/rotate).
    pub fn redo_len(&self) -> u64 {
        match self {
            WalRecord::MetaRedo { data, .. } | WalRecord::FrameRedo { data, .. } => {
                data.len() as u64
            }
            _ => 0,
        }
    }

    fn encode_body(&self) -> Vec<u8> {
        match self {
            WalRecord::MetaRedo { seg, off, data } => {
                let mut b = Vec::with_capacity(17 + data.len());
                b.push(KIND_META_REDO);
                b.extend_from_slice(&seg.to_le_bytes());
                b.extend_from_slice(&off.to_le_bytes());
                b.extend_from_slice(data);
                b
            }
            WalRecord::FrameRedo { seg, off, band, sector, frame, data } => {
                let mut b = Vec::with_capacity(35 + data.len());
                b.push(KIND_FRAME_REDO);
                b.extend_from_slice(&seg.to_le_bytes());
                b.extend_from_slice(&off.to_le_bytes());
                b.extend_from_slice(&band.to_le_bytes());
                b.extend_from_slice(&sector.to_le_bytes());
                b.extend_from_slice(&frame.to_le_bytes());
                b.extend_from_slice(data);
                b
            }
            WalRecord::Commit { watermarks } => {
                let mut b = Vec::with_capacity(3 + watermarks.len() * 18);
                b.push(KIND_COMMIT);
                b.extend_from_slice(&(watermarks.len() as u16).to_le_bytes());
                for w in watermarks {
                    b.extend_from_slice(&w.band.to_le_bytes());
                    b.extend_from_slice(&w.sector.to_le_bytes());
                    b.extend_from_slice(&w.frame.to_le_bytes());
                }
                b
            }
            WalRecord::Rotate { floor_seg } => {
                let mut b = Vec::with_capacity(9);
                b.push(KIND_ROTATE);
                b.extend_from_slice(&floor_seg.to_le_bytes());
                b
            }
        }
    }

    fn parse_body(body: &[u8]) -> Option<WalRecord> {
        let (&kind, rest) = body.split_first()?;
        let u16at =
            |b: &[u8], i: usize| Some(u16::from_le_bytes(b.get(i..i + 2)?.try_into().ok()?));
        let u64at =
            |b: &[u8], i: usize| Some(u64::from_le_bytes(b.get(i..i + 8)?.try_into().ok()?));
        match kind {
            KIND_META_REDO => {
                let seg = u64at(rest, 0)?;
                let off = u64at(rest, 8)?;
                Some(WalRecord::MetaRedo { seg, off, data: rest.get(16..)?.to_vec() })
            }
            KIND_FRAME_REDO => {
                let seg = u64at(rest, 0)?;
                let off = u64at(rest, 8)?;
                let band = u16at(rest, 16)?;
                let sector = u64at(rest, 18)?;
                let frame = u64at(rest, 26)?;
                Some(WalRecord::FrameRedo {
                    seg,
                    off,
                    band,
                    sector,
                    frame,
                    data: rest.get(34..)?.to_vec(),
                })
            }
            KIND_COMMIT => {
                let count = u16at(rest, 0)? as usize;
                if rest.len() != 2 + count * 18 {
                    return None;
                }
                let mut watermarks = Vec::with_capacity(count);
                for i in 0..count {
                    let at = 2 + i * 18;
                    watermarks.push(BandWatermark {
                        band: u16at(rest, at)?,
                        sector: u64at(rest, at + 2)?,
                        frame: u64at(rest, at + 10)?,
                    });
                }
                Some(WalRecord::Commit { watermarks })
            }
            KIND_ROTATE => {
                if rest.len() != 8 {
                    return None;
                }
                Some(WalRecord::Rotate { floor_seg: u64at(rest, 0)? })
            }
            _ => None,
        }
    }
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Storage(format!("{op} {}: {e}", path.display()))
}

/// Path of WAL file `id` inside `dir`.
pub fn wal_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:06}.wal"))
}

/// Parses a WAL id back out of a file name.
pub fn parse_wal_id(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".wal")?.parse().ok()
}

/// Appends records to one WAL file.
pub struct WalWriter {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    id: u64,
    bytes: u64,
    fsync: FsyncPolicy,
    commits: u64,
}

impl WalWriter {
    /// Creates WAL `id` with its opening `Rotate { floor_seg }` record
    /// and forces it durable (rotation is always fsynced — it is the
    /// hinge the recovery protocol swings on).
    pub fn create(
        vfs: &dyn Vfs,
        dir: &Path,
        id: u64,
        floor_seg: u64,
        fsync: FsyncPolicy,
    ) -> Result<WalWriter> {
        let path = wal_path(dir, id);
        let file = vfs.create_new(&path).map_err(|e| io_err("create", &path, e))?;
        let mut w = WalWriter { file, path, id, bytes: 0, fsync, commits: 0 };
        w.append_bytes(WAL_MAGIC)?;
        w.append(&WalRecord::Rotate { floor_seg })?;
        w.file.flush().map_err(|e| io_err("flush", &w.path, e))?;
        w.file.sync().map_err(|e| io_err("sync", &w.path, e))?;
        Ok(w)
    }

    fn append_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.append(bytes).map_err(|e| io_err("append", &self.path, e))?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Appends one record (framing + CRC).
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let body = rec.encode_body();
        let len = u32::try_from(body.len())
            .map_err(|_| CoreError::Storage("WAL record over 4 GiB".into()))?;
        let mut framed = Vec::with_capacity(8 + body.len());
        framed.extend_from_slice(&len.to_le_bytes());
        framed.extend_from_slice(&crc32(&body).to_le_bytes());
        framed.extend_from_slice(&body);
        self.append_bytes(&framed)
    }

    /// Seals the open group: appends a commit record, flushes, and —
    /// under [`FsyncPolicy::OnCommit`] — fsyncs.
    pub fn commit(&mut self, watermarks: Vec<BandWatermark>) -> Result<()> {
        self.append(&WalRecord::Commit { watermarks })?;
        self.file.flush().map_err(|e| io_err("flush", &self.path, e))?;
        if self.fsync == FsyncPolicy::OnCommit {
            self.file.sync().map_err(|e| io_err("sync", &self.path, e))?;
        }
        self.commits += 1;
        Ok(())
    }

    /// WAL id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Commit records written so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }
}

/// What [`scan_wal`] found: the committed prefix plus an account of
/// everything after it.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Redo records of the committed prefix, in log order (commit and
    /// rotate records are folded into the fields below).
    pub committed: Vec<WalRecord>,
    /// The opening rotate record's floor, if the WAL had one.
    pub floor_seg: Option<u64>,
    /// Watermarks of the *last* commit record.
    pub watermarks: Vec<BandWatermark>,
    /// Commit records seen.
    pub commits: u64,
    /// Well-formed records after the last commit (discarded).
    pub uncommitted_records: u64,
    /// How many of the discarded records were frame redos (the unit of
    /// data loss reported to operators).
    pub uncommitted_frames: u64,
    /// Bytes after the committed prefix (uncommitted + torn/corrupt).
    pub discarded_bytes: u64,
    /// Scan stopped at an incomplete trailing record.
    pub torn_tail: bool,
    /// Structurally complete records rejected by CRC or parse (0 or 1).
    pub corrupt_records: u64,
}

/// Reads the committed prefix of a WAL file. Returns `None` when the
/// file cannot be read or its magic is wrong (caller treats the WAL as
/// absent); damage past the magic is reported, never an error.
pub fn scan_wal(vfs: &dyn Vfs, path: &Path) -> Option<WalScan> {
    let data = vfs.read(path).ok()?;
    if data.len() < WAL_MAGIC.len() || &data[..WAL_MAGIC.len()] != WAL_MAGIC {
        return None;
    }
    let mut scan = WalScan::default();
    let mut pending: Vec<WalRecord> = Vec::new();
    let mut committed_end = WAL_MAGIC.len();
    let mut at = WAL_MAGIC.len();
    loop {
        let Some(hdr) = data.get(at..at + 8) else {
            scan.torn_tail = at < data.len();
            break;
        };
        let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
        let crc = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]);
        let Some(body) = data.get(at + 8..at + 8 + len) else {
            scan.torn_tail = true;
            break;
        };
        if crc32(body) != crc {
            scan.corrupt_records = 1;
            break;
        }
        let Some(rec) = WalRecord::parse_body(body) else {
            scan.corrupt_records = 1;
            break;
        };
        at += 8 + len;
        match rec {
            WalRecord::Rotate { floor_seg } => {
                if scan.floor_seg.is_none() {
                    scan.floor_seg = Some(floor_seg);
                }
                committed_end = at;
            }
            WalRecord::Commit { watermarks } => {
                scan.committed.append(&mut pending);
                scan.watermarks = watermarks;
                scan.commits += 1;
                committed_end = at;
            }
            redo => pending.push(redo),
        }
    }
    scan.uncommitted_records = pending.len() as u64;
    scan.uncommitted_frames =
        pending.iter().filter(|r| matches!(r, WalRecord::FrameRedo { .. })).count() as u64;
    scan.discarded_bytes = data.len() as u64 - committed_end as u64;
    Some(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gs-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn frame(seg: u64, off: u64, frame: u64, data: &[u8]) -> WalRecord {
        WalRecord::FrameRedo { seg, off, band: 1, sector: 0, frame, data: data.to_vec() }
    }

    #[test]
    fn record_bodies_round_trip() {
        let records = [
            WalRecord::MetaRedo { seg: 3, off: 0, data: vec![1, 2, 3] },
            frame(3, 8, 42, &[9; 7]),
            WalRecord::Commit {
                watermarks: vec![
                    BandWatermark { band: 1, sector: 0, frame: 42 },
                    BandWatermark { band: 2, sector: 5, frame: 40 },
                ],
            },
            WalRecord::Rotate { floor_seg: 17 },
        ];
        for rec in &records {
            assert_eq!(WalRecord::parse_body(&rec.encode_body()).as_ref(), Some(rec));
        }
    }

    #[test]
    fn commit_seals_the_prefix_and_uncommitted_tail_is_discarded() {
        let dir = tmp_dir("commit");
        let vfs = StdVfs;
        let mut w = WalWriter::create(&vfs, &dir, 0, 2, FsyncPolicy::OnCommit).unwrap();
        w.append(&frame(2, 8, 1, &[1; 4])).unwrap();
        w.append(&frame(2, 12, 2, &[2; 4])).unwrap();
        w.commit(vec![BandWatermark { band: 1, sector: 0, frame: 2 }]).unwrap();
        let committed_bytes = w.bytes();
        w.append(&frame(2, 16, 3, &[3; 4])).unwrap(); // never committed
        drop(w);

        let scan = scan_wal(&vfs, &wal_path(&dir, 0)).unwrap();
        assert_eq!(scan.floor_seg, Some(2));
        assert_eq!(scan.committed.len(), 2);
        assert_eq!(scan.commits, 1);
        assert_eq!(scan.uncommitted_records, 1);
        assert_eq!(scan.discarded_bytes, StdVfs.len(&wal_path(&dir, 0)).unwrap() - committed_bytes);
        assert_eq!(scan.watermarks, vec![BandWatermark { band: 1, sector: 0, frame: 2 }]);
        assert!(!scan.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_record_ends_the_trusted_prefix() {
        let dir = tmp_dir("torn");
        let vfs = StdVfs;
        let mut w = WalWriter::create(&vfs, &dir, 0, 0, FsyncPolicy::Never).unwrap();
        w.append(&frame(0, 8, 1, &[1; 4])).unwrap();
        w.commit(vec![]).unwrap();
        drop(w);
        // Tear the file mid-way through a trailing record.
        let path = wal_path(&dir, 0);
        let mut data = std::fs::read(&path).unwrap();
        let committed_len = data.len();
        let rec = frame(0, 12, 2, &[2; 4]);
        let body = rec.encode_body();
        data.extend_from_slice(&(body.len() as u32).to_le_bytes());
        data.extend_from_slice(&crc32(&body).to_le_bytes());
        data.extend_from_slice(&body[..body.len() - 2]);
        std::fs::write(&path, &data).unwrap();

        let scan = scan_wal(&vfs, &path).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(scan.discarded_bytes, (data.len() - committed_len) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_bit_fails_wal_crc() {
        let dir = tmp_dir("flip");
        let vfs = StdVfs;
        let mut w = WalWriter::create(&vfs, &dir, 0, 0, FsyncPolicy::Never).unwrap();
        w.append(&frame(0, 8, 1, &[7; 16])).unwrap();
        w.commit(vec![]).unwrap();
        drop(w);
        let path = wal_path(&dir, 0);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a bit inside the FrameRedo's 16-byte data payload, which
        // sits just before the trailing 11-byte commit record.
        let at = data.len() - 20;
        data[at] ^= 0x10;
        std::fs::write(&path, &data).unwrap();

        let scan = scan_wal(&vfs, &path).unwrap();
        assert_eq!(scan.corrupt_records, 1);
        assert!(scan.committed.is_empty(), "damage before the commit unseals it");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_reads_as_absent() {
        let dir = tmp_dir("magic");
        let path = wal_path(&dir, 0);
        std::fs::write(&path, b"NOTAWALF").unwrap();
        assert!(scan_wal(&StdVfs, &path).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_names_parse() {
        assert_eq!(parse_wal_id("wal-000007.wal"), Some(7));
        assert_eq!(parse_wal_id("wal-x.wal"), None);
        assert_eq!(parse_wal_id("segment-000001.seg"), None);
    }
}
