//! The archive's read path: [`ArchiveReplay`], a `GeoStream`-compatible
//! source that replays an indexed `[t0, t1) × region` slice in lattice
//! order, and [`SpliceStream`], which splices such a backfill onto the
//! live feed exactly once at the recorded watermark.

use crate::archive::{Archive, PlannedFrame, PlannedSector, ReplayPlan};
use crate::codec::decode_stripe;
use crate::vfs::{crc32, VfsFile};
use geostreams_core::exec::{OrderedCollector, WorkerPool};
use geostreams_core::model::{
    pack_queue, ChunkOrMarker, Element, FrameEnd, FrameInfo, Marker, PointRecord, SectorEnd,
    StreamSchema,
};
use geostreams_core::stats::OpStats;
use geostreams_core::{GeoStream, Result};
use geostreams_geo::{Cell, CellBox, Rect};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

/// A decoded tile kept in the shared cache: presence flags plus lanes.
pub(crate) struct TileData {
    pub(crate) present: Vec<bool>,
    pub(crate) lanes: Vec<u32>,
}

/// Shared decoded-tile cache with tick-based LRU eviction, keyed by
/// `(band, sector, frame, tile_x)`. Overlapping replays (many
/// late-joining subscribers over one downlink) hit instead of
/// re-reading and re-decoding the chain.
pub(crate) struct TileCache {
    cap: usize,
    tick: u64,
    map: HashMap<TileKey, (u64, Arc<TileData>)>,
}

/// `(band, sector, frame, tile_x)`.
type TileKey = (u16, u64, u64, u32);

impl TileCache {
    pub(crate) fn new(cap: usize) -> TileCache {
        TileCache { cap, tick: 0, map: HashMap::new() }
    }

    fn get(&mut self, key: TileKey) -> Option<Arc<TileData>> {
        self.tick += 1;
        let tick = self.tick;
        let (t, data) = self.map.get_mut(&key)?;
        *t = tick;
        Some(Arc::clone(data))
    }

    fn put(&mut self, key: TileKey, data: Arc<TileData>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, data));
        while self.map.len() > self.cap {
            let Some((&victim, _)) = self.map.iter().min_by_key(|(_, (t, _))| *t) else {
                return;
            };
            self.map.remove(&victim);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A `GeoStream` source replaying an archived slice in lattice order.
///
/// Construction snapshots the index and opens the referenced segment
/// files, so concurrent ingest and even segment eviction cannot corrupt
/// the replay. Only tiles intersecting the requested region are decoded
/// (restriction pushdown into the store); cells the downlink never
/// delivered replay as honest gaps.
pub struct ArchiveReplay {
    band: u16,
    schema: StreamSchema,
    value_range: (f64, f64),
    sectors: VecDeque<PlannedSector>,
    current: Option<SectorCursor>,
    files: HashMap<u64, Arc<dyn VfsFile>>,
    cache: Arc<Mutex<TileCache>>,
    metrics: Option<crate::metrics::StoreMetrics>,
    pool: Option<Arc<WorkerPool>>,
    out: VecDeque<Element<f32>>,
    stats: OpStats,
    done: bool,
    failed: bool,
}

struct SectorCursor {
    sector_id: u64,
    emit_box: Option<CellBox>,
    frames: VecDeque<PlannedFrame>,
    chains: HashMap<u32, Arc<TileData>>,
}

impl Archive {
    /// Opens a replay of `band` over `[lo, hi)` (`None` = unbounded)
    /// restricted to `region` in the source CRS.
    pub fn replay(
        &self,
        band: u16,
        lo: Option<i64>,
        hi: Option<i64>,
        region: Option<&Rect>,
    ) -> Result<ArchiveReplay> {
        let plan = self.plan_replay(band, lo, hi, region)?;
        Ok(ArchiveReplay::from_plan(plan, Arc::clone(&self.cache), self.metrics().cloned()))
    }
}

/// Archive replay is a source: tiles are decoded and emitted in lattice
/// order with a synthesized, well-bracketed marker sequence.
pub fn replay_contract() -> geostreams_core::ops::ProtocolContract {
    geostreams_core::ops::ProtocolContract::source("replay-from-archive")
}

/// A splice is a source to everything downstream: replay hands off to
/// live exactly once at the watermark, and both halves emit bracketed,
/// lattice-ordered sectors (the seam is deduplicated by `StreamRepair`).
pub fn splice_contract() -> geostreams_core::ops::ProtocolContract {
    geostreams_core::ops::ProtocolContract::source("replay-hybrid")
}

impl ArchiveReplay {
    /// Protocol contract (see [`replay_contract`]).
    pub fn declared_contract(&self) -> geostreams_core::ops::ProtocolContract {
        replay_contract()
    }

    pub(crate) fn from_plan(
        plan: ReplayPlan,
        cache: Arc<Mutex<TileCache>>,
        metrics: Option<crate::metrics::StoreMetrics>,
    ) -> ArchiveReplay {
        let value_range = plan.schema.value_range;
        ArchiveReplay {
            band: plan.band,
            schema: plan.schema,
            value_range,
            sectors: plan.sectors.into(),
            current: None,
            files: plan.files,
            cache,
            metrics,
            pool: None,
            out: VecDeque::new(),
            stats: OpStats::default(),
            done: false,
            failed: false,
        }
    }

    /// True when the replay ended on an error rather than exhaustion.
    /// A splice must check this before handing off to live: a failed
    /// backfill means the gap below the watermark was never delivered.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Number of sectors the replay will visit.
    pub fn planned_sectors(&self) -> usize {
        self.sectors.len() + usize::from(self.current.is_some())
    }

    /// Decodes independent tiles of each frame on `pool`. A frame's
    /// tiles share no delta-chain state (chains link equal `tile_x`
    /// across frames), so cache-missed stripes decode concurrently and
    /// merge back in tile order. Payload reads and CRC checks stay on
    /// the replay thread; output and error selection are byte-identical
    /// to the serial path.
    pub fn with_decode_pool(mut self, pool: Arc<WorkerPool>) -> ArchiveReplay {
        self.pool = Some(pool);
        self
    }

    /// Decodes one frame's selected tiles, advancing the delta chains;
    /// returns the decoded stripes when the frame should be emitted.
    ///
    /// Three passes: (1) serial cache probes, payload reads and CRC
    /// checks; (2) chain decodes of the misses — fanned out to the
    /// decode pool when one is attached and more than one tile missed,
    /// inline otherwise (a frame's stripes are chain-independent:
    /// chains link equal `tile_x` across frames, and `tile_x` is
    /// unique within a frame); (3) serial chain advance and stripe
    /// assembly in tile order. Errors surface for the first failing
    /// tile in tile order on both decode paths.
    fn decode_frame(
        &mut self,
        cursor_sector: u64,
        chains: &mut HashMap<u32, Arc<TileData>>,
        frame: &PlannedFrame,
    ) -> Result<Vec<(CellBox, Arc<TileData>)>> {
        struct PendingDecode {
            idx: usize,
            payload: Vec<u8>,
            prev: Option<Arc<TileData>>,
        }
        let mut decoded: Vec<Option<Arc<TileData>>> = vec![None; frame.tiles.len()];
        let mut pending: Vec<PendingDecode> = Vec::new();
        for (idx, t) in frame.tiles.iter().enumerate() {
            let key = (self.band, cursor_sector, frame.frame_id, t.tile_x);
            if let Some(d) = lock(&self.cache).get(key) {
                if let Some(m) = &self.metrics {
                    m.cache_hits.inc();
                }
                decoded[idx] = Some(d);
                continue;
            }
            if let Some(m) = &self.metrics {
                m.cache_misses.inc();
            }
            let Some(file) = self.files.get(&t.segment) else {
                return Err(geostreams_core::CoreError::Storage(format!(
                    "replay references unopened segment {}",
                    t.segment
                )));
            };
            let mut payload = vec![0u8; t.len as usize];
            file.read_exact_at(&mut payload, t.offset).map_err(|e| {
                geostreams_core::CoreError::Storage(format!(
                    "read segment {} @{}: {e}",
                    t.segment, t.offset
                ))
            })?;
            // Verify the payload against the checksum recorded at
            // write time: a rotted tile must never be decoded into
            // pixels.
            if crc32(&payload) != t.crc {
                if let Some(m) = &self.metrics {
                    m.corruption_detected.inc();
                }
                return Err(geostreams_core::CoreError::Corruption(format!(
                    "tile payload CRC mismatch in segment {} @{} ({} bytes, band {} \
                     sector {} frame {} tile {})",
                    t.segment, t.offset, t.len, self.band, cursor_sector, frame.frame_id, t.tile_x
                )));
            }
            pending.push(PendingDecode { idx, payload, prev: chains.get(&t.tile_x).cloned() });
        }
        match &self.pool {
            Some(pool) if pending.len() > 1 => {
                let order: Vec<usize> = pending.iter().map(|p| p.idx).collect();
                let collector: Arc<OrderedCollector<Result<TileData>>> =
                    Arc::new(OrderedCollector::new());
                for (seq, p) in pending.into_iter().enumerate() {
                    let t = &frame.tiles[p.idx];
                    let (codec, n, keyframe) = (t.codec, t.cells.len() as usize, t.keyframe);
                    let collector = Arc::clone(&collector);
                    pool.submit(move |_| {
                        let res = decode_stripe(
                            codec,
                            &p.payload,
                            n,
                            p.prev.as_deref().map(|d| d.lanes.as_slice()),
                            keyframe,
                        );
                        collector.push(
                            seq as u64,
                            res.map(|d| TileData { present: d.present, lanes: d.lanes }),
                        );
                    });
                }
                for idx in order {
                    let data = Arc::new(collector.wait_next()?);
                    let t = &frame.tiles[idx];
                    let key = (self.band, cursor_sector, frame.frame_id, t.tile_x);
                    lock(&self.cache).put(key, Arc::clone(&data));
                    decoded[idx] = Some(data);
                }
            }
            _ => {
                for p in pending {
                    let t = &frame.tiles[p.idx];
                    let dec = decode_stripe(
                        t.codec,
                        &p.payload,
                        t.cells.len() as usize,
                        p.prev.as_deref().map(|d| d.lanes.as_slice()),
                        t.keyframe,
                    )?;
                    let data = Arc::new(TileData { present: dec.present, lanes: dec.lanes });
                    let key = (self.band, cursor_sector, frame.frame_id, t.tile_x);
                    lock(&self.cache).put(key, Arc::clone(&data));
                    decoded[p.idx] = Some(data);
                }
            }
        }
        let mut stripes = Vec::with_capacity(frame.tiles.len());
        for (idx, t) in frame.tiles.iter().enumerate() {
            let Some(data) = decoded[idx].take() else {
                return Err(geostreams_core::CoreError::Storage(
                    "tile decode produced no stripe (driver bug)".into(),
                ));
            };
            chains.insert(t.tile_x, Arc::clone(&data));
            stripes.push((t.cells, data));
        }
        Ok(stripes)
    }

    /// Refills the output queue with the next batch of elements.
    fn refill(&mut self) -> Result<()> {
        while self.out.is_empty() {
            let Some(cursor) = self.current.as_mut() else {
                let Some(sector) = self.sectors.pop_front() else {
                    self.done = true;
                    return Ok(());
                };
                self.out.push_back(Element::SectorStart(sector.info.clone()));
                self.current = Some(SectorCursor {
                    sector_id: sector.info.sector_id,
                    emit_box: sector.emit_box,
                    frames: sector.frames.into(),
                    chains: HashMap::new(),
                });
                continue;
            };
            let Some(frame) = cursor.frames.pop_front() else {
                let sector_id = cursor.sector_id;
                self.current = None;
                self.out.push_back(Element::SectorEnd(SectorEnd { sector_id }));
                continue;
            };
            let sector_id = cursor.sector_id;
            let emit_box = cursor.emit_box;
            let mut chains = std::mem::take(&mut cursor.chains);
            let stripes = self.decode_frame(sector_id, &mut chains, &frame)?;
            if let Some(cursor) = self.current.as_mut() {
                cursor.chains = chains;
            }
            if !frame.emit {
                continue; // chain prefix only
            }
            let emit_cells = match emit_box {
                None => Some(frame.cells),
                Some(eb) => frame.cells.intersect(&eb),
            };
            let Some(emit_cells) = emit_cells else { continue };
            self.out.push_back(Element::FrameStart(FrameInfo {
                frame_id: frame.frame_id,
                sector_id,
                timestamp: geostreams_core::model::Timestamp::new(frame.timestamp),
                cells: emit_cells,
                // The archive persists no synthesis tick (GSSTORE1 is
                // format-frozen), so a replayed frame is "fresh as of
                // replay": lag measures replay → delivery.
                synth_ns: geostreams_core::obs::now_ns(),
            }));
            // Lattice (row-major) order across the frame's stripes.
            for row in emit_cells.row_min..=emit_cells.row_max {
                for (cells, data) in &stripes {
                    if row < cells.row_min || row > cells.row_max {
                        continue;
                    }
                    let lo = cells.col_min.max(emit_cells.col_min);
                    let hi = cells.col_max.min(emit_cells.col_max);
                    for col in lo..=hi {
                        let idx = (row - cells.row_min) as usize * cells.width() as usize
                            + (col - cells.col_min) as usize;
                        if data.present[idx] {
                            let value = frame
                                .tiles
                                .first()
                                .map_or(crate::codec::Codec::Quant16, |t| t.codec)
                                .value(data.lanes[idx], self.value_range);
                            self.out.push_back(Element::Point(PointRecord {
                                cell: Cell::new(col, row),
                                value,
                            }));
                        }
                    }
                }
            }
            self.out.push_back(Element::FrameEnd(FrameEnd { frame_id: frame.frame_id, sector_id }));
            self.stats.frames_out += 1;
        }
        Ok(())
    }
}

impl GeoStream for ArchiveReplay {
    type V = f32;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<f32>> {
        if self.out.is_empty() && !self.done {
            if let Err(e) = self.refill() {
                // A torn replay must not masquerade as a clean end: the
                // error is surfaced once, then the stream ends.
                self.done = true;
                self.failed = true;
                self.out.clear();
                self.stats.stalls += 1;
                eprintln!("archive replay error: {e}");
                return None;
            }
        }
        let el = self.out.pop_front()?;
        if el.is_point() {
            self.stats.points_out += 1;
        }
        Some(el)
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<f32>> {
        if self.out.is_empty() && !self.done {
            if let Err(e) = self.refill() {
                self.done = true;
                self.failed = true;
                self.out.clear();
                self.stats.stalls += 1;
                eprintln!("archive replay error: {e}");
                return None;
            }
        }
        // Tiles decode frame-at-a-time into the queue; packing it into
        // runs batches the per-point stats into one add.
        let item = pack_queue(&mut self.out, budget)?;
        self.stats.points_out += item.point_count() as u64;
        Some(item)
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Splices an archive backfill onto the live feed: emits the whole
/// replay first, then live elements, skipping any live sector at or
/// below the recorded watermark so the seam has no overlap. Wrap the
/// result in `StreamRepair` to also deduplicate frame ids under faulty
/// downlinks.
pub struct SpliceStream {
    replay: Option<ArchiveReplay>,
    live: Box<dyn GeoStream<V = f32> + Send>,
    schema: StreamSchema,
    /// Skip live sectors with `sector_id <= watermark_sector`.
    watermark_sector: Option<u64>,
    skipping_live_sector: bool,
    started: std::time::Instant,
    on_switch: Option<Box<dyn FnOnce(u64) + Send>>,
    stats: OpStats,
    /// Set when the backfill failed: the splice ends rather than hand
    /// off across an unverified gap (live data would silently paper
    /// over the frames the replay never delivered).
    refused: bool,
}

impl SpliceStream {
    /// Builds a splice; `watermark_sector` is the last archived sector
    /// (from [`Archive::watermark`]) and `on_switch` observes the
    /// backfill latency in nanoseconds at the handoff.
    pub fn new(
        replay: ArchiveReplay,
        live: Box<dyn GeoStream<V = f32> + Send>,
        watermark_sector: Option<u64>,
        on_switch: Option<Box<dyn FnOnce(u64) + Send>>,
    ) -> SpliceStream {
        let schema = live.schema().clone();
        SpliceStream {
            replay: Some(replay),
            live,
            schema,
            watermark_sector,
            skipping_live_sector: false,
            started: std::time::Instant::now(),
            on_switch,
            stats: OpStats::default(),
            refused: false,
        }
    }

    /// Protocol contract (see [`splice_contract`]).
    pub fn declared_contract(&self) -> geostreams_core::ops::ProtocolContract {
        splice_contract()
    }

    /// True when the splice ended by refusing the live handoff after a
    /// failed backfill.
    pub fn refused_handoff(&self) -> bool {
        self.refused
    }

    /// Retires the exhausted replay half. Returns `true` when the
    /// handoff to live is refused because the backfill failed.
    fn finish_replay(&mut self) -> bool {
        let Some(replay) = self.replay.take() else {
            return false;
        };
        if replay.failed() {
            if let Some(m) = &replay.metrics {
                m.splice_refused.inc();
            }
            eprintln!(
                "splice refused: backfill replay of band {} failed before the watermark; \
                 not handing off to live across an unrecovered gap",
                replay.band
            );
            self.refused = true;
            return true;
        }
        if let Some(f) = self.on_switch.take() {
            let ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            f(ns);
        }
        false
    }
}

impl GeoStream for SpliceStream {
    type V = f32;

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element<f32>> {
        if self.refused {
            return None;
        }
        if let Some(replay) = self.replay.as_mut() {
            if let Some(el) = replay.next_element() {
                if el.is_point() {
                    self.stats.points_out += 1;
                }
                return Some(el);
            }
            if self.finish_replay() {
                return None;
            }
        }
        loop {
            let el = self.live.next_element()?;
            match &el {
                Element::SectorStart(info) => {
                    self.skipping_live_sector =
                        self.watermark_sector.is_some_and(|wm| info.sector_id <= wm);
                }
                Element::SectorEnd(_) if self.skipping_live_sector => {
                    self.skipping_live_sector = false;
                    continue;
                }
                _ => {}
            }
            if self.skipping_live_sector {
                continue;
            }
            if el.is_point() {
                self.stats.points_out += 1;
            }
            return Some(el);
        }
    }

    fn next_chunk(&mut self, budget: usize) -> Option<ChunkOrMarker<f32>> {
        if self.refused {
            return None;
        }
        if let Some(replay) = self.replay.as_mut() {
            if let Some(item) = replay.next_chunk(budget) {
                self.stats.points_out += item.point_count() as u64;
                return Some(item);
            }
            if self.finish_replay() {
                return None;
            }
        }
        loop {
            match self.live.next_chunk(budget)? {
                ChunkOrMarker::Marker(m) => {
                    match &m {
                        Marker::SectorStart(info) => {
                            self.skipping_live_sector =
                                self.watermark_sector.is_some_and(|wm| info.sector_id <= wm);
                        }
                        Marker::SectorEnd(_) if self.skipping_live_sector => {
                            self.skipping_live_sector = false;
                            continue;
                        }
                        _ => {}
                    }
                    if self.skipping_live_sector {
                        continue;
                    }
                    return Some(ChunkOrMarker::Marker(m));
                }
                ChunkOrMarker::Chunk(mut c) => {
                    if self.skipping_live_sector {
                        // The run belongs to a sector at or below the
                        // watermark: drop its points; only a boundary
                        // marker can change the skip state.
                        match c.end.take() {
                            Some(Marker::SectorEnd(_)) => {
                                self.skipping_live_sector = false;
                                c.recycle();
                                continue;
                            }
                            Some(Marker::SectorStart(info)) => {
                                self.skipping_live_sector =
                                    self.watermark_sector.is_some_and(|wm| info.sector_id <= wm);
                                c.recycle();
                                if self.skipping_live_sector {
                                    continue;
                                }
                                return Some(ChunkOrMarker::Marker(Marker::SectorStart(info)));
                            }
                            _ => {
                                c.recycle();
                                continue;
                            }
                        }
                    }
                    // Live sector passes; a trailing SectorStart at or
                    // below the watermark starts a skip and is swallowed.
                    if let Some(Marker::SectorStart(info)) = &c.end {
                        if self.watermark_sector.is_some_and(|wm| info.sector_id <= wm) {
                            self.skipping_live_sector = true;
                            c.end = None;
                        }
                    }
                    self.stats.points_out += c.points.len() as u64;
                    return Some(ChunkOrMarker::Chunk(c));
                }
            }
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }
}
