//! The store's virtual file system: every byte the archive reads or
//! writes — segments and WAL alike — goes through the [`Vfs`] trait,
//! so the whole durability story is testable under injected disk
//! faults.
//!
//! Two implementations ship:
//!
//! * [`StdVfs`] — the production path over `std::fs` (this module is
//!   the **only** place in `crates/store` allowed to touch `std::fs`;
//!   the geolint `raw-file-io-in-store` rule enforces that).
//! * [`ChaosVfs`] — a SplitMix64-seeded fault injector mirroring
//!   `satsim::faults`: same seed ⇒ same faults. It models
//!   - **crash points**: after a global budget of `crash_at_byte`
//!     written bytes, the write in flight is cut short (a torn write)
//!     and every later write, flush, or fsync fails — the moral
//!     equivalent of `kill -9` at byte N;
//!   - **short writes**: a write persists only a prefix and errors;
//!   - **fsync failures**: `sync` reports an error while the data may
//!     or may not be durable;
//!   - **bit flips**: a written buffer is silently corrupted by one
//!     flipped bit (detected later by CRC, never at write time).
//!
//! Reads are never faulted: corruption is injected at write time so
//! the damage is *durable*, exactly like a real medium error, and so
//! repeated reads of the same file stay deterministic.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// One open file handle behind the [`Vfs`].
pub trait VfsFile: Send + Sync {
    /// Appends the whole buffer at the end of the file. On error, a
    /// *prefix* of the buffer may have been persisted (torn write).
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()>;
    /// Reads exactly `buf.len()` bytes at `offset`.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()>;
    /// Flushes user-space buffers to the OS.
    fn flush(&mut self) -> std::io::Result<()>;
    /// Forces OS buffers to the medium (fsync).
    fn sync(&mut self) -> std::io::Result<()>;
}

/// File-system operations the archive needs, fault-injectable.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Creates a new file, failing if it already exists.
    fn create_new(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for reading (positional reads only).
    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for appending.
    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Truncates (or extends with zeros) a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> std::io::Result<()>;
    /// Deletes a file.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;
    /// File length in bytes.
    fn len(&self, path: &Path) -> std::io::Result<u64>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()>;
    /// File names (not paths) inside a directory; missing directory
    /// reads as empty.
    fn read_dir_names(&self, dir: &Path) -> std::io::Result<Vec<String>>;
}

/// The production VFS over `std::fs`.
#[derive(Debug, Default, Clone)]
pub struct StdVfs;

struct StdFile {
    file: fs::File,
}

impl VfsFile for StdFile {
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.file.write_all(buf)
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

impl Vfs for StdVfs {
    fn create_new(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        let file = fs::OpenOptions::new().create_new(true).write(true).read(true).open(path)?;
        Ok(Box::new(StdFile { file }))
    }

    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile { file: fs::File::open(path)? }))
    }

    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        let mut file = fs::OpenOptions::new().write(true).read(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(StdFile { file }))
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        fs::File::open(path)?.read_to_end(&mut out)?;
        Ok(out)
    }

    fn truncate(&self, path: &Path, len: u64) -> std::io::Result<()> {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        fs::remove_file(path)
    }

    fn len(&self, path: &Path) -> std::io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read_dir_names(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            if let Some(name) = entry?.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Fault plan for a [`ChaosVfs`]. Probabilities are per write (or per
/// fsync); the crash budget is global across all files.
#[derive(Debug, Clone)]
pub struct DiskFaultPlan {
    /// Seed for the SplitMix64 draw stream.
    pub seed: u64,
    /// Simulated `kill -9`: the write that crosses this many total
    /// written bytes is torn at the boundary, and every later write or
    /// sync fails. `None` disables crashing.
    pub crash_at_byte: Option<u64>,
    /// Probability a write persists only a prefix and errors.
    pub short_write_prob: f64,
    /// Probability an fsync reports failure.
    pub fsync_fail_prob: f64,
    /// Probability a written buffer has one bit silently flipped.
    pub bit_flip_prob: f64,
}

impl DiskFaultPlan {
    /// A benign plan (no faults) with a seed.
    pub fn seeded(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            crash_at_byte: None,
            short_write_prob: 0.0,
            fsync_fail_prob: 0.0,
            bit_flip_prob: 0.0,
        }
    }

    /// Crash (torn write + dead disk) once `n` total bytes were written.
    pub fn with_crash_at(mut self, n: u64) -> DiskFaultPlan {
        self.crash_at_byte = Some(n);
        self
    }

    /// Short-write probability per write call.
    pub fn with_short_writes(mut self, p: f64) -> DiskFaultPlan {
        self.short_write_prob = p;
        self
    }

    /// Fsync-failure probability per sync call.
    pub fn with_fsync_failures(mut self, p: f64) -> DiskFaultPlan {
        self.fsync_fail_prob = p;
        self
    }

    /// Bit-flip probability per write call.
    pub fn with_bit_flips(mut self, p: f64) -> DiskFaultPlan {
        self.bit_flip_prob = p;
        self
    }
}

/// Counters of faults a [`ChaosVfs`] actually injected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultStats {
    /// Write calls observed.
    pub writes: u64,
    /// Bytes actually persisted.
    pub bytes_written: u64,
    /// Writes cut short by the crash point (at most 1).
    pub torn_writes: u64,
    /// Transient short writes injected.
    pub short_writes: u64,
    /// Fsync failures injected.
    pub fsync_failures: u64,
    /// Bits flipped (silent corruption events).
    pub bit_flips: u64,
    /// True once the crash point has fired.
    pub crashed: bool,
}

struct ChaosState {
    plan: DiskFaultPlan,
    rng: u64,
    stats: DiskFaultStats,
}

/// SplitMix64 step — the same avalanche as `satsim::faults`, so the
/// disk fault stream has the familiar determinism contract: same seed
/// ⇒ same faults, regardless of wall clock or thread timing (the
/// archive serializes all writes under its lock).
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn roll(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn crash_err() -> std::io::Error {
    std::io::Error::other("injected crash: disk is gone")
}

/// Shared handle onto a [`ChaosVfs`]'s injected-fault counters.
#[derive(Clone)]
pub struct DiskFaultProbe {
    state: Arc<Mutex<ChaosState>>,
}

impl DiskFaultProbe {
    /// Snapshot of the counters.
    pub fn stats(&self) -> DiskFaultStats {
        lock(&self.state).stats.clone()
    }
}

/// A [`Vfs`] that injects deterministic disk faults around [`StdVfs`].
pub struct ChaosVfs {
    inner: StdVfs,
    state: Arc<Mutex<ChaosState>>,
}

impl std::fmt::Debug for ChaosVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.state);
        f.debug_struct("ChaosVfs").field("plan", &st.plan).field("stats", &st.stats).finish()
    }
}

impl ChaosVfs {
    /// Builds a chaos VFS over the real file system.
    pub fn new(plan: DiskFaultPlan) -> ChaosVfs {
        let rng = plan.seed ^ 0x6A09_E667_F3BC_C909;
        ChaosVfs {
            inner: StdVfs,
            state: Arc::new(Mutex::new(ChaosState { plan, rng, stats: DiskFaultStats::default() })),
        }
    }

    /// A probe that stays readable after the VFS moved into an archive.
    pub fn probe(&self) -> DiskFaultProbe {
        DiskFaultProbe { state: Arc::clone(&self.state) }
    }

    /// Decides the fate of one write of `len` bytes.
    fn plan_write(&self, len: usize) -> WriteFate {
        let mut st = lock(&self.state);
        st.stats.writes += 1;
        if st.stats.crashed {
            return WriteFate::Dead;
        }
        if let Some(at) = st.plan.crash_at_byte {
            let written = st.stats.bytes_written;
            if written + len as u64 > at {
                let keep = at.saturating_sub(written) as usize;
                st.stats.crashed = true;
                st.stats.torn_writes += 1;
                st.stats.bytes_written += keep as u64;
                return WriteFate::Torn(keep);
            }
        }
        let short = st.plan.short_write_prob > 0.0 && {
            let mut rng = st.rng;
            let hit = roll(&mut rng) < st.plan.short_write_prob;
            st.rng = rng;
            hit
        };
        if short {
            let mut rng = st.rng;
            let keep = if len == 0 { 0 } else { (splitmix(&mut rng) as usize) % len };
            st.rng = rng;
            st.stats.short_writes += 1;
            st.stats.bytes_written += keep as u64;
            return WriteFate::Short(keep);
        }
        let flip = st.plan.bit_flip_prob > 0.0 && {
            let mut rng = st.rng;
            let hit = roll(&mut rng) < st.plan.bit_flip_prob;
            st.rng = rng;
            hit
        };
        st.stats.bytes_written += len as u64;
        if flip && len > 0 {
            let mut rng = st.rng;
            let bit = (splitmix(&mut rng) as usize) % (len * 8);
            st.rng = rng;
            st.stats.bit_flips += 1;
            return WriteFate::Flip(bit);
        }
        WriteFate::Clean
    }

    fn plan_sync(&self) -> std::io::Result<()> {
        let mut st = lock(&self.state);
        if st.stats.crashed {
            return Err(crash_err());
        }
        if st.plan.fsync_fail_prob > 0.0 {
            let mut rng = st.rng;
            let hit = roll(&mut rng) < st.plan.fsync_fail_prob;
            st.rng = rng;
            if hit {
                st.stats.fsync_failures += 1;
                return Err(std::io::Error::other("injected fsync failure"));
            }
        }
        Ok(())
    }

    fn crashed(&self) -> bool {
        lock(&self.state).stats.crashed
    }
}

enum WriteFate {
    Clean,
    /// Persist only this prefix, then fail (transient).
    Short(usize),
    /// Persist only this prefix; the disk is dead afterwards.
    Torn(usize),
    /// Persist everything with one bit flipped at this buffer bit index.
    Flip(usize),
    /// The disk is already dead.
    Dead,
}

struct ChaosFile {
    inner: Box<dyn VfsFile>,
    vfs_state: Arc<Mutex<ChaosState>>,
}

impl ChaosFile {
    fn chaos(&self) -> ChaosVfs {
        ChaosVfs { inner: StdVfs, state: Arc::clone(&self.vfs_state) }
    }
}

impl VfsFile for ChaosFile {
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()> {
        match self.chaos().plan_write(buf.len()) {
            WriteFate::Clean => self.inner.append(buf),
            WriteFate::Short(keep) => {
                self.inner.append(&buf[..keep])?;
                Err(std::io::Error::other(format!(
                    "injected short write: {keep} of {} bytes persisted",
                    buf.len()
                )))
            }
            WriteFate::Torn(keep) => {
                self.inner.append(&buf[..keep])?;
                let _ = self.inner.flush();
                Err(crash_err())
            }
            WriteFate::Flip(bit) => {
                let mut corrupted = buf.to_vec();
                corrupted[bit / 8] ^= 1 << (bit % 8);
                self.inner.append(&corrupted)
            }
            WriteFate::Dead => Err(crash_err()),
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        self.inner.read_exact_at(buf, offset)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.chaos().crashed() {
            return Err(crash_err());
        }
        self.inner.flush()
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.inner.flush()?;
        self.chaos().plan_sync()?;
        self.inner.sync()
    }
}

impl Vfs for ChaosVfs {
    fn create_new(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        if self.crashed() {
            return Err(crash_err());
        }
        let inner = self.inner.create_new(path)?;
        Ok(Box::new(ChaosFile { inner, vfs_state: Arc::clone(&self.state) }))
    }

    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        let inner = self.inner.open_read(path)?;
        Ok(Box::new(ChaosFile { inner, vfs_state: Arc::clone(&self.state) }))
    }

    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        if self.crashed() {
            return Err(crash_err());
        }
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(ChaosFile { inner, vfs_state: Arc::clone(&self.state) }))
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> std::io::Result<()> {
        if self.crashed() {
            return Err(crash_err());
        }
        self.inner.truncate(path, len)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        if self.crashed() {
            return Err(crash_err());
        }
        self.inner.remove_file(path)
    }

    fn len(&self, path: &Path) -> std::io::Result<u64> {
        self.inner.len(path)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        if self.crashed() {
            return Err(crash_err());
        }
        self.inner.create_dir_all(path)
    }

    fn read_dir_names(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        self.inner.read_dir_names(dir)
    }
}

/// CRC-32 (IEEE 802.3, reflected) — the checksum framing every WAL and
/// segment record carries, and the per-tile payload checksum verified
/// at read time.
pub fn crc32(data: &[u8]) -> u32 {
    // Nibble-driven table, built once.
    static TABLE: std::sync::OnceLock<[u32; 16]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 16];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..4 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0x0F) as usize] ^ (crc >> 4);
        crc = table[((crc ^ (u32::from(b) >> 4)) & 0x0F) as usize] ^ (crc >> 4);
    }
    !crc
}

/// Convenience: CRC over several slices without concatenating them.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut buf = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
    for p in parts {
        buf.extend_from_slice(p);
    }
    crc32(&buf)
}

/// Joins a directory and file name (helper so callers hold `PathBuf`s
/// without touching `std::fs`).
pub fn join(dir: &Path, name: &str) -> PathBuf {
    dir.join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gs-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn std_vfs_round_trips() {
        let dir = tmp("std");
        let vfs = StdVfs;
        let path = dir.join("a.bin");
        let mut f = vfs.create_new(&path).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        let mut buf = [0u8; 5];
        vfs.open_read(&path).unwrap().read_exact_at(&mut buf, 6).unwrap();
        assert_eq!(&buf, b"world");
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.len(&path).unwrap(), 5);
        assert_eq!(vfs.read_dir_names(&dir).unwrap(), vec!["a.bin".to_string()]);
        vfs.remove_file(&path).unwrap();
        assert!(vfs.read_dir_names(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_crash_point_tears_the_write_then_kills_the_disk() {
        let dir = tmp("crash");
        let vfs = ChaosVfs::new(DiskFaultPlan::seeded(1).with_crash_at(10));
        let probe = vfs.probe();
        let path = dir.join("seg.bin");
        let mut f = vfs.create_new(&path).unwrap();
        f.append(b"0123456").unwrap(); // 7 bytes, under budget
        let err = f.append(b"89abcdef").unwrap_err(); // crosses byte 10
        assert!(err.to_string().contains("crash"));
        assert!(f.append(b"x").is_err(), "disk must stay dead");
        assert!(f.sync().is_err());
        let stats = probe.stats();
        assert!(stats.crashed);
        assert_eq!(stats.torn_writes, 1);
        assert_eq!(stats.bytes_written, 10);
        // Exactly the pre-crash bytes are on disk: the full first
        // append plus a 3-byte torn prefix of the second.
        assert_eq!(StdVfs.read(&path).unwrap(), b"012345689a");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_bit_flips_are_silent_and_deterministic() {
        let write_once = || {
            let dir = tmp("flip");
            let vfs = ChaosVfs::new(DiskFaultPlan::seeded(99).with_bit_flips(1.0));
            let path = dir.join("f.bin");
            let mut f = vfs.create_new(&path).unwrap();
            f.append(&[0u8; 64]).unwrap(); // flips exactly one bit, silently
            drop(f);
            let data = StdVfs.read(&path).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            data
        };
        let a = write_once();
        let b = write_once();
        assert_eq!(a, b, "same seed must flip the same bit");
        assert_eq!(a.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn chaos_short_writes_persist_a_prefix() {
        let dir = tmp("short");
        let vfs = ChaosVfs::new(DiskFaultPlan::seeded(7).with_short_writes(1.0));
        let path = dir.join("s.bin");
        let mut f = vfs.create_new(&path).unwrap();
        assert!(f.append(&[1u8; 32]).is_err());
        let stats = vfs.probe().stats();
        assert_eq!(stats.short_writes, 1);
        assert!(!stats.crashed, "short writes are transient, not fatal");
        assert!(StdVfs.len(&path).unwrap() < 32);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
