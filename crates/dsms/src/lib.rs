//! Prototype Data Stream Management System for geospatial image data.
//!
//! This crate realizes §4 / Fig. 3 of the paper:
//!
//! ```text
//! Weather satellites ──▶ Stream Generator ──▶ Parser/Optimization
//!                                             │
//!                       Delivery ◀── Execution┘
//! ```
//!
//! * the **stream generator** is the `geostreams-satsim` scanner, whose
//!   bands are registered in a [`geostreams_core::query::Catalog`];
//! * **parser / optimization / execution** come from `geostreams-core`;
//!   [`server::Dsms`] registers continuous queries (optionally via the
//!   HTTP-like textual [`protocol`]) and runs each as a pipeline —
//!   sequentially or one thread per query;
//! * **multi-query optimization** is the [`frontend::MultiQueryFrontEnd`]:
//!   a single pass over each GeoStream routes every point through a
//!   region index (the dynamic cascade tree of [10], or the naive scan
//!   baseline) to all subscribed clients;
//! * **delivery** ships PNG frames per client session.

#![warn(missing_docs)]
// Tests may unwrap freely; the deny applies to library code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod continuous;
pub mod frontend;
pub mod metrics;
pub mod net;
pub mod protocol;
pub mod server;
pub mod share;

pub use continuous::{run_continuous, run_supervised, FanoutPolicy, IngestStats, RuntimeConfig};
pub use frontend::{FrontEndStats, MultiQueryFrontEnd};
pub use metrics::{QueryStatus, ServerMetrics};
pub use net::HttpServer;
pub use protocol::{parse_explain, parse_request, ClientRequest, OutputFormat};
pub use server::{
    Dsms, Explanation, QueryHandle, QueryResult, SourceRepair, DEFAULT_MEMORY_BUDGET_BYTES,
};
pub use share::{
    plan_sharing, SharePlan, ShareRegistry, ShareTopology, SubscriptionTree, TenantQuota,
};
