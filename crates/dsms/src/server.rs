//! The DSMS server: query registration and execution.

use crate::metrics::ServerMetrics;
use crate::protocol::{ClientRequest, OutputFormat};
use crate::share::{ShareRegistry, TenantQuota};
use geostreams_core::exec::RunReport;
use geostreams_core::model::GeoStream;
use geostreams_core::obs::{PipelineObs, SpanStream};
use geostreams_core::ops::delivery::{DeliveredFrame, PngSink, Rendering};
use geostreams_core::query::{
    analyze_with, canonical_key, key_hex, optimize, parse_query, AnalyzeOptions, Catalog, Expr,
    PlanReport, Planner, ReplayProvider,
};
use geostreams_core::stats::OpReport;
use geostreams_core::{CoreError, Result};
use geostreams_raster::colormap::ColorMap;
use geostreams_raster::png::PngOptions;
use geostreams_satsim::Scanner;
use geostreams_store::{Archive, StoreMetrics};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-query worst-case memory budget: 1 GiB.
pub const DEFAULT_MEMORY_BUDGET_BYTES: u64 = 1 << 30;

/// A registered continuous query.
#[derive(Debug, Clone)]
pub struct QueryHandle {
    /// Server-assigned query id.
    pub id: u32,
    /// Original query text.
    pub text: String,
    /// Parsed expression.
    pub expr: Expr,
    /// Optimized expression actually executed.
    pub optimized: Expr,
    /// Static analysis of the optimized plan (admission evidence).
    pub plan: PlanReport,
    /// Delivery format.
    pub format: OutputFormat,
    /// Sectors to run.
    pub sectors: u64,
    /// Canonical plan key (16 hex digits): queries with equal keys
    /// share one evaluated pipeline under swarm mode (DESIGN.md §16).
    pub canonical_key: String,
    /// Owning tenant (`"default"` unless registered via
    /// [`Dsms::register_as`]).
    pub tenant: String,
}

/// The answer to an `EXPLAIN` request: the plan as the server would run
/// it, its static analysis, and the admission verdict — without
/// executing anything.
#[derive(Debug, Clone, Serialize)]
pub struct Explanation {
    /// Original query text.
    pub query: String,
    /// Optimized algebra expression (re-parsable text form).
    pub optimized: String,
    /// Static plan analysis of the optimized expression.
    pub report: PlanReport,
    /// Whether registration would admit this plan.
    pub admitted: bool,
    /// The budget the admission decision was made against.
    pub budget_bytes: u64,
    /// Canonical plan key (16 hex digits).
    pub canonical_key: String,
    /// Live queries currently subscribed to this exact plan.
    pub shared_with: u64,
    /// The report above was served from the admission-time plan cache
    /// rather than re-analyzed.
    pub cache_hit: bool,
}

/// Stream-repair outcome of one source feeding a query (supervised
/// runs; see [`crate::continuous`]).
#[derive(Debug, Clone, Serialize)]
pub struct SourceRepair {
    /// Source (band) name.
    pub source: String,
    /// Cumulative repair counters.
    pub stats: geostreams_core::model::RepairStats,
    /// Per-sector completeness records.
    pub sectors: Vec<geostreams_core::model::SectorCompleteness>,
}

/// Result of running one continuous query to completion.
#[derive(Debug)]
pub struct QueryResult {
    /// The query that ran (request-order index under
    /// [`crate::continuous::run_continuous`], server id otherwise).
    pub id: u32,
    /// Delivered PNG frames (empty for `Stats` format).
    pub frames: Vec<DeliveredFrame>,
    /// Executor report (per-operator stats).
    pub report: Option<RunReport>,
    /// Points delivered by the pipeline root.
    pub points: u64,
    /// Per-source repair/completeness outcome (empty when the run was
    /// unsupervised or the sources needed no repair accounting).
    pub repair: Vec<SourceRepair>,
    /// The per-query watchdog cancelled this query before its sources
    /// ended; delivered frames up to the deadline are still present.
    pub cancelled: bool,
}

/// The prototype DSMS server of §4.
pub struct Dsms {
    catalog: Arc<Catalog>,
    queries: Mutex<Vec<QueryHandle>>,
    next_id: Mutex<u32>,
    /// Per-query worst-case memory budget for admission control.
    budget_bytes: AtomicU64,
    /// Attached raster archive and the "now" timestamp admissions are
    /// decided against (`GET /archive`, replay-aware plan analysis).
    archive: Mutex<Option<(Arc<Archive>, i64)>>,
    /// Server metrics (shared with query threads).
    pub metrics: Arc<ServerMetrics>,
    /// Sharing bookkeeping: canonical-key plan cache, tenant quotas,
    /// and the `GET /share` subscription topology.
    share: ShareRegistry,
}

impl Dsms {
    /// Builds a server over a scanner: every instrument band becomes a
    /// catalog source named `<instrument>.<band>`, streaming `n_sectors`
    /// scan sectors per query execution.
    pub fn over_scanner(scanner: &Scanner, n_sectors: u64) -> Self {
        let mut catalog = Catalog::new();
        for band_idx in 0..scanner.instrument.bands.len() {
            let template = scanner.band_stream(band_idx, n_sectors);
            let schema = template.schema().clone();
            let scanner = scanner.clone();
            catalog.register(schema, move || Box::new(scanner.band_stream(band_idx, n_sectors)));
        }
        Dsms {
            catalog: Arc::new(catalog),
            queries: Mutex::new(Vec::new()),
            next_id: Mutex::new(1),
            budget_bytes: AtomicU64::new(DEFAULT_MEMORY_BUDGET_BYTES),
            archive: Mutex::new(None),
            metrics: Arc::new(ServerMetrics::new()),
            share: ShareRegistry::new(),
        }
    }

    /// Builds a server over an existing catalog.
    pub fn over_catalog(catalog: Catalog) -> Self {
        Dsms {
            catalog: Arc::new(catalog),
            queries: Mutex::new(Vec::new()),
            next_id: Mutex::new(1),
            budget_bytes: AtomicU64::new(DEFAULT_MEMORY_BUDGET_BYTES),
            archive: Mutex::new(None),
            metrics: Arc::new(ServerMetrics::new()),
            share: ShareRegistry::new(),
        }
    }

    /// The sharing registry: plan cache, tenant usage, `/share`
    /// topology.
    pub fn share(&self) -> &ShareRegistry {
        &self.share
    }

    /// Sets (or replaces) a tenant's admission quota.
    pub fn set_tenant_quota(&self, tenant: &str, quota: TenantQuota) {
        self.share.set_quota(tenant, quota);
    }

    /// The server's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Sets the per-query worst-case memory budget. Registrations whose
    /// static buffer bound exceeds it are refused; already-registered
    /// queries are unaffected.
    pub fn set_memory_budget(&self, bytes: u64) {
        self.budget_bytes.store(bytes, Ordering::Relaxed);
    }

    /// The current per-query memory budget in bytes.
    pub fn memory_budget(&self) -> u64 {
        self.budget_bytes.load(Ordering::Relaxed)
    }

    /// Attaches a tiled raster archive: plan analysis becomes
    /// replay-aware (a temporal restriction reaching before `now` is
    /// classified against the archive's coverage), `GET /archive`
    /// serves its statistics, and `geostreams_store_*` metrics land on
    /// this server's `/metrics` endpoint.
    pub fn attach_archive(&self, archive: Arc<Archive>, now: i64) {
        archive.attach_metrics(StoreMetrics::register(self.metrics.registry()));
        *self.archive.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some((archive, now));
        // The analysis context changed: cached reports (replay
        // classification, completeness) are stale. Subscriptions
        // survive; the next registration per key re-analyzes.
        self.share.invalidate_reports();
    }

    /// The attached archive, if any.
    pub fn archive(&self) -> Option<Arc<Archive>> {
        self.archive
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(|(a, _)| Arc::clone(a))
    }

    /// Analyzes an optimized plan in the server's temporal context:
    /// with an archive attached, replay classification runs against its
    /// coverage; without one, the analysis is context-free.
    fn analyze_plan(&self, optimized: &Expr) -> PlanReport {
        let ctx = self.archive.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match ctx.as_ref() {
            Some((archive, now)) => analyze_with(
                optimized,
                &self.catalog,
                &AnalyzeOptions {
                    now: Some(*now),
                    replay: Some(archive.as_ref() as &dyn ReplayProvider),
                },
            ),
            None => analyze_with(optimized, &self.catalog, &AnalyzeOptions::default()),
        }
    }

    /// Registers a query from a parsed client request (as the
    /// `"default"` tenant).
    pub fn register(&self, request: &ClientRequest) -> Result<QueryHandle> {
        self.register_as("default", request)
    }

    /// Registers a query on behalf of `tenant`, enforcing the tenant's
    /// [`TenantQuota`] with sharing-aware accounting: subscribing to a
    /// plan another of the tenant's queries already holds charges its
    /// buffer bound once, not per subscription.
    pub fn register_as(&self, tenant: &str, request: &ClientRequest) -> Result<QueryHandle> {
        match self.register_inner(tenant, request) {
            Ok(h) => {
                self.metrics.queries_registered.inc();
                Ok(h)
            }
            Err(e) => {
                self.metrics.queries_rejected.inc();
                Err(e)
            }
        }
    }

    fn register_inner(&self, tenant: &str, request: &ClientRequest) -> Result<QueryHandle> {
        let expr = parse_query(&request.query)?;
        // Validate sources now so registration fails fast.
        for name in expr.source_names() {
            if self.catalog.schema(&name).is_none() {
                return Err(CoreError::UnknownSource(name));
            }
        }
        // The `sectors=` parameter is realized as a temporal restriction
        // `[0, sectors)` — the algebra's own mechanism (the optimizer
        // pushes it to the sources).
        let expr = if request.sectors > 0 {
            Expr::RestrictTime {
                input: Box::new(expr),
                times: geostreams_core::model::TimeSet::Interval {
                    lo: None,
                    hi: Some(request.sectors as i64),
                },
            }
        } else {
            expr
        };
        let optimized = optimize(&expr, &self.catalog);
        // Admission control (§3's cost analysis, enforced): reject plans
        // with error diagnostics, no static buffer bound, or a bound
        // over the server's per-query memory budget. The analysis is
        // keyed by the plan's canonical form: a structurally-equal plan
        // registered (or explained) earlier serves its cached report —
        // certificate included, so the protocol verifier runs once per
        // distinct plan, not once per subscriber.
        let key = canonical_key(&optimized);
        let report = match self.share.cached_report(key) {
            Some(cached) => {
                self.metrics.plan_cache_hits.inc();
                cached
            }
            None => Arc::new(self.analyze_plan(&optimized)),
        };
        self.admission_check(&report)?;
        let mut id_guard = self.next_id.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let id = *id_guard;
        *id_guard += 1;
        drop(id_guard);
        // Tenant quotas (sharing-aware): this can still refuse the
        // query even though the plan itself is admissible.
        self.share.admit(tenant, key, &report.sharing.canonical_text, &report, id)?;
        let mut plan = (*report).clone();
        plan.sharing.shared_with = self.share.subscribers_of(key).saturating_sub(1);
        let handle = QueryHandle {
            id,
            text: request.query.clone(),
            expr,
            optimized,
            plan,
            format: request.format,
            sectors: request.sectors,
            canonical_key: key_hex(key),
            tenant: tenant.to_string(),
        };
        self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(handle.clone());
        // Observability: directory entry plus flight recorder, so the
        // query shows on `GET /queries` and is traceable via
        // `GET /trace/<id>` from registration on.
        self.metrics.register_query(id, &request.query);
        Ok(handle)
    }

    /// The admission decision for an analyzed plan.
    fn admission_check(&self, plan: &PlanReport) -> Result<()> {
        if plan.has_errors() {
            return Err(CoreError::PlanRejected(plan.render_errors()));
        }
        if !plan.certificate.certified {
            // An analyzer-composed plan that fails certification also
            // carries `protocol-uncertified` error diagnostics, so this
            // arm guards the other way in: a report that never ran the
            // verifier at all (e.g. deserialized from an older peer)
            // must not slip past admission.
            return Err(CoreError::PlanRejected(format!(
                "plan carries no valid protocol certificate: {}",
                plan.certificate.violations.join("; ")
            )));
        }
        let budget = self.memory_budget();
        match plan.peak_buffer_bytes {
            None => Err(CoreError::PlanRejected("plan has no static buffer bound".to_string())),
            Some(bytes) if bytes > budget => Err(CoreError::PlanRejected(format!(
                "worst-case buffering of {bytes} bytes exceeds the per-query budget of \
                 {budget} bytes"
            ))),
            Some(_) => Ok(()),
        }
    }

    /// Statically explains a query without running it: parse, optimize,
    /// analyze, and report the admission verdict against the current
    /// budget. Fails only when the query does not parse or names
    /// unknown sources with no analyzable plan at all.
    pub fn explain(&self, request: &ClientRequest) -> Result<Explanation> {
        let expr = parse_query(&request.query)?;
        let expr = if request.sectors > 0 {
            Expr::RestrictTime {
                input: Box::new(expr),
                times: geostreams_core::model::TimeSet::Interval {
                    lo: None,
                    hi: Some(request.sectors as i64),
                },
            }
        } else {
            expr
        };
        let optimized = optimize(&expr, &self.catalog);
        // Serve the admission-time cached analysis when a
        // structurally-equal plan is live; re-analyze otherwise.
        let key = canonical_key(&optimized);
        let (report, cache_hit) = match self.share.cached_report(key) {
            Some(cached) => {
                self.metrics.plan_cache_hits.inc();
                ((*cached).clone(), true)
            }
            None => (self.analyze_plan(&optimized), false),
        };
        let mut report = report;
        report.sharing.shared_with = self.share.subscribers_of(key);
        let shared_with = report.sharing.shared_with;
        let admitted = self.admission_check(&report).is_ok();
        Ok(Explanation {
            query: request.query.clone(),
            optimized: optimized.to_string(),
            report,
            admitted,
            budget_bytes: self.memory_budget(),
            canonical_key: key_hex(key),
            shared_with,
            cache_hit,
        })
    }

    /// Unregisters a query: drops its handle, releases its sharing
    /// subscription (refunding the tenant's charge on the tenant's
    /// last reference, and tearing down the plan-cache entry when no
    /// subscriber remains), and marks its directory entry. Returns
    /// `false` for unknown ids.
    pub fn unregister(&self, id: u32) -> bool {
        let mut queries = self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = queries.len();
        queries.retain(|h| h.id != id);
        let known = queries.len() != before;
        drop(queries);
        self.share.release(id);
        if known {
            self.metrics.set_query_state(id, "released");
        }
        known
    }

    /// Registers a query given as raw algebra text.
    pub fn register_text(
        &self,
        query: &str,
        format: OutputFormat,
        sectors: u64,
    ) -> Result<QueryHandle> {
        self.register(&ClientRequest { query: query.to_string(), format, sectors })
    }

    /// Currently registered queries.
    pub fn registered(&self) -> Vec<QueryHandle> {
        self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Runs one registered query to completion (synchronously).
    ///
    /// The pipeline runs with every operator traced: the returned
    /// report carries per-op pull/frame latency histograms, boundary
    /// events land in `metrics.trace`, and the query's wall time is
    /// recorded in the `geostreams_query_wall_ns` histogram.
    pub fn run_query(&self, handle: &QueryHandle) -> Result<QueryResult> {
        let planner = Planner::new(&self.catalog);
        // Spans: every operator chains under a root delivery span whose
        // frame hook stamps watermark/e2e-lag freshness at the moment a
        // frame reaches the client side of the pipeline.
        let rec = self.metrics.recorder(handle.id);
        let deliver_id = rec.alloc_span();
        let obs = PipelineObs::for_query(handle.id)
            .with_trace(Arc::clone(&self.metrics.trace))
            .with_recorder(Arc::clone(&rec))
            .under(deliver_id);
        let pipeline = match planner.build_traced(&handle.optimized, &obs) {
            Ok(p) => p,
            Err(e) => {
                self.metrics.set_query_state(handle.id, "failed");
                return Err(e);
            }
        };
        let deliver = rec.begin_with_id(deliver_id, "deliver", 0);
        let hook_metrics = Arc::clone(&self.metrics);
        let qid = handle.id;
        let pipeline: geostreams_core::model::BoxedF32Stream = Box::new(
            SpanStream::new(pipeline, deliver)
                .with_frame_hook(move |fi| hook_metrics.note_frame(qid, fi)),
        );
        self.metrics.set_query_state(handle.id, "running");
        let started = Instant::now();
        let result = match handle.format {
            OutputFormat::Stats | OutputFormat::Json => {
                let mut pipeline = pipeline;
                let report = geostreams_core::exec::run_observed(&mut pipeline, &obs, |_| {});
                self.metrics.points_ingested.add(source_points(&report.per_op));
                let points = report.points_delivered;
                QueryResult {
                    id: handle.id,
                    frames: Vec::new(),
                    report: Some(report),
                    points,
                    repair: Vec::new(),
                    cancelled: false,
                }
            }
            format => {
                let rendering = rendering_for(format, pipeline.schema().value_range);
                let mut sink = PngSink::new(pipeline, Some(rendering), PngOptions::default());
                let mut frames = Vec::new();
                while let Some(frame) = sink.next_frame() {
                    self.metrics.frames_delivered.inc();
                    self.metrics.bytes_delivered.add(frame.png.len() as u64);
                    frames.push(frame);
                }
                let mut per_op = Vec::new();
                sink.inner().collect_stats(&mut per_op);
                self.metrics.points_ingested.add(source_points(&per_op));
                let report = report_from_per_op(started.elapsed(), per_op);
                let points = frames.len() as u64;
                QueryResult {
                    id: handle.id,
                    frames,
                    report: Some(report),
                    points,
                    repair: Vec::new(),
                    cancelled: false,
                }
            }
        };
        // Cross-check observed buffering against the static bound; an
        // overrun means the analyzer's cost model under-estimated.
        if let Some(report) = &result.report {
            if handle.plan.buffer_overrun(report.peak_buffered_bytes()) {
                self.metrics.plan_buffer_overruns.inc();
            }
        }
        self.metrics.query_wall_ns.record(started.elapsed().as_nanos() as u64);
        // Unsupervised runs have no repair stage: completeness is 1.
        self.metrics.finish_query(handle.id, "done", result.points, 1.0);
        Ok(result)
    }

    /// Runs every registered query, one OS thread per query (the
    /// multi-user mode of Fig. 3), returning results in registration
    /// order.
    pub fn run_all_parallel(self: &Arc<Self>) -> Vec<Result<QueryResult>> {
        let handles = self.registered();
        let mut joins = Vec::new();
        for handle in handles {
            let server = Arc::clone(self);
            joins.push(std::thread::spawn(move || server.run_query(&handle)));
        }
        joins
            .into_iter()
            .map(|j| {
                j.join()
                    .unwrap_or_else(|_| Err(CoreError::Unsupported("query thread panicked".into())))
            })
            .collect()
    }

    /// Handles a raw HTTP-style request end-to-end, returning response
    /// bytes (the first delivered frame, or an error response).
    ///
    /// Besides `/query`, serves the operational endpoints: `GET
    /// /metrics` (Prometheus text exposition v0.0.4), `GET /healthz`,
    /// `GET /share` (sharing topology: distinct plans, subscribers,
    /// tenant usage), and `GET /explain` (static plan analysis as
    /// JSON, no execution).
    pub fn handle_http(&self, raw: &str) -> Vec<u8> {
        match crate::protocol::request_target(raw) {
            ("GET", "/metrics") => {
                return crate::protocol::text_response(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &self.metrics.render_prometheus(),
                );
            }
            ("GET", "/healthz") => {
                return crate::protocol::text_response(200, "text/plain", "ok\n");
            }
            ("GET", "/queries") => {
                return crate::protocol::json_response(self.metrics.queries_json().as_bytes());
            }
            ("GET", target) if target.starts_with("/trace/") => {
                let id = target.strip_prefix("/trace/").and_then(|s| s.parse::<u32>().ok());
                return match id.and_then(|id| self.metrics.recorder_json(id)) {
                    Some(body) => crate::protocol::json_response(body.as_bytes()),
                    None => crate::protocol::error_response(404, "no trace for that query id"),
                };
            }
            ("GET", "/share") => {
                let body = serde_json::to_vec(&self.share.topology()).unwrap_or_default();
                return crate::protocol::json_response(&body);
            }
            ("GET", "/archive") => {
                return match self.archive() {
                    Some(archive) => {
                        let body = serde_json::to_vec(&archive.stats()).unwrap_or_default();
                        crate::protocol::json_response(&body)
                    }
                    None => crate::protocol::error_response(404, "no archive attached"),
                };
            }
            ("GET", "/explain") => {
                let request = match crate::protocol::parse_explain(raw) {
                    Ok(r) => r,
                    Err(e) => return crate::protocol::error_response(400, &e.to_string()),
                };
                return match self.explain(&request) {
                    Ok(explanation) => {
                        let body = serde_json::to_vec(&explanation).unwrap_or_default();
                        crate::protocol::json_response(&body)
                    }
                    Err(e) => crate::protocol::error_response(400, &e.to_string()),
                };
            }
            _ => {}
        }
        let request = match crate::protocol::parse_request(raw) {
            Ok(r) => r,
            Err(e) => return crate::protocol::error_response(400, &e.to_string()),
        };
        let handle = match self.register(&request) {
            Ok(h) => h,
            Err(e) => return crate::protocol::error_response(400, &e.to_string()),
        };
        let response = match self.run_query(&handle) {
            Ok(result) => {
                if handle.format == OutputFormat::Json {
                    let body = result
                        .report
                        .as_ref()
                        .map(|r| serde_json::to_vec(&r.summary()).unwrap_or_default())
                        .unwrap_or_default();
                    crate::protocol::json_response(&body)
                } else {
                    match result.frames.first() {
                        Some(frame) => crate::protocol::png_response(&frame.png),
                        None => crate::protocol::error_response(204, "no frames produced"),
                    }
                }
            }
            Err(e) => crate::protocol::error_response(500, &e.to_string()),
        };
        // A one-shot `/query` has finished by the time the response is
        // built: release its shared-plan reference so ad-hoc traffic
        // neither pins plans in `/share` nor accumulates tenant quota
        // charges. The query directory entry stays for `/queries`.
        self.share.release(handle.id);
        response
    }

    /// Snapshot of the server metrics counters.
    pub fn frames_delivered(&self) -> u64 {
        self.metrics.frames_delivered.get()
    }
}

/// Points emitted by source operators (those that consume no input):
/// the server's ingest measure.
fn source_points(per_op: &[OpReport]) -> u64 {
    per_op.iter().filter(|r| r.stats.points_in == 0).map(|r| r.stats.points_out).sum()
}

/// Builds a [`RunReport`] for a sink-driven (PNG) run from collected
/// per-op stats; the pipeline root is the last entry.
fn report_from_per_op(wall: std::time::Duration, per_op: Vec<OpReport>) -> RunReport {
    let root = per_op.last();
    let points_delivered = root.map_or(0, |r| r.stats.points_out);
    let pull_latency = root.and_then(|r| r.pull_latency.clone()).unwrap_or_default();
    // The root histogram sees one pull per element plus the final None.
    let elements = pull_latency.count.saturating_sub(1);
    // OpStats does not count sector markers; 0 means "not observed".
    RunReport {
        wall,
        elements,
        points_delivered,
        sectors: 0,
        per_op,
        pull_latency,
        protocol_violations: 0,
    }
}

/// Chooses the PNG rendering for a format.
fn rendering_for(format: OutputFormat, value_range: (f64, f64)) -> Rendering {
    let (lo, hi) = value_range;
    match format {
        OutputFormat::PngGray | OutputFormat::Stats | OutputFormat::Json => {
            Rendering::Gray { lo, hi }
        }
        OutputFormat::PngNdvi => Rendering::Mapped { lo: -1.0, hi: 1.0, map: ColorMap::ndvi() },
        OutputFormat::PngThermal => Rendering::Mapped { lo, hi, map: ColorMap::thermal() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_satsim::goes_like;

    fn server() -> Arc<Dsms> {
        Arc::new(Dsms::over_scanner(&goes_like(32, 16, 11), 2))
    }

    #[test]
    fn bands_are_registered_as_sources() {
        let s = server();
        let names = s.catalog().names();
        assert!(names.contains(&"goes-sim.b1-vis".to_string()));
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn register_and_run_gray_query() {
        let s = server();
        let h = s
            .register_text("restrict_value(goes-sim.b1-vis, 0, 1)", OutputFormat::PngGray, 2)
            .unwrap();
        let result = s.run_query(&h).unwrap();
        assert_eq!(result.frames.len(), 2, "one PNG per sector");
        assert!(s.frames_delivered() >= 2);
        // Frames decode as PNGs.
        assert!(geostreams_raster::png::decode(&result.frames[0].png).is_ok());
    }

    #[test]
    fn register_rejects_unknown_sources() {
        let s = server();
        let err = s.register_text("scale(nosuch.band, 1, 0)", OutputFormat::PngGray, 1);
        assert!(matches!(err, Err(CoreError::UnknownSource(_))));
        assert_eq!(s.metrics.queries_rejected.get(), 1);
    }

    #[test]
    fn ndvi_query_runs_with_colormap() {
        let s = server();
        let h = s
            .register_text(
                "ndvi(goes-sim.b2-nir, scale(goes-sim.b1-vis, 1, 0))",
                OutputFormat::PngNdvi,
                1,
            )
            .unwrap();
        // NDVI needs matching lattices: b2 is 1/4 resolution of b1, so
        // downsample b1 by 4 first. Re-register a correct query:
        let h2 = s
            .register_text(
                "ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4))",
                OutputFormat::PngNdvi,
                1,
            )
            .unwrap();
        let _ = h;
        let result = s.run_query(&h2).unwrap();
        assert_eq!(result.frames.len(), 1);
        match geostreams_raster::png::decode(&result.frames[0].png).unwrap() {
            geostreams_raster::png::Decoded::Rgb(_) => {}
            other => panic!("expected RGB NDVI frame, got {other:?}"),
        }
    }

    #[test]
    fn parallel_execution_runs_all_queries() {
        let s = server();
        s.register_text("restrict_value(goes-sim.b4-ir, 0, 1)", OutputFormat::PngGray, 1).unwrap();
        s.register_text("scale(goes-sim.b3-wv, 1, 0)", OutputFormat::PngGray, 1).unwrap();
        s.register_text("goes-sim.b5-ir", OutputFormat::Stats, 1).unwrap();
        let results = s.run_all_parallel();
        assert_eq!(results.len(), 3);
        for r in results {
            let r = r.unwrap();
            assert!(r.points > 0 || !r.frames.is_empty());
        }
    }

    #[test]
    fn http_round_trip_delivers_png() {
        let s = server();
        let response = s.handle_http("GET /query?q=goes-sim.b4-ir&format=png&sectors=1 HTTP/1.1");
        let text = String::from_utf8_lossy(&response[..64.min(response.len())]).to_string();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        // Body is a valid PNG.
        let body_start = response.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert!(geostreams_raster::png::decode(&response[body_start..]).is_ok());
    }

    #[test]
    fn http_errors_are_4xx() {
        let s = server();
        let response = s.handle_http("GET /query?q=magnify(goes-sim.b1-vis) HTTP/1.1");
        assert!(String::from_utf8_lossy(&response).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn registration_caches_plans_by_canonical_key() {
        let s = server();
        let a = s.register_text("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats, 2).unwrap();
        assert_eq!(s.metrics.plan_cache_hits.get(), 0);
        // A commuted spelling of the same plan: cache hit, same key.
        let b = s.register_text("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats, 2).unwrap();
        assert_eq!(s.metrics.plan_cache_hits.get(), 1);
        assert_eq!(a.canonical_key, b.canonical_key);
        assert_eq!(b.plan.sharing.shared_with, 1);
        // Explain serves the cached report for the shared key.
        let e = s
            .explain(&ClientRequest {
                query: "scale(goes-sim.b4-ir, 2, 0)".into(),
                format: OutputFormat::Stats,
                sectors: 2,
            })
            .unwrap();
        assert!(e.cache_hit);
        assert_eq!(e.canonical_key, a.canonical_key);
        assert_eq!(e.shared_with, 2);
        // A different plan is a miss.
        let c = s.register_text("scale(goes-sim.b4-ir, 3, 0)", OutputFormat::Stats, 2).unwrap();
        assert_ne!(c.canonical_key, a.canonical_key);
        assert_eq!(s.metrics.plan_cache_hits.get(), 2);
    }

    #[test]
    fn tenant_quota_bounds_registration_and_release_refunds() {
        let s = server();
        s.set_tenant_quota("acme", TenantQuota { max_queries: Some(2), memory_budget_bytes: None });
        let q = "scale(goes-sim.b4-ir, 2, 0)";
        let req = ClientRequest { query: q.into(), format: OutputFormat::Stats, sectors: 1 };
        let a = s.register_as("acme", &req).unwrap();
        let _b = s.register_as("acme", &req).unwrap();
        let err = s.register_as("acme", &req);
        assert!(matches!(err, Err(CoreError::PlanRejected(_))), "{err:?}");
        // Releasing one subscription frees a quota slot.
        assert!(s.unregister(a.id));
        assert!(!s.unregister(a.id), "double release is a no-op");
        let c = s.register_as("acme", &req).unwrap();
        assert_eq!(c.tenant, "acme");
        let topo = s.share().topology();
        assert_eq!(topo.distinct_plans, 1);
        assert_eq!(topo.tenants.len(), 1);
        assert_eq!(topo.tenants[0].queries, 2);
    }

    #[test]
    fn http_share_endpoint_serves_topology() {
        let s = server();
        let q = "restrict_value(goes-sim.b4-ir, 0, 1)";
        s.register_text(q, OutputFormat::Stats, 1).unwrap();
        s.register_text(q, OutputFormat::Stats, 1).unwrap();
        let resp = s.handle_http("GET /share HTTP/1.1");
        let text = String::from_utf8_lossy(&resp).to_string();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        let body = &text[text.find("\r\n\r\n").unwrap() + 4..];
        let topo: serde_json::Value = serde_json::from_str(body).unwrap();
        assert!(
            matches!(
                topo.get("distinct_plans"),
                Some(serde_json::Value::U64(1) | serde_json::Value::I64(1))
            ),
            "{body}"
        );
        let plans = match topo.get("plans") {
            Some(serde_json::Value::Array(plans)) => plans,
            other => panic!("plans missing: {other:?}"),
        };
        match plans[0].get("subscribers") {
            Some(serde_json::Value::Array(subs)) => assert_eq!(subs.len(), 2),
            other => panic!("subscribers missing: {other:?}"),
        }
    }

    #[test]
    fn stats_format_returns_report() {
        let s = server();
        let h = s
            .register_text(
                "restrict_space(goes-sim.b4-ir, bbox(-100, 30, -90, 40), \"latlon\")",
                OutputFormat::Stats,
                1,
            )
            .unwrap();
        // The region is in lat/lon but the stream is geostationary: the
        // planner maps it (§3.4).
        let result = s.run_query(&h).unwrap();
        let report = result.report.unwrap();
        assert!(report.points_delivered > 0);
        assert!(report.points_delivered < 8 * 4 * 8 * 4);
    }
}
