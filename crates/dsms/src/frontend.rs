//! The shared multi-query spatial-restriction front end.
//!
//! §4: "Multiple queries against a single GeoStream are optimized using
//! a dynamic cascade tree structure, which acts as a single spatial
//! restriction operator and efficiently streams only the point data of
//! interest to current continuous queries to subsequent operators."
//!
//! [`MultiQueryFrontEnd`] consumes a GeoStream **once** and routes every
//! point through a pluggable [`RegionIndex`] — the
//! [`CascadeTree`](geostreams_core::query::CascadeTree) or the naive
//! scan baseline — to all subscribed clients, assembling a per-client
//! image per sector. Experiment E5 sweeps the number of registered
//! clients over both index implementations.

use geostreams_core::model::{Element, GeoStream};
use geostreams_core::query::cascade::{QueryId, RegionIndex};
use geostreams_geo::{LatticeGeoref, Rect};
use geostreams_raster::{Grid2D, RasterImage};
use std::collections::HashMap;

/// Routing statistics of one front-end pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrontEndStats {
    /// Points pulled from the source.
    pub points_in: u64,
    /// Point-to-client deliveries (one point may reach many clients).
    pub deliveries: u64,
    /// Sectors completed.
    pub sectors: u64,
    /// Images emitted to clients.
    pub images_out: u64,
}

/// Per-client assembly state within the current sector.
struct ClientState {
    region: Rect,
    /// Dense grid for the client's footprint, allocated per sector.
    grid: Option<(Grid2D<f32>, geostreams_geo::CellBox)>,
    filled: u64,
}

/// A single-pass multi-query router over one GeoStream.
pub struct MultiQueryFrontEnd<I: RegionIndex> {
    index: I,
    clients: HashMap<QueryId, ClientState>,
    lattice: Option<LatticeGeoref>,
    timestamp: i64,
    band: u16,
    /// Routing statistics.
    pub stats: FrontEndStats,
    /// Scratch buffer reused per point.
    hits: Vec<QueryId>,
}

impl<I: RegionIndex> MultiQueryFrontEnd<I> {
    /// Creates a front end over a region index.
    pub fn new(index: I) -> Self {
        MultiQueryFrontEnd {
            index,
            clients: HashMap::new(),
            lattice: None,
            timestamp: 0,
            band: 0,
            stats: FrontEndStats::default(),
            hits: Vec::with_capacity(16),
        }
    }

    /// Registers a client with a rectangular region of interest (stream
    /// CRS coordinates).
    pub fn subscribe(&mut self, id: QueryId, region: Rect) {
        self.index.insert(id, region);
        self.clients.insert(id, ClientState { region, grid: None, filled: 0 });
    }

    /// Removes a client.
    pub fn unsubscribe(&mut self, id: QueryId) {
        self.index.remove(id);
        self.clients.remove(&id);
    }

    /// Number of subscribed clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Processes a whole stream; `deliver` receives `(client, image)`
    /// for every client image completed at each sector end.
    pub fn run<S: GeoStream<V = f32>>(
        &mut self,
        stream: &mut S,
        mut deliver: impl FnMut(QueryId, RasterImage<f32>),
    ) {
        while let Some(el) = stream.next_element() {
            match el {
                Element::SectorStart(si) => {
                    self.lattice = Some(si.lattice);
                    self.timestamp = si.timestamp.value();
                    self.band = si.band;
                    // Allocate per-client footprint grids lazily.
                    for state in self.clients.values_mut() {
                        state.grid = None;
                        state.filled = 0;
                    }
                }
                Element::Point(p) => {
                    self.stats.points_in += 1;
                    let Some(lattice) = self.lattice else { continue };
                    let world = lattice.cell_to_world(p.cell);
                    self.hits.clear();
                    self.index.query_point(world, &mut self.hits);
                    // Move hits out to appease the borrow checker.
                    let hits = std::mem::take(&mut self.hits);
                    for &id in &hits {
                        if let Some(state) = self.clients.get_mut(&id) {
                            let (grid, footprint) = match &mut state.grid {
                                Some(g) => g,
                                None => {
                                    let Some(fp) = lattice.footprint(&state.region) else {
                                        continue;
                                    };
                                    state.grid.insert((Grid2D::new(fp.width(), fp.height()), fp))
                                }
                            };
                            if footprint.contains(p.cell) {
                                grid.set(
                                    p.cell.col - footprint.col_min,
                                    p.cell.row - footprint.row_min,
                                    p.value,
                                );
                                state.filled += 1;
                                self.stats.deliveries += 1;
                            }
                        }
                    }
                    self.hits = hits;
                }
                Element::SectorEnd(_) => {
                    self.stats.sectors += 1;
                    let Some(lattice) = self.lattice else { continue };
                    let ids: Vec<QueryId> = self.clients.keys().copied().collect();
                    for id in ids {
                        let Some(state) = self.clients.get_mut(&id) else { continue };
                        if state.filled == 0 {
                            continue;
                        }
                        if let Some((grid, fp)) = state.grid.take() {
                            // Georeference of the client's sub-window.
                            let origin = lattice
                                .cell_to_world(geostreams_geo::Cell::new(fp.col_min, fp.row_min));
                            let georef = LatticeGeoref::new(
                                lattice.crs,
                                origin,
                                lattice.step_x,
                                lattice.step_y,
                                fp.width(),
                                fp.height(),
                            );
                            self.stats.images_out += 1;
                            deliver(id, RasterImage::new(grid, georef, self.timestamp, self.band));
                        }
                        state.filled = 0;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_core::model::VecStream;
    use geostreams_core::query::cascade::{CascadeTree, NaiveRegionIndex};
    use geostreams_geo::{Crs, Rect};

    fn lattice() -> LatticeGeoref {
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 16.0, 16.0), 16, 16)
    }

    fn source() -> VecStream<f32> {
        VecStream::sectors("src", lattice(), 2, |s, c, r| f64::from(c + r) + s as f64)
    }

    #[test]
    fn routes_points_to_matching_clients() {
        let mut fe = MultiQueryFrontEnd::new(NaiveRegionIndex::new());
        fe.subscribe(1, Rect::new(0.0, 12.0, 4.0, 16.0)); // NW corner
        fe.subscribe(2, Rect::new(0.0, 0.0, 16.0, 16.0)); // everything
        let mut delivered: Vec<(u32, u32)> = Vec::new();
        let mut src = source();
        fe.run(&mut src, |id, img| delivered.push((id, img.width() * img.height())));
        // Both clients get one image per sector.
        assert_eq!(delivered.len(), 4);
        let c1: Vec<_> = delivered.iter().filter(|(id, _)| *id == 1).collect();
        let c2: Vec<_> = delivered.iter().filter(|(id, _)| *id == 2).collect();
        assert_eq!(c1.len(), 2);
        assert_eq!(c2.len(), 2);
        assert!(c1[0].1 < c2[0].1, "client 1's window is smaller");
        assert_eq!(c2[0].1, 256);
    }

    #[test]
    fn cascade_and_naive_deliver_identically() {
        let run = |naive: bool| {
            let mut delivered: Vec<(u32, i64, f32)> = Vec::new();
            let regions = [
                Rect::new(1.0, 1.0, 6.0, 6.0),
                Rect::new(4.0, 4.0, 12.0, 12.0),
                Rect::new(10.0, 0.0, 16.0, 5.0),
            ];
            let mut src = source();
            let collect = |id: u32, img: RasterImage<f32>, out: &mut Vec<(u32, i64, f32)>| {
                out.push((id, img.timestamp, img.mean() as f32));
            };
            if naive {
                let mut fe = MultiQueryFrontEnd::new(NaiveRegionIndex::new());
                for (i, r) in regions.iter().enumerate() {
                    fe.subscribe(i as u32, *r);
                }
                fe.run(&mut src, |id, img| collect(id, img, &mut delivered));
            } else {
                let mut fe =
                    MultiQueryFrontEnd::new(CascadeTree::new(Rect::new(0.0, 0.0, 16.0, 16.0), 8));
                for (i, r) in regions.iter().enumerate() {
                    fe.subscribe(i as u32, *r);
                }
                fe.run(&mut src, |id, img| collect(id, img, &mut delivered));
            }
            delivered.sort_by_key(|a| (a.0, a.1));
            delivered
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut fe = MultiQueryFrontEnd::new(NaiveRegionIndex::new());
        fe.subscribe(1, Rect::new(0.0, 0.0, 16.0, 16.0));
        fe.unsubscribe(1);
        assert_eq!(fe.client_count(), 0);
        let mut n = 0;
        let mut src = source();
        fe.run(&mut src, |_, _| n += 1);
        assert_eq!(n, 0);
        assert_eq!(fe.stats.deliveries, 0);
    }

    #[test]
    fn stats_count_deliveries() {
        let mut fe = MultiQueryFrontEnd::new(NaiveRegionIndex::new());
        fe.subscribe(1, Rect::new(0.0, 0.0, 16.0, 16.0));
        fe.subscribe(2, Rect::new(0.0, 0.0, 16.0, 16.0));
        let mut src = source();
        fe.run(&mut src, |_, _| {});
        assert_eq!(fe.stats.points_in, 512);
        assert_eq!(fe.stats.deliveries, 1024, "each point reaches both clients");
        assert_eq!(fe.stats.sectors, 2);
    }
}
