//! HTTP-like client request protocol.
//!
//! §4: "User queries, which are converted by the interface to
//! specialized HTTP requests, are transmitted to the server, parsed, and
//! registered." We accept the same shape —
//!
//! ```text
//! GET /query?q=ndvi(goes.b2%2C%20goes.b1)&format=png&colormap=ndvi HTTP/1.1
//! ```
//!
//! — parse the request line, percent-decode the parameters, and hand the
//! query text to the algebra parser.

use geostreams_core::{CoreError, Result};

/// Requested delivery format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Grayscale PNG frames.
    #[default]
    PngGray,
    /// Color-mapped PNG frames (NDVI ramp).
    PngNdvi,
    /// Color-mapped PNG frames (thermal ramp).
    PngThermal,
    /// No image assembly; point statistics only.
    Stats,
    /// Run statistics delivered as a JSON document.
    Json,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRequest {
    /// The algebra query text (decoded).
    pub query: String,
    /// Desired output format.
    pub format: OutputFormat,
    /// Number of sectors requested (`sectors=` parameter, default 1).
    pub sectors: u64,
}

/// Percent-decodes a URL component ('+' means space).
fn url_decode(s: &str) -> Result<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if i + 2 >= bytes.len() {
                    return Err(CoreError::Parse {
                        message: "truncated percent escape".into(),
                        offset: i,
                    });
                }
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).map_err(|_| {
                    CoreError::Parse { message: "bad percent escape".into(), offset: i }
                })?;
                let v = u8::from_str_radix(hex, 16).map_err(|_| CoreError::Parse {
                    message: format!("bad percent escape %{hex}"),
                    offset: i,
                })?;
                out.push(v);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| CoreError::Parse { message: "invalid utf-8 after decode".into(), offset: 0 })
}

/// Extracts `(method, path)` from a raw request head — the path is the
/// target with any query string stripped. Used to route the
/// operational endpoints (`/metrics`, `/healthz`) before full query
/// parsing; malformed requests yield empty strings.
pub fn request_target(raw: &str) -> (&str, &str) {
    let line = raw.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (path, _) = target.split_once('?').unwrap_or((target, ""));
    (method, path)
}

/// Parses a request line (optionally a full HTTP request; only the first
/// line matters).
pub fn parse_request(raw: &str) -> Result<ClientRequest> {
    parse_request_at(raw, "/query")
}

/// Parses an `EXPLAIN` request — same parameter shape as `/query`
/// (`q=`, `format=`, `sectors=`) but addressed to `/explain`, asking
/// for the plan's static analysis instead of its execution.
pub fn parse_explain(raw: &str) -> Result<ClientRequest> {
    parse_request_at(raw, "/explain")
}

fn parse_request_at(raw: &str, expected_path: &str) -> Result<ClientRequest> {
    let line = raw.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    if method != "GET" {
        return Err(CoreError::Parse {
            message: format!("unsupported method `{method}`"),
            offset: 0,
        });
    }
    let target = parts.next().unwrap_or("");
    let (path, qs) = target.split_once('?').unwrap_or((target, ""));
    if path != expected_path {
        return Err(CoreError::Parse { message: format!("unknown path `{path}`"), offset: 0 });
    }
    let mut query = None;
    let mut format = OutputFormat::PngGray;
    let mut sectors = 1u64;
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match k {
            "q" => query = Some(url_decode(v)?),
            "format" => {
                format = match v {
                    "png" | "gray" => OutputFormat::PngGray,
                    "ndvi" => OutputFormat::PngNdvi,
                    "thermal" => OutputFormat::PngThermal,
                    "stats" => OutputFormat::Stats,
                    "json" => OutputFormat::Json,
                    other => {
                        return Err(CoreError::Parse {
                            message: format!("unknown format `{other}`"),
                            offset: 0,
                        })
                    }
                }
            }
            "sectors" => {
                sectors = v.parse().map_err(|_| CoreError::Parse {
                    message: format!("bad sectors `{v}`"),
                    offset: 0,
                })?;
            }
            _ => {} // ignore unknown parameters
        }
    }
    let query = query
        .ok_or_else(|| CoreError::Parse { message: "missing `q` parameter".into(), offset: 0 })?;
    Ok(ClientRequest { query, format, sectors })
}

/// Renders an HTTP response carrying a plain-text body (used for
/// `/metrics` and `/healthz`).
pub fn text_response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = if status < 400 { "OK" } else { "Error" };
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Renders an HTTP response carrying a JSON document.
pub fn json_response(body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Renders an HTTP response carrying one PNG frame.
pub fn png_response(png: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: image/png\r\nContent-Length: {}\r\n\r\n",
        png.len()
    )
    .into_bytes();
    out.extend_from_slice(png);
    out
}

/// Renders an HTTP error response.
pub fn error_response(status: u16, message: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} Error\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\r\n{message}",
        message.len()
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_request() {
        let req = parse_request(
            "GET /query?q=ndvi(goes.b2%2C%20goes.b1)&format=ndvi&sectors=3 HTTP/1.1\r\nHost: x\r\n",
        )
        .unwrap();
        assert_eq!(req.query, "ndvi(goes.b2, goes.b1)");
        assert_eq!(req.format, OutputFormat::PngNdvi);
        assert_eq!(req.sectors, 3);
    }

    #[test]
    fn plus_decodes_to_space() {
        let req = parse_request("GET /query?q=scale(goes.b1,+2,+0) HTTP/1.1").unwrap();
        assert_eq!(req.query, "scale(goes.b1, 2, 0)");
        assert_eq!(req.format, OutputFormat::PngGray);
    }

    #[test]
    fn explain_uses_its_own_path() {
        let req = parse_explain("GET /explain?q=goes.b1&format=stats HTTP/1.1").unwrap();
        assert_eq!(req.query, "goes.b1");
        assert_eq!(req.format, OutputFormat::Stats);
        assert!(parse_explain("GET /query?q=goes.b1 HTTP/1.1").is_err());
        assert!(parse_request("GET /explain?q=goes.b1 HTTP/1.1").is_err());
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("POST /query?q=x HTTP/1.1").is_err());
        assert!(parse_request("GET /other?q=x HTTP/1.1").is_err());
        assert!(parse_request("GET /query?format=png HTTP/1.1").is_err());
        assert!(parse_request("GET /query?q=x&format=bmp HTTP/1.1").is_err());
        assert!(parse_request("GET /query?q=x&sectors=abc HTTP/1.1").is_err());
        assert!(parse_request("GET /query?q=%zz HTTP/1.1").is_err());
        assert!(parse_request("GET /query?q=%2 HTTP/1.1").is_err());
    }

    #[test]
    fn responses_have_http_framing() {
        let r = png_response(&[1, 2, 3]);
        let text = String::from_utf8_lossy(&r);
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("Content-Length: 3"));
        assert_eq!(&r[r.len() - 3..], &[1, 2, 3]);
        let e = error_response(400, "bad query");
        assert!(String::from_utf8_lossy(&e).contains("400"));
    }
}
