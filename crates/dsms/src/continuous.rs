//! Continuous shared-ingest execution.
//!
//! `Dsms::run_query` lets every query pull its own source instances —
//! convenient, but a real receiving station decodes the downlink
//! **once**. This module implements the actual Fig. 3 dataflow: one
//! ingest thread per referenced spectral band fans the element stream
//! out to bounded channels (back-pressure included), and each registered
//! continuous query runs its optimized pipeline on its own thread over
//! channel-backed sources.

use crate::protocol::{ClientRequest, OutputFormat};
use crate::server::QueryResult;
use geostreams_core::model::{ChannelLike, Element, GeoStream};
use geostreams_core::ops::delivery::PngSink;
use geostreams_core::query::{optimize, parse_query, Catalog, Expr, Planner};
use geostreams_core::{CoreError, Result};
use geostreams_raster::png::PngOptions;
use geostreams_satsim::Scanner;
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};

/// Channel capacity per subscriber: how many elements a slow query may
/// lag behind the downlink before back-pressure stalls ingest.
const CHANNEL_CAP: usize = 8192;

/// Statistics of one continuous run.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Elements fanned out per band (band id → elements).
    pub elements_per_band: Vec<(u16, u64)>,
}

/// Runs a set of continuous queries over a scanner with shared ingest:
/// each referenced band is generated once and fanned out.
///
/// Returns per-query results in request order, plus ingest statistics.
pub fn run_continuous(
    scanner: &Scanner,
    n_sectors: u64,
    requests: &[ClientRequest],
) -> Result<(Vec<Result<QueryResult>>, IngestStats)> {
    // Schema-only catalog for parsing/optimizing (factories unused here).
    let mut schema_catalog = Catalog::new();
    for band_idx in 0..scanner.instrument.bands.len() {
        let template = scanner.band_stream(band_idx, 1);
        let schema = template.schema().clone();
        let scanner2 = scanner.clone();
        schema_catalog.register(schema, move || Box::new(scanner2.band_stream(band_idx, 1)));
    }

    // Parse and optimize every request; collect referenced bands.
    let mut exprs: Vec<(Expr, OutputFormat)> = Vec::new();
    for req in requests {
        let expr = parse_query(&req.query)?;
        for name in expr.source_names() {
            if schema_catalog.schema(&name).is_none() {
                return Err(CoreError::UnknownSource(name));
            }
        }
        let expr = optimize(&expr, &schema_catalog);
        exprs.push((expr, req.format));
    }

    // Create one channel per (query, referenced source).
    type Rx = Receiver<Element<f32>>;
    let mut band_subscribers: HashMap<String, Vec<SyncSender<Element<f32>>>> = HashMap::new();
    let mut query_receivers: Vec<HashMap<String, Rx>> = Vec::new();
    for (expr, _) in &exprs {
        let mut receivers = HashMap::new();
        for name in expr.source_names() {
            let (tx, rx) = sync_channel(CHANNEL_CAP);
            band_subscribers.entry(name.clone()).or_default().push(tx);
            receivers.insert(name, rx);
        }
        query_receivers.push(receivers);
    }

    // Ingest threads: one per referenced band.
    let mut ingest_handles = Vec::new();
    for (name, senders) in band_subscribers {
        let band_idx = scanner
            .instrument
            .bands
            .iter()
            .position(|b| format!("{}.{}", scanner.instrument.name, b.name) == name)
            .ok_or_else(|| CoreError::UnknownSource(name.clone()))?;
        let band_id = scanner.instrument.bands[band_idx].id;
        let scanner = scanner.clone();
        ingest_handles.push(std::thread::spawn(move || -> (u16, u64) {
            let mut stream = scanner.band_stream(band_idx, n_sectors);
            let mut n = 0u64;
            while let Some(el) = stream.next_element() {
                n += 1;
                for tx in &senders {
                    // A closed receiver (query finished/failed) is fine.
                    let _ = tx.send(el.clone());
                }
            }
            (band_id, n)
        }));
    }

    // Query threads: pipelines over channel-backed catalogs.
    let mut query_handles = Vec::new();
    for ((expr, format), receivers) in exprs.into_iter().zip(query_receivers) {
        let schemas: HashMap<String, geostreams_core::model::StreamSchema> = receivers
            .keys()
            .filter_map(|name| {
                schema_catalog.schema(name).map(|s| (name.clone(), s.clone()))
            })
            .collect();
        query_handles.push(std::thread::spawn(move || -> Result<QueryResult> {
            // A per-query catalog whose factories hand out each channel
            // receiver exactly once.
            let mut catalog = Catalog::new();
            for (name, rx) in receivers {
                let Some(schema) = schemas.get(&name).cloned() else { continue };
                let slot = Arc::new(Mutex::new(Some(rx)));
                catalog.register(schema.clone(), move || {
                    // Sources are single-consumer: the first open takes
                    // the receiver, later opens get an exhausted stream.
                    let rx_opt = slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take();
                    let mut done = false;
                    Box::new(ChannelLike::new(schema.clone(), move || {
                        if done {
                            return None;
                        }
                        let rx = rx_opt.as_ref()?;
                        match rx.recv() {
                            Ok(el) => Some(el),
                            Err(_) => {
                                done = true;
                                None
                            }
                        }
                    }))
                });
            }
            let planner = Planner::new(&catalog);
            let pipeline = planner.build(&expr)?;
            match format {
                OutputFormat::Stats | OutputFormat::Json => {
                    let mut pipeline = pipeline;
                    let report = geostreams_core::exec::run_to_end(&mut pipeline);
                    let points = report.points_delivered;
                    Ok(QueryResult { id: 0, frames: Vec::new(), report: Some(report), points })
                }
                _ => {
                    let mut sink = PngSink::new(pipeline, None, PngOptions::default());
                    let mut frames = Vec::new();
                    while let Some(f) = sink.next_frame() {
                        frames.push(f);
                    }
                    let points = frames.len() as u64;
                    Ok(QueryResult { id: 0, frames, report: None, points })
                }
            }
        }));
    }

    let results: Vec<Result<QueryResult>> = query_handles
        .into_iter()
        .map(|h| {
            h.join()
                .unwrap_or_else(|_| Err(CoreError::Unsupported("query thread panicked".into())))
        })
        .collect();
    let mut stats = IngestStats::default();
    for h in ingest_handles {
        if let Ok(pair) = h.join() {
            stats.elements_per_band.push(pair);
        }
    }
    stats.elements_per_band.sort_unstable();
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_satsim::goes_like;

    fn req(q: &str, format: OutputFormat) -> ClientRequest {
        ClientRequest { query: q.to_string(), format, sectors: 0 }
    }

    #[test]
    fn shared_ingest_runs_multiple_queries() {
        let scanner = goes_like(32, 16, 5);
        let requests = vec![
            req("restrict_value(goes-sim.b4-ir, 0, 1)", OutputFormat::Stats),
            req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
            req("goes-sim.b3-wv", OutputFormat::PngGray),
        ];
        let (results, stats) = run_continuous(&scanner, 2, &requests).unwrap();
        assert_eq!(results.len(), 3);
        let r0 = results[0].as_ref().unwrap();
        assert_eq!(r0.report.as_ref().unwrap().points_delivered, 2 * 8 * 4);
        let r2 = results[2].as_ref().unwrap();
        assert_eq!(r2.frames.len(), 2);
        // Band 4 was ingested once despite two subscribers.
        let b4 = stats.elements_per_band.iter().find(|(id, _)| *id == 4).unwrap();
        assert!(b4.1 > 0);
        assert_eq!(stats.elements_per_band.len(), 2, "only referenced bands ingest");
    }

    #[test]
    fn cross_band_query_over_shared_ingest() {
        let scanner = goes_like(32, 16, 5);
        let requests =
            vec![req("ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4))", OutputFormat::PngNdvi)];
        let (results, _) = run_continuous(&scanner, 1, &requests).unwrap();
        let r = results[0].as_ref().unwrap();
        assert_eq!(r.frames.len(), 1);
        assert!(geostreams_raster::png::decode(&r.frames[0].png).is_ok());
    }

    #[test]
    fn unknown_source_fails_before_spawning() {
        let scanner = goes_like(8, 4, 1);
        let err = run_continuous(&scanner, 1, &[req("nosuch.band", OutputFormat::Stats)]);
        assert!(matches!(err, Err(CoreError::UnknownSource(_))));
    }
}
