//! Continuous shared-ingest execution under supervision.
//!
//! `Dsms::run_query` lets every query pull its own source instances —
//! convenient, but a real receiving station decodes the downlink
//! **once**. This module implements the actual Fig. 3 dataflow: one
//! ingest thread per referenced spectral band fans the element stream
//! out to bounded channels, and each registered continuous query runs
//! its optimized pipeline on its own thread over channel-backed,
//! gap-repaired sources.
//!
//! Unlike the happy-path version this grew from, the runtime is
//! **supervised** (see DESIGN.md "Fault model & recovery"):
//!
//! * every ingest thread runs under a per-band supervisor that detects
//!   death (panic, injected crash, truncated downlink) and restarts the
//!   feed with capped exponential backoff, resuming at the next scan
//!   sector — restarts count into
//!   `geostreams_ingest_restarts_total`;
//! * fan-out is non-blocking under [`FanoutPolicy::Shed`]: a slow
//!   subscriber loses points (counted in
//!   `geostreams_fanout_shed_total`) instead of head-of-line-blocking
//!   every sibling query through the bounded channels, and a subscriber
//!   that stays wedged past a patience window is declared dead;
//! * each query's sources are wrapped in
//!   [`StreamRepair`](geostreams_core::model::StreamRepair), so frame-
//!   scoped operators emit *partial* frames with completeness ratios
//!   instead of blocking forever on rows the downlink lost;
//! * an optional per-query watchdog cancels (not hangs) a query that
//!   exceeds its deadline — e.g. one wedged on a stalled client — and
//!   counts into `geostreams_watchdog_cancellations_total`.
//!
//! Degradation is injected deterministically via
//! [`FaultPlan`](geostreams_satsim::FaultPlan): same seed, same faults,
//! byte-identical results (`scripts/chaos.sh` diffs two runs).

use crate::metrics::ServerMetrics;
use crate::protocol::{ClientRequest, OutputFormat};
use crate::server::{QueryResult, SourceRepair};
use crate::share::{band_refs, plan_sharing, share_refs, share_source_name, SubscriptionTree};
use geostreams_core::exec::{compile_stages, run_morsels, split_parallel, RunReport, WorkerPool};
use geostreams_core::model::{
    BoxedF32Stream, ChannelLike, ChunkChannel, ChunkOrMarker, GeoStream, Marker, RepairCounters,
    RepairProbe, StreamRepair, DEFAULT_CHUNK_BUDGET,
};
use geostreams_core::obs::{
    now_ns, Counter, Gauge, HistogramSnapshot, PipelineObs, SpanGuard, SpanOutcome, SpanStream,
    TraceContext,
};
use geostreams_core::ops::delivery::PngSink;
use geostreams_core::query::{
    analyze_with, key_hex, merged_source_windows, optimize, parse_query, AnalyzeOptions, Catalog,
    Expr, Planner, ReplayProvider, TimeWindow,
};
use geostreams_core::{CoreError, Result};
use geostreams_raster::png::PngOptions;
use geostreams_satsim::{ChaosStream, FaultPlan, FaultStats, Scanner};
use geostreams_store::{Archive, ArchiveReplay, SpliceStream, StoreMetrics};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default channel capacity per subscriber: how many chunked items a
/// slow query may lag behind the downlink before the fan-out policy
/// kicks in.
const CHANNEL_CAP: usize = 8192;

/// Poll interval for watchdog-aware channel reads and stall slicing.
const POLL: Duration = Duration::from_millis(20);

/// How the per-band ingest pump treats a subscriber whose bounded
/// channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanoutPolicy {
    /// Lossless blocking send: back-pressure is absolute, but one hung
    /// subscriber stalls the whole band (the legacy behavior; kept for
    /// compatibility and for callers that prefer loss-free delivery).
    Blocking,
    /// Never block ingest: points are shed (and counted) the moment a
    /// subscriber's buffer is full; framing markers are retried within
    /// a patience window, after which the subscriber is declared dead
    /// and unsubscribed.
    #[default]
    Shed,
}

/// Tuning knobs of the supervised runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Bounded-channel capacity per (query, band) subscription.
    pub channel_cap: usize,
    /// Fan-out policy for full subscriber buffers.
    pub fanout: FanoutPolicy,
    /// Per-query deadline; a query still running past it is cancelled
    /// (its sources end early and buffered scopes flush partial).
    /// `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// Maximum supervised restarts per band before giving up on the
    /// feed.
    pub max_restarts: u32,
    /// First restart backoff; doubles per consecutive restart.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// How long the shed policy retries a framing marker into a full
    /// buffer before declaring the subscriber dead.
    pub marker_patience: Duration,
    /// Deterministic downlink degradation applied to every ingested
    /// band (`None` = clean feed).
    pub fault_plan: Option<FaultPlan>,
    /// Artificial per-element processing stall for selected queries
    /// (request index → stall), simulating slow or wedged clients; the
    /// watchdog cuts through the stall.
    pub query_stall: Vec<(usize, Duration)>,
    /// Server metrics to surface recovery actions on (`/metrics`).
    pub metrics: Option<Arc<ServerMetrics>>,
    /// Tiled raster archive. When set, every ingested element is also
    /// persisted, and queries whose temporal restriction reaches before
    /// [`RuntimeConfig::start_sector`] are served from the archive —
    /// alone (wholly past) or spliced into the live feed (hybrid).
    pub archive: Option<Arc<Archive>>,
    /// First live scan sector — the runtime's "now". Live feeds join
    /// the downlink here; earlier sectors exist only in the archive.
    pub start_sector: u64,
    /// Retention knob applied to the attached archive at run start:
    /// maximum archive bytes (`None` keeps the archive's own setting).
    pub archive_max_bytes: Option<u64>,
    /// Retention knob: maximum archived frames (`None` keeps the
    /// archive's own setting). Eviction is segment-granular.
    pub archive_max_frames: Option<u64>,
    /// Multi-query plan sharing (DESIGN.md §16): when enabled, admitted
    /// counting queries with structurally-equal canonical plans — or
    /// common subplans across different plans — are evaluated once per
    /// chunk and multicast through subscription trees. Off by default:
    /// shared evaluation trades the per-query scan→deliver span chains
    /// of the legacy path for O(distinct plans) cost, so swarm mode is
    /// opt-in. The legacy one-pipeline-per-query path is the unshared
    /// oracle `swarm_bench` and the sharing tests compare against.
    pub share_plans: bool,
    /// Tenant of each request (request index → tenant name), used for
    /// per-tenant shed accounting on shared plans. Unlisted requests
    /// belong to the `"default"` tenant.
    pub tenants: Vec<(usize, String)>,
    /// Morsel-execution workers (DESIGN.md §17). The runtime owns one
    /// work-stealing pool of this many threads; counting queries
    /// (`Stats`/`Json`) and shared-plan evaluators fan their
    /// data-parallel operator suffix out to it, morsel by morsel, and
    /// merge back in lattice order — output is byte-identical at every
    /// worker count. `0` executes kernels inline on the driver thread
    /// (same code path, no extra threads).
    pub exec_workers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            channel_cap: CHANNEL_CAP,
            fanout: FanoutPolicy::Shed,
            watchdog: None,
            max_restarts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
            marker_patience: Duration::from_secs(2),
            fault_plan: None,
            query_stall: Vec::new(),
            metrics: None,
            archive: None,
            start_sector: 0,
            archive_max_bytes: None,
            archive_max_frames: None,
            share_plans: false,
            tenants: Vec::new(),
            exec_workers: 1,
        }
    }
}

/// How one source of an admitted query is served.
enum SourceRoute {
    /// Replay of a wholly-past window; no live subscription at all.
    ArchiveOnly(ArchiveReplay),
    /// Backfill-from-archive spliced into the live channel at the
    /// recorded watermark sector.
    Hybrid { replay: ArchiveReplay, watermark: Option<u64> },
}

/// Statistics of one continuous run.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Elements fanned out per band (band id → elements).
    pub elements_per_band: Vec<(u16, u64)>,
    /// Supervised ingest restarts per band (band id → restarts).
    pub restarts_per_band: Vec<(u16, u32)>,
    /// Total supervised ingest restarts.
    pub restarts: u64,
    /// Elements shed by the fan-out instead of blocking.
    pub shed_elements: u64,
    /// Queries cancelled by the watchdog.
    pub watchdog_cancellations: u64,
    /// Injected-fault counters per band (band id → stats), present
    /// when a fault plan was active.
    pub faults_per_band: Vec<(u16, FaultStats)>,
    /// Distinct shared plans (DAG nodes) the sharing runtime evaluated
    /// (0 = every query ran the legacy per-query path).
    pub shared_plans: u64,
    /// Chunked items delivered to shared-plan subscribers.
    pub shared_chunks_multicast: u64,
    /// Chunk payloads deep-copied anywhere in the fan-out (0 = every
    /// payload travelled by `Arc` reference only).
    pub payload_copies: u64,
    /// Elements shed by subscription trees, per tenant (sorted).
    pub shed_per_tenant: Vec<(String, u64)>,
}

/// One subscriber of a band's fan-out. The channel carries whole
/// chunked items behind an [`Arc`], so per-subscriber dispatch and
/// channel overhead are amortized over entire point runs and the
/// payload is never deep-copied per subscriber.
struct SubSlot {
    tx: Option<SyncSender<Arc<ChunkOrMarker<f32>>>>,
    /// Elements this subscriber lost to shedding (incl. being declared
    /// dead).
    shed: u64,
    /// Start of the current continuously-full stretch.
    full_since: Option<Instant>,
    /// Channel-depth gauge shared with the subscribing query: the pump
    /// adds per delivered item, the query side subtracts per receive.
    depth: Option<Gauge>,
}

/// Progress shared between an ingest attempt and its supervisor, so a
/// restart can resume behind the last delivered sector.
#[derive(Default)]
struct PumpProgress {
    elements: AtomicU64,
    /// `sector_id + 1` of the last `SectorStart` pumped (0 = none).
    last_sector: AtomicU64,
}

/// Runs a set of continuous queries over a scanner with shared ingest:
/// each referenced band is generated once and fanned out. Legacy
/// lossless entry point — equivalent to [`run_supervised`] with
/// [`FanoutPolicy::Blocking`], no watchdog and a clean feed.
///
/// Returns per-query results in request order, plus ingest statistics.
pub fn run_continuous(
    scanner: &Scanner,
    n_sectors: u64,
    requests: &[ClientRequest],
) -> Result<(Vec<Result<QueryResult>>, IngestStats)> {
    let config = RuntimeConfig { fanout: FanoutPolicy::Blocking, ..RuntimeConfig::default() };
    run_supervised(scanner, n_sectors, requests, &config)
}

/// Runs a set of continuous queries over a scanner with shared,
/// supervised ingest (see the module docs for the recovery model).
pub fn run_supervised(
    scanner: &Scanner,
    n_sectors: u64,
    requests: &[ClientRequest],
    config: &RuntimeConfig,
) -> Result<(Vec<Result<QueryResult>>, IngestStats)> {
    // Schema-only catalog for parsing/optimizing (factories unused here).
    let mut schema_catalog = Catalog::new();
    for band_idx in 0..scanner.instrument.bands.len() {
        let template = scanner.band_stream(band_idx, 1);
        let schema = template.schema().clone();
        let scanner2 = scanner.clone();
        schema_catalog.register(schema, move || Box::new(scanner2.band_stream(band_idx, 1)));
    }

    // Archive context: "now" is the first live sector; retention knobs
    // and metric handles are applied before any query is admitted.
    let now = config.start_sector as i64;
    if let Some(archive) = &config.archive {
        if config.archive_max_bytes.is_some() || config.archive_max_frames.is_some() {
            archive.set_retention(config.archive_max_bytes, config.archive_max_frames)?;
        }
        if let Some(m) = &config.metrics {
            archive.attach_metrics(StoreMetrics::register(m.registry()));
        }
        // Surface what crash recovery did when the archive was opened:
        // the report also carries the WAL-committed per-band watermarks
        // that `archive.watermark()` was re-anchored to, which is where
        // hybrid splices pick up their handoff point below.
        let report = archive.recovery_report();
        if !report.clean() {
            eprintln!(
                "archive recovery: {} frames restored, {} frames lost (uncommitted), \
                 {} bytes discarded, {} segments repaired, {} truncated, {} removed; \
                 resuming at watermarks {:?}",
                report.frames_recovered,
                report.frames_discarded,
                report.bytes_discarded,
                report.segments_repaired,
                report.segments_truncated,
                report.segments_removed,
                report.watermarks,
            );
        }
    }
    let store_metrics = match (&config.archive, &config.metrics) {
        (Some(_), Some(m)) => Some(StoreMetrics::register(m.registry())),
        _ => None,
    };
    let analyze_opts = AnalyzeOptions {
        now: Some(now),
        replay: config.archive.as_deref().map(|a| a as &dyn ReplayProvider),
    };

    // One morsel-execution pool per runtime (DESIGN.md §17): counting
    // queries and shared-plan evaluators dispatch their data-parallel
    // stage suffix here, and archive replays decode independent tiles
    // on it, instead of spawning threads of their own. Worker counters
    // are published as `geostreams_exec_worker_*` once the run settles.
    let exec_pool = Arc::new(WorkerPool::new(config.exec_workers));

    // Parse, optimize, and admit every request. A query whose plan
    // analysis carries errors (e.g. a wholly-past window with no
    // archive coverage — it would silently deliver nothing) gets a
    // per-query `PlanRejected` slot instead of failing the whole run.
    type Admitted = (Expr, OutputFormat, HashMap<String, SourceRoute>);
    let mut exprs: Vec<Result<Admitted>> = Vec::new();
    for (qid, req) in requests.iter().enumerate() {
        // Directory entry + flight recorder, minted at admission so the
        // query is observable (`GET /queries`, `GET /trace/<id>`) from
        // its very first span.
        if let Some(m) = &config.metrics {
            m.register_query(qid as u32, &req.query);
        }
        let expr = parse_query(&req.query)?;
        for name in expr.source_names() {
            if schema_catalog.schema(&name).is_none() {
                return Err(CoreError::UnknownSource(name));
            }
        }
        let expr = optimize(&expr, &schema_catalog);
        let plan = analyze_with(&expr, &schema_catalog, &analyze_opts);
        if plan.has_errors() || !plan.certificate.certified {
            if let Some(m) = &config.metrics {
                m.set_query_state(qid as u32, "rejected");
            }
            let reason = if plan.has_errors() {
                plan.render_errors()
            } else {
                format!(
                    "plan carries no valid protocol certificate: {}",
                    plan.certificate.violations.join("; ")
                )
            };
            exprs.push(Err(CoreError::PlanRejected(reason)));
            continue;
        }
        // Route each temporally-restricted source: wholly-past windows
        // replay from the archive with no live subscription; windows
        // that merely start in the past backfill `[lo, now)` and splice
        // into the live feed at the archive's frame watermark.
        let mut routes = HashMap::new();
        if let Some(archive) = &config.archive {
            for (name, sw) in merged_source_windows(&expr, &schema_catalog) {
                let w = sw.window;
                if w == TimeWindow::unbounded() || w.is_empty() {
                    continue;
                }
                let Some(band) = archive.band_of(&name) else { continue };
                if w.wholly_before(now) {
                    let replay = archive
                        .replay(band, w.lo, w.hi, sw.region.as_ref())?
                        .with_decode_pool(Arc::clone(&exec_pool));
                    routes.insert(name, SourceRoute::ArchiveOnly(replay));
                } else if w.starts_before(now) {
                    let replay = archive
                        .replay(band, w.lo, Some(now), sw.region.as_ref())?
                        .with_decode_pool(Arc::clone(&exec_pool));
                    let watermark = archive.watermark(band).map(|(s, _)| s);
                    routes.insert(name, SourceRoute::Hybrid { replay, watermark });
                }
            }
        }
        exprs.push(Ok((expr, req.format, routes)));
    }

    // Multi-query plan sharing (DESIGN.md §16): group eligible admitted
    // plans by canonical key and detect subplans shared across them.
    // Eligibility is conservative — counting formats only, no archive
    // routes, no watchdog — so the shared path can never change a
    // result the legacy path would have produced; everything else runs
    // per-query exactly as before.
    let mut eligible: Vec<(usize, Expr)> = Vec::new();
    if config.share_plans && config.watchdog.is_none() {
        for (qid, admitted) in exprs.iter().enumerate() {
            if let Ok((expr, format, routes)) = admitted {
                if matches!(format, OutputFormat::Stats | OutputFormat::Json) && routes.is_empty() {
                    eligible.push((qid, expr.clone()));
                }
            }
        }
    }
    let share_plan = plan_sharing(&eligible);
    let shared_qids: std::collections::HashSet<usize> =
        share_plan.nodes.iter().flat_map(|n| n.members.iter().copied()).collect();
    let tenant_of = |qid: usize| -> String {
        config
            .tenants
            .iter()
            .find(|(i, _)| *i == qid)
            .map_or_else(|| "default".to_string(), |(_, t)| t.clone())
    };

    // Create one channel per (query, live-served source). Archive-only
    // sources never subscribe: their band need not be ingested at all.
    // Queries served by a shared plan subscribe to its subscription
    // tree instead, never directly to a band.
    type Rx = Receiver<Arc<ChunkOrMarker<f32>>>;
    let mut band_slots: HashMap<String, Vec<SubSlot>> = HashMap::new();
    let mut query_receivers: Vec<HashMap<String, Rx>> = Vec::new();
    for (qid, admitted) in exprs.iter().enumerate() {
        let mut receivers = HashMap::new();
        if let Ok((expr, _, routes)) = admitted {
            if !shared_qids.contains(&qid) {
                for name in expr.source_names() {
                    if matches!(routes.get(&name), Some(SourceRoute::ArchiveOnly(_))) {
                        continue;
                    }
                    let (tx, rx) = sync_channel(config.channel_cap);
                    band_slots.entry(name.clone()).or_default().push(SubSlot {
                        tx: Some(tx),
                        shed: 0,
                        full_since: None,
                        depth: config
                            .metrics
                            .as_ref()
                            .and_then(|m| m.query_depth_gauge(qid as u32)),
                    });
                    receivers.insert(name, rx);
                }
            }
        }
        query_receivers.push(receivers);
    }

    // Shared-plan DAG wiring, part 1: each node subscribes once per
    // referenced band — a whole group of member queries costs one band
    // subscription, not one each.
    let mut node_band_rx: Vec<HashMap<String, Rx>> = Vec::new();
    for node in &share_plan.nodes {
        let mut receivers = HashMap::new();
        for name in band_refs(&node.expr) {
            let (tx, rx) = sync_channel(config.channel_cap);
            band_slots.entry(name.clone()).or_default().push(SubSlot {
                tx: Some(tx),
                shed: 0,
                full_since: None,
                depth: None,
            });
            receivers.insert(name, rx);
        }
        node_band_rx.push(receivers);
    }

    // Per-band supervised ingest: a supervisor thread spawns the pump
    // in an inner thread (panic isolation), inspects its fate, and
    // restarts with capped exponential backoff, resuming at the sector
    // after the last one started.
    struct BandReport {
        band_id: u16,
        elements: u64,
        restarts: u32,
        faults: Option<FaultStats>,
    }
    let mut ingest_handles = Vec::new();
    let mut band_sub_arcs: Vec<Arc<Mutex<Vec<SubSlot>>>> = Vec::new();
    for (name, slots) in band_slots {
        let band_idx = scanner
            .instrument
            .bands
            .iter()
            .position(|b| format!("{}.{}", scanner.instrument.name, b.name) == name)
            .ok_or_else(|| CoreError::UnknownSource(name.clone()))?;
        let band_id = scanner.instrument.bands[band_idx].id;
        let scanner = scanner.clone();
        let subs = Arc::new(Mutex::new(slots));
        band_sub_arcs.push(Arc::clone(&subs));
        let plan = config.fault_plan.clone();
        let fanout = config.fanout;
        let marker_patience = config.marker_patience;
        let max_restarts = config.max_restarts;
        let backoff_base = config.backoff_base;
        let backoff_cap = config.backoff_cap;
        let metrics = config.metrics.clone();
        let archive = config.archive.clone();
        let first_sector = config.start_sector;
        ingest_handles.push(std::thread::spawn(move || -> BandReport {
            // Ingest observability: the shared-ingest runtime records
            // into the reserved `u32::MAX` flight recorder, and each
            // band exports how long its pump has made no progress.
            let rec = metrics.as_ref().map(|m| m.recorder(u32::MAX));
            let staleness = metrics
                .as_ref()
                .map(|m| m.registry().gauge("geostreams_band_staleness_ns", &[("band", &name)]));
            let mut attempt: u32 = 0;
            let mut start_sector: u64 = first_sector;
            let mut elements: u64 = 0;
            let mut faults: Option<FaultStats> = None;
            loop {
                let base = scanner.band_stream_from(band_idx, first_sector, n_sectors);
                let chaotic = matches!(&plan, Some(p) if !p.for_attempt(attempt).is_benign());
                let (probe, stream): (_, BoxedF32Stream) = match &plan {
                    Some(p) if chaotic => {
                        // Salt by band and attempt: bands sharing a
                        // seed degrade independently, and a restarted
                        // feed sees a fresh (still deterministic)
                        // fault pattern.
                        let salt = (u64::from(attempt) << 32) | u64::from(band_id);
                        let chaos = ChaosStream::new(base, p.for_attempt(attempt), salt);
                        (Some(chaos.probe()), Box::new(chaos))
                    }
                    _ => (None, Box::new(base)),
                };
                // Span chain for this attempt: scan ← chaos ← pump. The
                // pump guard travels into the pump thread, counts points
                // and stamps its context onto every chunk fanned out.
                let (attempt_spans, pump_span) = match &rec {
                    Some(rec) => {
                        let scan = rec.begin(&format!("scan:{name}#{attempt}"), 0);
                        let chaos = chaotic
                            .then(|| rec.begin(&format!("chaos:{name}#{attempt}"), scan.span_id()));
                        let parent = chaos.as_ref().map_or(scan.span_id(), SpanGuard::span_id);
                        let pump = rec.begin(&format!("pump:{name}#{attempt}"), parent);
                        (Some((scan, chaos)), Some(pump))
                    }
                    None => (None, None),
                };
                let subs2 = Arc::clone(&subs);
                let progress = Arc::new(PumpProgress::default());
                let progress2 = Arc::clone(&progress);
                let shed_counter = metrics.as_ref().map(|m| m.fanout_shed.clone());
                let points_counter = metrics.as_ref().map(|m| m.points_ingested.clone());
                let archive2 = archive.clone();
                let inner = std::thread::spawn(move || {
                    pump(
                        stream,
                        &subs2,
                        &progress2,
                        start_sector,
                        fanout,
                        marker_patience,
                        shed_counter,
                        points_counter,
                        archive2,
                        band_id,
                        pump_span,
                    );
                });
                // With metrics attached, the supervisor watches the pump
                // instead of blocking on it, feeding the band staleness
                // gauge from its element progress.
                if let Some(g) = &staleness {
                    let mut last_seen = progress.elements.load(Ordering::Relaxed);
                    let mut last_progress_ns = now_ns();
                    while !inner.is_finished() {
                        std::thread::sleep(POLL);
                        let seen = progress.elements.load(Ordering::Relaxed);
                        if seen != last_seen {
                            last_seen = seen;
                            last_progress_ns = now_ns();
                        }
                        g.set(now_ns().saturating_sub(last_progress_ns));
                    }
                    g.set(0);
                }
                let panicked = inner.join().is_err();
                let attempt_faults = probe.as_ref().map(|p| p.stats());
                elements += progress.elements.load(Ordering::Relaxed);
                let crashed =
                    panicked || attempt_faults.as_ref().is_some_and(|f| f.died || f.truncated);
                if let Some(f) = attempt_faults {
                    faults.get_or_insert_with(FaultStats::default).merge(&f);
                }
                if let Some((scan, chaos)) = attempt_spans {
                    let outcome = if crashed { SpanOutcome::Error } else { SpanOutcome::Ok };
                    if let Some(c) = chaos {
                        c.finish(outcome);
                    }
                    scan.finish(outcome);
                }
                if !crashed || attempt >= max_restarts {
                    break;
                }
                // Supervised restart: resume at the sector after the
                // last one the dead attempt began delivering (the
                // partial sector is lost; queries see it finalized
                // partial by their repair stage).
                attempt += 1;
                if let Some(m) = &metrics {
                    m.ingest_restarts.inc();
                }
                let last = progress.last_sector.load(Ordering::Relaxed);
                start_sector = start_sector.max(last);
                let exp = attempt.saturating_sub(1).min(16);
                // Bounded jitter: SplitMix64 over (band, attempt) maps
                // to a factor in [0.5, 1.5), so bands killed by the same
                // fault burst fan their restarts out instead of hammering
                // the shared archive lock in lockstep — while staying
                // deterministic for replayable supervision tests.
                let mut z = ((u64::from(band_id) << 32) | u64::from(attempt))
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
                let backoff =
                    backoff_base.saturating_mul(1u32 << exp).min(backoff_cap).mul_f64(jitter);
                if let Some(m) = &metrics {
                    m.ingest_backoff_ms.add(backoff.as_millis() as u64);
                }
                if let Some(rec) = &rec {
                    // Failure edge: leave a restart marker span and
                    // freeze the ring for postmortem inspection.
                    let t = now_ns();
                    let reason = if panicked { "panic" } else { "restart" };
                    rec.record_span(
                        &format!("{reason}:{name}#{attempt}"),
                        0,
                        t,
                        t,
                        0,
                        SpanOutcome::Error,
                    );
                    rec.freeze(&format!("{reason}:{name}"));
                }
                std::thread::sleep(backoff);
            }
            // Unsubscribe everyone: queries see end-of-stream.
            let mut guard = subs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for slot in guard.iter_mut() {
                slot.tx = None;
            }
            BandReport { band_id, elements, restarts: attempt, faults }
        }));
    }

    // Query threads: pipelines over channel-backed, repaired catalogs.
    let repair_counters = config.metrics.as_ref().map(|m| RepairCounters {
        gaps: m.gaps_detected.clone(),
        duplicates: m.duplicates_dropped.clone(),
        disorder: m.disorder_detected.clone(),
        partial_frames: m.partial_frames.clone(),
    });
    // Chunk payloads travel the channels behind `Arc`s; a deep copy
    // happens only when a consumer must own a payload someone else
    // still references. This counts every such copy across the run.
    let payload_copies = Arc::new(AtomicU64::new(0));

    // Shared-plan DAG wiring, part 2: compute each node's output schema
    // (consumers register it under the synthetic `@share:*` source
    // name). Producers are resolved before consumers, so a node whose
    // body references another cut finds its schema already present.
    let key_of: HashMap<String, usize> =
        share_plan.nodes.iter().enumerate().map(|(i, n)| (share_source_name(n.key), i)).collect();
    let deps: Vec<Vec<usize>> = share_plan
        .nodes
        .iter()
        .map(|n| share_refs(&n.expr).iter().filter_map(|r| key_of.get(r).copied()).collect())
        .collect();
    let mut topo: Vec<usize> = Vec::new();
    {
        // The DAG is acyclic by construction (a cut's body references
        // only strictly smaller subexpressions); the growth check is a
        // defensive break, not an expected path.
        let mut placed = vec![false; share_plan.nodes.len()];
        while topo.len() < share_plan.nodes.len() {
            let before = topo.len();
            for i in 0..share_plan.nodes.len() {
                if !placed[i] && deps[i].iter().all(|&d| placed[d]) {
                    placed[i] = true;
                    topo.push(i);
                }
            }
            if topo.len() == before {
                break;
            }
        }
    }
    let mut share_schemas: HashMap<String, geostreams_core::model::StreamSchema> = HashMap::new();
    for &i in &topo {
        let node = &share_plan.nodes[i];
        let planner = Planner::new(&schema_catalog);
        let mut schema = planner.build(&node.expr)?.schema().clone();
        let name = share_source_name(node.key);
        schema.name = name.clone();
        share_schemas.insert(name, schema.clone());
        let schema2 = schema.clone();
        schema_catalog
            .register(schema, move || Box::new(ChannelLike::new(schema2.clone(), || None)));
    }

    // Part 3: one subscription tree per node. Every edge — interior
    // (node → node) and query (node → member) — subscribes BEFORE any
    // evaluator starts, so no subscriber can miss the stream head.
    let share_counter = config.metrics.as_ref().map(|m| m.share_chunks_multicast.clone());
    let trees: Vec<Arc<SubscriptionTree>> = share_plan
        .nodes
        .iter()
        .map(|_| Arc::new(SubscriptionTree::new().with_counter(share_counter.clone())))
        .collect();
    let mut node_share_rx: Vec<Vec<(String, Rx)>> = Vec::new();
    for node in &share_plan.nodes {
        let mut rxs = Vec::new();
        for r in share_refs(&node.expr) {
            if let Some(&j) = key_of.get(&r) {
                rxs.push((r, trees[j].subscribe_interior(config.channel_cap)));
            }
        }
        node_share_rx.push(rxs);
    }
    let mut member_rx: HashMap<usize, Rx> = HashMap::new();
    for (i, node) in share_plan.nodes.iter().enumerate() {
        if let Some(m) = &config.metrics {
            m.share_subscribers_gauge(&key_hex(node.key)).set(node.members.len() as u64);
        }
        for &qid in &node.members {
            let tenant = tenant_of(qid);
            let depth = config.metrics.as_ref().and_then(|m| m.query_depth_gauge(qid as u32));
            let shed = config.metrics.as_ref().map(|m| m.share_shed_counter(&tenant));
            member_rx
                .insert(qid, trees[i].subscribe_query(config.channel_cap, &tenant, depth, shed));
        }
    }

    // Part 4: one evaluator thread per node, draining its pipeline
    // through the chunk-native driver and multicasting each item
    // Arc-shared — the evaluation happens once per chunk regardless of
    // how many queries subscribe. Band sources get the same repair
    // stage as the legacy path; interior `@share:*` sources are already
    // repaired upstream and stream through untouched.
    let share_fanout = config.fanout;
    let share_patience = config.marker_patience;
    let mut node_handles = Vec::new();
    let mut node_probes: Vec<Vec<(String, Arc<RepairProbe>)>> = Vec::new();
    let mut band_rx_iter = node_band_rx.into_iter();
    let mut share_rx_iter = node_share_rx.into_iter();
    for (i, node) in share_plan.nodes.iter().enumerate() {
        let receivers = band_rx_iter.next().unwrap_or_default();
        let share_rxs = share_rx_iter.next().unwrap_or_default();
        let mut catalog = Catalog::new();
        let mut probes: Vec<(String, Arc<RepairProbe>)> = Vec::new();
        for (name, rx) in receivers {
            let Some(schema) = schema_catalog.schema(&name).cloned() else { continue };
            let probe = Arc::new(RepairProbe::default());
            probes.push((name.clone(), Arc::clone(&probe)));
            let slot = Arc::new(Mutex::new(Some(rx)));
            let counters = repair_counters.clone();
            let copies = Arc::clone(&payload_copies);
            catalog.register(schema.clone(), move || {
                let mut rx_opt = lock_opt(&slot).take();
                let copies = Arc::clone(&copies);
                let pull = move || {
                    let rx = rx_opt.as_ref()?;
                    match rx.recv() {
                        Ok(item) => Some(Arc::try_unwrap(item).unwrap_or_else(|a| {
                            copies.fetch_add(1, Ordering::Relaxed);
                            (*a).clone()
                        })),
                        Err(_) => {
                            rx_opt = None;
                            None
                        }
                    }
                };
                let channel = ChunkChannel::new(schema.clone(), pull);
                let repaired = StreamRepair::with_probe(channel, Arc::clone(&probe));
                match &counters {
                    Some(c) => Box::new(repaired.with_counters(c.clone())),
                    None => Box::new(repaired),
                }
            });
        }
        for (name, rx) in share_rxs {
            let Some(schema) = share_schemas.get(&name).cloned() else { continue };
            let slot = Arc::new(Mutex::new(Some(rx)));
            let copies = Arc::clone(&payload_copies);
            catalog.register(schema.clone(), move || {
                let mut rx_opt = lock_opt(&slot).take();
                let copies = Arc::clone(&copies);
                let pull = move || {
                    let rx = rx_opt.as_ref()?;
                    match rx.recv() {
                        Ok(item) => Some(Arc::try_unwrap(item).unwrap_or_else(|a| {
                            copies.fetch_add(1, Ordering::Relaxed);
                            (*a).clone()
                        })),
                        Err(_) => {
                            rx_opt = None;
                            None
                        }
                    }
                };
                Box::new(ChunkChannel::new(schema.clone(), pull))
            });
        }
        node_probes.push(probes);
        let expr = node.expr.clone();
        let tree = Arc::clone(&trees[i]);
        let pool = Arc::clone(&exec_pool);
        node_handles.push(std::thread::spawn(move || -> RunReport {
            let empty = || RunReport {
                wall: Duration::ZERO,
                elements: 0,
                points_delivered: 0,
                sectors: 0,
                per_op: Vec::new(),
                pull_latency: HistogramSnapshot::default(),
                protocol_violations: 0,
            };
            // The node's partitionable suffix runs on the shared worker
            // pool; the inner plan (sources + repair) stays on this
            // thread. With an empty suffix `run_morsels` degenerates to
            // the serial chunk driver — either way the multicast stream
            // is byte-identical to the legacy single-threaded pull.
            let split = split_parallel(&expr);
            let planner = Planner::new(&catalog);
            let mut inner: BoxedF32Stream = match planner.build(&split.inner) {
                Ok(p) => p,
                Err(e) => {
                    // Cannot happen for admitted plans (all sources are
                    // registered); close the tree so members terminate.
                    eprintln!("shared plan build failed: {e}");
                    tree.close();
                    return empty();
                }
            };
            let stages = match compile_stages(&split.stages, inner.schema()) {
                Ok(s) => Arc::new(s),
                Err(e) => {
                    eprintln!("shared plan stage compile failed: {e}");
                    tree.close();
                    return empty();
                }
            };
            let report = run_morsels(
                &mut inner,
                &stages,
                &pool,
                &PipelineObs::default(),
                DEFAULT_CHUNK_BUDGET,
                |item| {
                    let shared = Arc::new(item.clone());
                    tree.multicast(&shared, share_fanout, share_patience);
                },
            );
            tree.close();
            report.run
        }));
    }

    // Part 5: one lightweight subscriber thread per member query. It
    // counts what the shared evaluation delivers (the same stream the
    // legacy pipeline root would have produced) and reports repair
    // facts from its node and every upstream node it consumes.
    let closure_of = |start: usize| -> Vec<usize> {
        let mut seen = vec![false; deps.len()];
        let mut stack = vec![start];
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if i >= seen.len() || seen[i] {
                continue;
            }
            seen[i] = true;
            out.push(i);
            stack.extend(deps[i].iter().copied());
        }
        out
    };
    let mut shared_handles: HashMap<usize, std::thread::JoinHandle<(Result<QueryResult>, bool)>> =
        HashMap::new();
    for (i, node) in share_plan.nodes.iter().enumerate() {
        let closure = closure_of(i);
        for &qid in &node.members {
            let Some(rx) = member_rx.remove(&qid) else { continue };
            let probes: Vec<(String, Arc<RepairProbe>)> = closure
                .iter()
                .flat_map(|&j| node_probes.get(j).into_iter().flatten().cloned())
                .collect();
            let stall = config.query_stall.iter().find(|(i, _)| *i == qid).map(|(_, d)| *d);
            let metrics = config.metrics.clone();
            let depth = config.metrics.as_ref().and_then(|m| m.query_depth_gauge(qid as u32));
            shared_handles.insert(
                qid,
                std::thread::spawn(move || -> (Result<QueryResult>, bool) {
                    if let Some(m) = &metrics {
                        m.set_query_state(qid as u32, "running");
                    }
                    let started = Instant::now();
                    let never_cancelled = AtomicBool::new(false);
                    let mut elements = 0u64;
                    let mut points = 0u64;
                    let mut sectors = 0u64;
                    while let Ok(item) = rx.recv() {
                        if let Some(g) = &depth {
                            g.sub(1);
                        }
                        if let Some(d) = stall {
                            // Simulated slow client: backpressure builds
                            // in this subscriber's own channel, where the
                            // tree sheds per tenant instead of stalling
                            // the shared evaluation.
                            stall_sliced(d, None, &never_cancelled);
                        }
                        elements += item.element_count();
                        points += item.point_count() as u64;
                        if let Some(Marker::SectorEnd(_)) = item.marker() {
                            sectors += 1;
                        }
                    }
                    let report = RunReport {
                        wall: started.elapsed(),
                        elements,
                        points_delivered: points,
                        sectors,
                        per_op: Vec::new(),
                        pull_latency: HistogramSnapshot::default(),
                        protocol_violations: 0,
                    };
                    let repair: Vec<SourceRepair> = probes
                        .iter()
                        .map(|(source, p)| SourceRepair {
                            source: source.clone(),
                            stats: p.stats(),
                            sectors: p.sectors(),
                        })
                        .collect();
                    let completeness =
                        repair.iter().map(|s| s.stats.completeness()).fold(1.0_f64, f64::min);
                    if let Some(m) = &metrics {
                        m.finish_query(qid as u32, "done", points, completeness);
                    }
                    let result = QueryResult {
                        id: qid as u32,
                        frames: Vec::new(),
                        report: Some(report),
                        points,
                        repair,
                        cancelled: false,
                    };
                    (Ok(result), false)
                }),
            );
        }
    }

    enum QuerySlot {
        Running(std::thread::JoinHandle<(Result<QueryResult>, bool)>),
        Rejected(CoreError),
    }
    let mut query_slots = Vec::new();
    for (qid, (admitted, receivers)) in exprs.into_iter().zip(query_receivers).enumerate() {
        // Queries served by a shared plan already have a subscriber
        // thread; their slot just collects it.
        if let Some(h) = shared_handles.remove(&qid) {
            query_slots.push(QuerySlot::Running(h));
            continue;
        }
        let (expr, format, mut routes) = match admitted {
            Ok(parts) => parts,
            Err(e) => {
                query_slots.push(QuerySlot::Rejected(e));
                continue;
            }
        };
        let schemas: HashMap<String, geostreams_core::model::StreamSchema> = receivers
            .keys()
            .chain(routes.keys())
            .filter_map(|name| schema_catalog.schema(name).map(|s| (name.clone(), s.clone())))
            .collect();
        let watchdog = config.watchdog;
        let stall = config.query_stall.iter().find(|(i, _)| *i == qid).map(|(_, d)| *d);
        let counters = repair_counters.clone();
        let watchdog_counter = config.metrics.as_ref().map(|m| m.watchdog_cancellations.clone());
        let store_metrics = store_metrics.clone();
        let metrics = config.metrics.clone();
        let payload_copies = Arc::clone(&payload_copies);
        let exec_pool = Arc::clone(&exec_pool);
        query_slots.push(QuerySlot::Running(std::thread::spawn(
            move || -> (Result<QueryResult>, bool) {
                let deadline = watchdog.map(|d| Instant::now() + d);
                let cancelled = Arc::new(AtomicBool::new(false));
                let fired = Arc::new(AtomicBool::new(false));
                let recorder = metrics.as_ref().map(|m| m.recorder(qid as u32));
                let depth = metrics.as_ref().and_then(|m| m.query_depth_gauge(qid as u32));
                if let Some(m) = &metrics {
                    m.set_query_state(qid as u32, "running");
                }
                // A per-query catalog whose factories hand out each
                // channel receiver exactly once, watchdog-aware and
                // wrapped in a repair stage.
                let mut catalog = Catalog::new();
                let mut probes: Vec<(String, Arc<RepairProbe>)> = Vec::new();
                for (name, rx) in receivers {
                    let Some(schema) = schemas.get(&name).cloned() else { continue };
                    let probe = Arc::new(RepairProbe::default());
                    probes.push((name.clone(), Arc::clone(&probe)));
                    let slot = Arc::new(Mutex::new(Some(rx)));
                    // A hybrid source backfills from this replay, then
                    // splices into the live channel (first open only).
                    let hybrid = match routes.remove(&name) {
                        Some(SourceRoute::Hybrid { replay, watermark }) => {
                            Some((replay, watermark))
                        }
                        _ => None,
                    };
                    let hybrid_slot = Arc::new(Mutex::new(hybrid));
                    let cancelled = Arc::clone(&cancelled);
                    let fired = Arc::clone(&fired);
                    let watchdog_counter = watchdog_counter.clone();
                    let counters = counters.clone();
                    let store_metrics = store_metrics.clone();
                    let recorder = recorder.clone();
                    let depth = depth.clone();
                    let src_name = name.clone();
                    let copies = Arc::clone(&payload_copies);
                    catalog.register(schema.clone(), move || {
                        // Sources are single-consumer: the first open
                        // takes the receiver, later opens get an
                        // exhausted stream.
                        let rx_opt =
                            slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
                        let mut done = false;
                        let cancelled = Arc::clone(&cancelled);
                        let fired = Arc::clone(&fired);
                        let watchdog_counter = watchdog_counter.clone();
                        let wd_rec = recorder.clone();
                        let depth = depth.clone();
                        let copies = Arc::clone(&copies);
                        let pull = move || {
                            loop {
                                if expired(deadline) {
                                    if !fired.swap(true, Ordering::SeqCst) {
                                        if let Some(c) = &watchdog_counter {
                                            c.inc();
                                        }
                                        if let Some(rec) = &wd_rec {
                                            // The cancellation itself is
                                            // a recorded event, and the
                                            // ring is frozen for
                                            // postmortem inspection.
                                            let t = now_ns();
                                            rec.record_span(
                                                "watchdog",
                                                0,
                                                t,
                                                t,
                                                0,
                                                SpanOutcome::Cancelled,
                                            );
                                            rec.freeze("watchdog");
                                        }
                                    }
                                    cancelled.store(true, Ordering::SeqCst);
                                }
                                if done || cancelled.load(Ordering::SeqCst) {
                                    return None;
                                }
                                let rx = rx_opt.as_ref()?;
                                match rx.recv_timeout(POLL) {
                                    Ok(item) => {
                                        if let Some(g) = &depth {
                                            g.sub(1);
                                        }
                                        if let Some(d) = stall {
                                            // Simulated slow client;
                                            // sliced so the watchdog
                                            // can cut through it.
                                            if !stall_sliced(d, deadline, &cancelled) {
                                                continue;
                                            }
                                        }
                                        // Copy-on-write: own the payload
                                        // outright when this was the last
                                        // reference (single-subscriber
                                        // channels always are), deep-copy
                                        // (counted) otherwise.
                                        return Some(Arc::try_unwrap(item).unwrap_or_else(|a| {
                                            copies.fetch_add(1, Ordering::Relaxed);
                                            (*a).clone()
                                        }));
                                    }
                                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                                        done = true;
                                        return None;
                                    }
                                }
                            }
                        };
                        let channel = ChunkChannel::new(schema.clone(), pull);
                        // With a recorder attached, the factory opens the
                        // per-stage span chain repair ← splice ← scan
                        // under the planner's source span (threaded in
                        // via `build_parent`; ids are reserved up front
                        // because the stack is built inside-out). The
                        // scan span captures the first chunk-carried
                        // pump context as its cross-trace link.
                        match lock_opt(&hybrid_slot).take() {
                            Some((replay, watermark)) => match &recorder {
                                Some(rec) => {
                                    let repair_id = rec.alloc_span();
                                    let splice_id = rec.alloc_span();
                                    let scan_guard =
                                        rec.begin(&format!("scan:{src_name}"), splice_id);
                                    let scan =
                                        SpanStream::new(channel, scan_guard).with_link_capture();
                                    let rec2 = Arc::clone(rec);
                                    let bf_name = src_name.clone();
                                    let sm = store_metrics.clone();
                                    let bf_start = now_ns();
                                    let on_switch = Some(Box::new(move |ns: u64| {
                                        if let Some(sm) = &sm {
                                            sm.backfill_ns.record(ns);
                                        }
                                        // The backfill phase is a span of
                                        // its own, closed at the splice
                                        // switch when its duration is
                                        // known.
                                        rec2.record_span(
                                            &format!("backfill:{bf_name}"),
                                            splice_id,
                                            bf_start,
                                            bf_start.saturating_add(ns),
                                            0,
                                            SpanOutcome::Ok,
                                        );
                                    })
                                        as Box<dyn FnOnce(u64) + Send>);
                                    let spliced = SpliceStream::new(
                                        replay,
                                        Box::new(scan),
                                        watermark,
                                        on_switch,
                                    );
                                    let splice_guard = rec.begin_with_id(
                                        splice_id,
                                        &format!("splice:{src_name}"),
                                        repair_id,
                                    );
                                    let spliced = SpanStream::new(spliced, splice_guard);
                                    let repaired =
                                        StreamRepair::with_probe(spliced, Arc::clone(&probe));
                                    let repair_guard = rec.begin_with_id(
                                        repair_id,
                                        &format!("repair:{src_name}"),
                                        rec.build_parent(),
                                    );
                                    match &counters {
                                        Some(c) => Box::new(SpanStream::new(
                                            repaired.with_counters(c.clone()),
                                            repair_guard,
                                        )),
                                        None => Box::new(SpanStream::new(repaired, repair_guard)),
                                    }
                                }
                                None => {
                                    let on_switch = store_metrics.clone().map(|sm| {
                                        Box::new(move |ns: u64| sm.backfill_ns.record(ns))
                                            as Box<dyn FnOnce(u64) + Send>
                                    });
                                    let spliced = SpliceStream::new(
                                        replay,
                                        Box::new(channel),
                                        watermark,
                                        on_switch,
                                    );
                                    let repaired =
                                        StreamRepair::with_probe(spliced, Arc::clone(&probe));
                                    match &counters {
                                        Some(c) => Box::new(repaired.with_counters(c.clone())),
                                        None => Box::new(repaired),
                                    }
                                }
                            },
                            None => match &recorder {
                                Some(rec) => {
                                    let repair_id = rec.alloc_span();
                                    let scan_guard =
                                        rec.begin(&format!("scan:{src_name}"), repair_id);
                                    let scan =
                                        SpanStream::new(channel, scan_guard).with_link_capture();
                                    let repaired =
                                        StreamRepair::with_probe(scan, Arc::clone(&probe));
                                    let repair_guard = rec.begin_with_id(
                                        repair_id,
                                        &format!("repair:{src_name}"),
                                        rec.build_parent(),
                                    );
                                    match &counters {
                                        Some(c) => Box::new(SpanStream::new(
                                            repaired.with_counters(c.clone()),
                                            repair_guard,
                                        )),
                                        None => Box::new(SpanStream::new(repaired, repair_guard)),
                                    }
                                }
                                None => {
                                    let repaired =
                                        StreamRepair::with_probe(channel, Arc::clone(&probe));
                                    match &counters {
                                        Some(c) => Box::new(repaired.with_counters(c.clone())),
                                        None => Box::new(repaired),
                                    }
                                }
                            },
                        }
                    });
                }
                // Archive-only sources: the replay IS the source — no
                // live subscription exists for them at all.
                for (name, route) in routes {
                    let SourceRoute::ArchiveOnly(replay) = route else { continue };
                    let Some(schema) = schemas.get(&name).cloned() else { continue };
                    let probe = Arc::new(RepairProbe::default());
                    probes.push((name.clone(), Arc::clone(&probe)));
                    let slot = Arc::new(Mutex::new(Some(replay)));
                    let counters = counters.clone();
                    let recorder = recorder.clone();
                    let src_name = name.clone();
                    catalog.register(schema.clone(), move || {
                        match lock_opt(&slot).take() {
                            Some(r) => match &recorder {
                                Some(rec) => {
                                    let repair_id = rec.alloc_span();
                                    let replay_guard =
                                        rec.begin(&format!("replay:{src_name}"), repair_id);
                                    let r = SpanStream::new(r, replay_guard);
                                    let repaired = StreamRepair::with_probe(r, Arc::clone(&probe));
                                    let repair_guard = rec.begin_with_id(
                                        repair_id,
                                        &format!("repair:{src_name}"),
                                        rec.build_parent(),
                                    );
                                    match &counters {
                                        Some(c) => Box::new(SpanStream::new(
                                            repaired.with_counters(c.clone()),
                                            repair_guard,
                                        )),
                                        None => Box::new(SpanStream::new(repaired, repair_guard)),
                                    }
                                }
                                None => {
                                    let repaired = StreamRepair::with_probe(r, Arc::clone(&probe));
                                    match &counters {
                                        Some(c) => Box::new(repaired.with_counters(c.clone())),
                                        None => Box::new(repaired),
                                    }
                                }
                            },
                            // Later opens of a single-consumer source
                            // get an exhausted stream.
                            None => Box::new(ChannelLike::new(schema.clone(), || None)),
                        }
                    });
                }
                let run = || -> Result<QueryResult> {
                    let planner = Planner::new(&catalog);
                    // Counting queries whose plan ends in a
                    // partitionable operator suffix run it on the
                    // runtime's worker pool, morsel by morsel, merged
                    // back in lattice order (byte-identical to the
                    // serial pipeline). Plans with no such suffix —
                    // and image deliveries, whose PNG sink is
                    // inherently ordered — keep the legacy path.
                    let split = split_parallel(&expr);
                    let counting = matches!(format, OutputFormat::Stats | OutputFormat::Json);
                    let mut result = if counting && !split.stages.is_empty() {
                        let report = match (&metrics, &recorder) {
                            (Some(m), Some(rec)) => {
                                // Traced morsel run: the inner chain is
                                // span-traced exactly like a serial
                                // plan; the deliver span and the
                                // frame-hook freshness accounting the
                                // legacy root `SpanStream` provided
                                // are replicated around the merged
                                // (serial-order) output.
                                let deliver_id = rec.alloc_span();
                                let obs = PipelineObs::for_query(qid as u32)
                                    .with_trace(Arc::clone(&m.trace))
                                    .with_recorder(Arc::clone(rec))
                                    .under(deliver_id);
                                let mut inner = planner.build_traced(&split.inner, &obs)?;
                                let stages =
                                    Arc::new(compile_stages(&split.stages, inner.schema())?);
                                let mut deliver = rec.begin_with_id(deliver_id, "deliver", 0);
                                let m2 = Arc::clone(m);
                                let mr = run_morsels(
                                    &mut inner,
                                    &stages,
                                    &exec_pool,
                                    &obs,
                                    DEFAULT_CHUNK_BUDGET,
                                    |item| {
                                        if let Some(Marker::FrameStart(fi)) = item.marker() {
                                            m2.note_frame(qid as u32, fi);
                                        }
                                    },
                                );
                                deliver.add_points(mr.run.points_delivered);
                                deliver.finish(SpanOutcome::Ok);
                                mr.run
                            }
                            _ => {
                                let mut inner = planner.build(&split.inner)?;
                                let stages =
                                    Arc::new(compile_stages(&split.stages, inner.schema())?);
                                run_morsels(
                                    &mut inner,
                                    &stages,
                                    &exec_pool,
                                    &PipelineObs::default(),
                                    DEFAULT_CHUNK_BUDGET,
                                    |_| {},
                                )
                                .run
                            }
                        };
                        let points = report.points_delivered;
                        // Debug-build runtime validator: any marker
                        // bracketing or chunk-edge violation the merge
                        // stage observed becomes a counted alarm
                        // (always 0 in release builds).
                        if report.protocol_violations > 0 {
                            if let Some(m) = &metrics {
                                m.protocol_violations.add(report.protocol_violations);
                            }
                        }
                        QueryResult {
                            id: qid as u32,
                            frames: Vec::new(),
                            report: Some(report),
                            points,
                            repair: Vec::new(),
                            cancelled: false,
                        }
                    } else {
                        let pipeline: BoxedF32Stream = match (&metrics, &recorder) {
                            (Some(m), Some(rec)) => {
                                // Traced build: one span per operator,
                                // chained under a root delivery span whose
                                // frame hook feeds watermark and e2e-lag
                                // accounting at the moment of delivery.
                                let deliver_id = rec.alloc_span();
                                let obs = PipelineObs::for_query(qid as u32)
                                    .with_trace(Arc::clone(&m.trace))
                                    .with_recorder(Arc::clone(rec))
                                    .under(deliver_id);
                                let built = planner.build_traced(&expr, &obs)?;
                                let deliver = rec.begin_with_id(deliver_id, "deliver", 0);
                                let m2 = Arc::clone(m);
                                Box::new(
                                    SpanStream::new(built, deliver)
                                        .with_frame_hook(move |fi| m2.note_frame(qid as u32, fi)),
                                )
                            }
                            _ => planner.build(&expr)?,
                        };
                        match format {
                            OutputFormat::Stats | OutputFormat::Json => {
                                let mut pipeline = pipeline;
                                let report = geostreams_core::exec::run_to_end(&mut pipeline);
                                let points = report.points_delivered;
                                // Debug-build runtime validator: any marker
                                // bracketing or chunk-edge violation the
                                // driver observed becomes a counted alarm
                                // (always 0 in release builds).
                                if report.protocol_violations > 0 {
                                    if let Some(m) = &metrics {
                                        m.protocol_violations.add(report.protocol_violations);
                                    }
                                }
                                QueryResult {
                                    id: qid as u32,
                                    frames: Vec::new(),
                                    report: Some(report),
                                    points,
                                    repair: Vec::new(),
                                    cancelled: false,
                                }
                            }
                            _ => {
                                let mut sink = PngSink::new(pipeline, None, PngOptions::default());
                                let mut frames = Vec::new();
                                while let Some(f) = sink.next_frame() {
                                    frames.push(f);
                                }
                                let points = frames.len() as u64;
                                QueryResult {
                                    id: qid as u32,
                                    frames,
                                    report: None,
                                    points,
                                    repair: Vec::new(),
                                    cancelled: false,
                                }
                            }
                        }
                    };
                    result.repair = probes
                        .iter()
                        .map(|(source, p)| SourceRepair {
                            source: source.clone(),
                            stats: p.stats(),
                            sectors: p.sectors(),
                        })
                        .collect();
                    result.cancelled = fired.load(Ordering::SeqCst);
                    Ok(result)
                };
                let result = run();
                let was_cancelled = fired.load(Ordering::SeqCst);
                if let Some(m) = &metrics {
                    let state = if was_cancelled {
                        "cancelled"
                    } else if result.is_err() {
                        "failed"
                    } else {
                        "done"
                    };
                    let (points, completeness) = match &result {
                        Ok(r) => (
                            r.points,
                            r.repair.iter().map(|s| s.stats.completeness()).fold(1.0_f64, f64::min),
                        ),
                        Err(_) => (0, 0.0),
                    };
                    m.finish_query(qid as u32, state, points, completeness);
                }
                (result, was_cancelled)
            },
        )));
    }

    let mut cancellations = 0u64;
    let results: Vec<Result<QueryResult>> = query_slots
        .into_iter()
        .map(|slot| match slot {
            QuerySlot::Rejected(e) => Err(e),
            QuerySlot::Running(h) => match h.join() {
                Ok((res, fired)) => {
                    if fired {
                        cancellations += 1;
                    }
                    res
                }
                Err(_) => Err(CoreError::Unsupported("query thread panicked".into())),
            },
        })
        .collect();
    let mut stats = IngestStats::default();
    for h in ingest_handles {
        if let Ok(report) = h.join() {
            stats.elements_per_band.push((report.band_id, report.elements));
            if report.restarts > 0 {
                stats.restarts_per_band.push((report.band_id, report.restarts));
                stats.restarts += u64::from(report.restarts);
            }
            if let Some(f) = report.faults {
                stats.faults_per_band.push((report.band_id, f));
            }
        }
    }
    for subs in band_sub_arcs {
        let guard = subs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        stats.shed_elements += guard.iter().map(|s| s.shed).sum::<u64>();
    }
    // Shared-plan accounting: evaluator reports (protocol checking ran
    // once per distinct plan), multicast volume and per-tenant shed
    // from the trees, and the run-wide payload-copy count.
    for h in node_handles {
        if let Ok(report) = h.join() {
            if report.protocol_violations > 0 {
                if let Some(m) = &config.metrics {
                    m.protocol_violations.add(report.protocol_violations);
                }
            }
        }
    }
    stats.shared_plans = share_plan.nodes.len() as u64;
    for tree in &trees {
        stats.shared_chunks_multicast += tree.chunks_multicast();
        for (tenant, n) in tree.shed_per_tenant() {
            match stats.shed_per_tenant.iter_mut().find(|(t, _)| *t == tenant) {
                Some(e) => e.1 += n,
                None => stats.shed_per_tenant.push((tenant, n)),
            }
        }
    }
    stats.shed_per_tenant.sort();
    stats.payload_copies = payload_copies.load(Ordering::Relaxed);
    if let Some(m) = &config.metrics {
        m.share_distinct_plans.set(stats.shared_plans);
        if stats.payload_copies > 0 {
            m.share_payload_copies.add(stats.payload_copies);
        }
        m.record_exec_workers(&exec_pool.stats());
    }
    stats.watchdog_cancellations = cancellations;
    stats.elements_per_band.sort_unstable();
    stats.restarts_per_band.sort_unstable();
    stats.faults_per_band.sort_unstable_by_key(|(id, _)| *id);
    Ok((results, stats))
}

/// Poison-tolerant lock (metrics/state stay usable after a panic).
fn lock_opt<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// True when a deadline exists and has passed.
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Sleeps `total` in watchdog-sized slices; returns `false` when the
/// deadline passed or the query was cancelled mid-stall.
fn stall_sliced(total: Duration, deadline: Option<Instant>, cancelled: &AtomicBool) -> bool {
    let until = Instant::now() + total;
    while Instant::now() < until {
        if expired(deadline) || cancelled.load(Ordering::SeqCst) {
            return false;
        }
        std::thread::sleep(POLL.min(until.saturating_duration_since(Instant::now())));
    }
    true
}

/// One ingest attempt: drains the stream into every live subscriber,
/// skipping sectors before `start_sector` (restart resume). When an
/// archive is attached, every delivered element (post-chaos, i.e. what
/// the downlink actually produced) is also persisted.
#[allow(clippy::too_many_arguments)]
fn pump(
    mut stream: BoxedF32Stream,
    subs: &Mutex<Vec<SubSlot>>,
    progress: &PumpProgress,
    start_sector: u64,
    fanout: FanoutPolicy,
    marker_patience: Duration,
    shed_counter: Option<Counter>,
    points_counter: Option<Counter>,
    mut archive: Option<Arc<Archive>>,
    band_id: u16,
    mut span: Option<SpanGuard>,
) {
    // Causal identity stamped onto every chunk this pump fans out, so
    // subscribing queries can link their scan span back to this pump.
    let ctx: Option<TraceContext> = span.as_ref().map(SpanGuard::ctx);
    if let Some(a) = &archive {
        if let Err(e) = a.bind_band(stream.schema()) {
            eprintln!("archive: bind band {band_id} failed, persistence disabled: {e}");
            archive = None;
        }
    }
    let mut skipping = start_sector > 0;
    while let Some(item) = stream.next_chunk(DEFAULT_CHUNK_BUDGET) {
        let item = if skipping {
            // Restart resume: drop everything before `start_sector`. A
            // point run inside a skipped sector is discarded whole; only
            // a `SectorStart` at or past the resume point ends the skip.
            match item {
                ChunkOrMarker::Marker(Marker::SectorStart(si)) if si.sector_id >= start_sector => {
                    skipping = false;
                    ChunkOrMarker::Marker(Marker::SectorStart(si))
                }
                ChunkOrMarker::Marker(_) => continue,
                ChunkOrMarker::Chunk(mut c) => match c.end.take() {
                    Some(Marker::SectorStart(si)) if si.sector_id >= start_sector => {
                        skipping = false;
                        c.recycle();
                        ChunkOrMarker::Marker(Marker::SectorStart(si))
                    }
                    _ => {
                        c.recycle();
                        continue;
                    }
                },
            }
        } else {
            item
        };
        let mut item = item;
        if let ChunkOrMarker::Chunk(c) = &mut item {
            c.ctx = ctx;
        }
        if let Some(Marker::SectorStart(si)) = item.marker() {
            progress.last_sector.store(si.sector_id + 1, Ordering::Relaxed);
        }
        progress.elements.fetch_add(item.element_count(), Ordering::Relaxed);
        let n_points = item.point_count() as u64;
        if n_points > 0 {
            if let Some(c) = &points_counter {
                c.add(n_points);
            }
            if let Some(s) = &mut span {
                s.add_points(n_points);
            }
        }
        if let Some(a) = &archive {
            if let Err(e) = a.ingest_chunk(band_id, &item) {
                eprintln!("archive: ingest on band {band_id} failed, persistence disabled: {e}");
                archive = None;
            }
        }
        let has_marker = item.marker().is_some();
        // One Arc wrap per item: subscribers share the payload and the
        // consumer side takes ownership copy-on-write.
        fanout_all(subs, Arc::new(item), has_marker, fanout, marker_patience, &shed_counter);
    }
    if let Some(a) = &archive {
        let _ = a.flush();
    }
}

/// Delivers one chunked item to every subscriber under the fan-out
/// policy — without ever blocking or sleeping while the `subs` guard is
/// held. A bounded `send` can stall until a subscriber drains; holding
/// the lock across it would wedge subscribe/unsubscribe and the
/// supervisor's bookkeeping for the whole band (the geolint
/// `lock-across-send` rule exists because an earlier version of this
/// function did exactly that).
/// A live subscriber snapshot: slot index, sender, fan-out depth gauge.
type LiveSub = (usize, SyncSender<Arc<ChunkOrMarker<f32>>>, Option<Gauge>);

fn fanout_all(
    subs: &Mutex<Vec<SubSlot>>,
    item: Arc<ChunkOrMarker<f32>>,
    has_marker: bool,
    fanout: FanoutPolicy,
    marker_patience: Duration,
    shed_counter: &Option<Counter>,
) {
    match fanout {
        FanoutPolicy::Blocking => {
            // Snapshot the live senders under the lock, send unlocked
            // (SyncSender clones share the same channel), then re-lock
            // only to null out receivers that turned out closed (a
            // finished/failed query is fine). The last subscriber gets
            // the pump's own Arc moved in, so a single subscriber holds
            // the only reference at receive time and owns the payload
            // without a copy.
            let mut live: Vec<LiveSub> = {
                let guard = lock_opt(subs);
                guard
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.tx.clone().map(|tx| (i, tx, s.depth.clone())))
                    .collect()
            };
            let mut dead = Vec::new();
            let last = live.pop();
            for (i, tx, depth) in live {
                if tx.send(Arc::clone(&item)).is_err() {
                    dead.push(i);
                } else if let Some(g) = depth {
                    g.add(1);
                }
            }
            if let Some((i, tx, depth)) = last {
                if tx.send(item).is_err() {
                    dead.push(i);
                } else if let Some(g) = depth {
                    g.add(1);
                }
            }
            if !dead.is_empty() {
                let mut guard = lock_opt(subs);
                for i in dead {
                    if let Some(slot) = guard.get_mut(i) {
                        slot.tx = None;
                    }
                }
            }
        }
        FanoutPolicy::Shed => {
            // Non-blocking delivery pass under the lock; subscribers
            // that are full on a *marker* are retried with the guard
            // dropped between attempts (the 1 ms naps happen unlocked),
            // until the marker patience runs out.
            let mut delivered: Vec<bool> = Vec::new();
            loop {
                let mut pending = false;
                {
                    let mut guard = lock_opt(subs);
                    delivered.resize(guard.len().max(delivered.len()), false);
                    for (i, slot) in guard.iter_mut().enumerate() {
                        if delivered[i] {
                            continue;
                        }
                        if shed_try_one(slot, &item, has_marker, marker_patience, shed_counter) {
                            delivered[i] = true;
                        } else {
                            pending = true;
                        }
                    }
                }
                if !pending {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// One non-blocking delivery attempt to one subscriber. Returns `true`
/// when the item is settled for this slot (delivered, shed, or the
/// subscriber was declared dead) and `false` when the caller should
/// retry after an unlocked nap.
fn shed_try_one(
    slot: &mut SubSlot,
    item: &Arc<ChunkOrMarker<f32>>,
    has_marker: bool,
    marker_patience: Duration,
    shed_counter: &Option<Counter>,
) -> bool {
    let Some(tx) = &slot.tx else { return true };
    match tx.try_send(Arc::clone(item)) {
        Ok(()) => {
            slot.full_since = None;
            if let Some(g) = &slot.depth {
                g.add(1);
            }
            true
        }
        Err(TrySendError::Disconnected(_)) => {
            slot.tx = None;
            true
        }
        Err(TrySendError::Full(_)) => {
            let since = *slot.full_since.get_or_insert_with(Instant::now);
            if !has_marker {
                // Pure point runs are expendable: shed the whole run
                // immediately rather than stall the band.
                let n = item.point_count() as u64;
                slot.shed += n;
                if let Some(c) = shed_counter {
                    c.add(n);
                }
                return true;
            }
            if since.elapsed() >= marker_patience {
                // A subscriber that cannot even accept framing markers
                // is wedged: unsubscribe it.
                slot.tx = None;
                let n = item.element_count();
                slot.shed += n;
                if let Some(c) = shed_counter {
                    c.add(n);
                }
                return true;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_satsim::goes_like;

    fn req(q: &str, format: OutputFormat) -> ClientRequest {
        ClientRequest { query: q.to_string(), format, sectors: 0 }
    }

    #[test]
    fn shared_ingest_runs_multiple_queries() {
        let scanner = goes_like(32, 16, 5);
        let requests = vec![
            req("restrict_value(goes-sim.b4-ir, 0, 1)", OutputFormat::Stats),
            req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
            req("goes-sim.b3-wv", OutputFormat::PngGray),
        ];
        let (results, stats) = run_continuous(&scanner, 2, &requests).unwrap();
        assert_eq!(results.len(), 3);
        let r0 = results[0].as_ref().unwrap();
        assert_eq!(r0.report.as_ref().unwrap().points_delivered, 2 * 8 * 4);
        let r2 = results[2].as_ref().unwrap();
        assert_eq!(r2.frames.len(), 2);
        // Band 4 was ingested once despite two subscribers.
        let b4 = stats.elements_per_band.iter().find(|(id, _)| *id == 4).unwrap();
        assert!(b4.1 > 0);
        assert_eq!(stats.elements_per_band.len(), 2, "only referenced bands ingest");
        // Clean feed: no recovery actions.
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.shed_elements, 0);
        assert_eq!(stats.watchdog_cancellations, 0);
    }

    #[test]
    fn cross_band_query_over_shared_ingest() {
        let scanner = goes_like(32, 16, 5);
        let requests = vec![req(
            "ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4))",
            OutputFormat::PngNdvi,
        )];
        let (results, _) = run_continuous(&scanner, 1, &requests).unwrap();
        let r = results[0].as_ref().unwrap();
        assert_eq!(r.frames.len(), 1);
        assert!(geostreams_raster::png::decode(&r.frames[0].png).is_ok());
    }

    #[test]
    fn unknown_source_fails_before_spawning() {
        let scanner = goes_like(8, 4, 1);
        let err = run_continuous(&scanner, 1, &[req("nosuch.band", OutputFormat::Stats)]);
        assert!(matches!(err, Err(CoreError::UnknownSource(_))));
    }

    #[test]
    fn query_ids_follow_request_order() {
        let scanner = goes_like(16, 8, 1);
        let requests = vec![
            req("goes-sim.b4-ir", OutputFormat::Stats),
            req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
            req("goes-sim.b5-ir", OutputFormat::Stats),
        ];
        let (results, _) = run_continuous(&scanner, 1, &requests).unwrap();
        let ids: Vec<u32> = results.iter().map(|r| r.as_ref().unwrap().id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn exec_workers_leave_counting_results_identical() {
        // The morsel pool must be invisible in results: same requests,
        // worker counts {0 (inline), 1, 4}, identical per-query points
        // and sector counts. The stacked plan exercises a two-stage
        // suffix (scale → restrict_value); the bare source exercises
        // the empty-suffix delegation.
        let requests = vec![
            req("restrict_value(scale(goes-sim.b4-ir, 2, 0), 0, 500)", OutputFormat::Stats),
            req("goes-sim.b3-wv", OutputFormat::Stats),
        ];
        let mut seen: Vec<Vec<(u64, u64)>> = Vec::new();
        for workers in [0usize, 1, 4] {
            let scanner = goes_like(32, 16, 5);
            let metrics = Arc::new(ServerMetrics::new());
            let config = RuntimeConfig {
                exec_workers: workers,
                metrics: Some(Arc::clone(&metrics)),
                ..RuntimeConfig::default()
            };
            let (results, _) = run_supervised(&scanner, 2, &requests, &config).unwrap();
            let facts: Vec<(u64, u64)> = results
                .iter()
                .map(|r| {
                    let r = r.as_ref().unwrap();
                    (r.points, r.report.as_ref().unwrap().sectors)
                })
                .collect();
            seen.push(facts);
            if workers > 0 {
                // The pool must have executed the stacked query's
                // morsels (worker counters are published as gauges).
                let rendered = metrics.render_prometheus();
                assert!(
                    rendered.contains("geostreams_exec_worker_jobs"),
                    "pool counters missing from /metrics"
                );
            }
        }
        assert_eq!(seen[0], seen[1], "inline vs 1 worker diverged");
        assert_eq!(seen[1], seen[2], "1 vs 4 workers diverged");
    }

    #[test]
    fn injected_death_triggers_supervised_restart() {
        let scanner = goes_like(32, 16, 1);
        let metrics = Arc::new(ServerMetrics::new());
        let config = RuntimeConfig {
            // Kill the feed partway through sector 1 of 3.
            fault_plan: Some(FaultPlan::seeded(7).with_death_after(60)),
            backoff_base: Duration::from_millis(1),
            metrics: Some(Arc::clone(&metrics)),
            ..RuntimeConfig::default()
        };
        let (results, stats) =
            run_supervised(&scanner, 3, &[req("goes-sim.b4-ir", OutputFormat::Stats)], &config)
                .unwrap();
        let r = results[0].as_ref().unwrap();
        assert!(r.report.is_some());
        assert_eq!(stats.restarts, 1, "{stats:?}");
        assert_eq!(metrics.ingest_restarts.get(), 1);
        assert!(stats.faults_per_band.iter().any(|(_, f)| f.died));
        // The feed resumed: later sectors were delivered after the
        // crash (the query still saw data past the cut).
        assert!(r.report.as_ref().unwrap().points_delivered > 0);
    }

    #[test]
    fn watchdog_cancels_hung_query_without_stalling_sibling() {
        let scanner = goes_like(32, 16, 5);
        let metrics = Arc::new(ServerMetrics::new());
        let config = RuntimeConfig {
            watchdog: Some(Duration::from_millis(300)),
            // Query 1 "processes" each element for 10s: hopelessly
            // wedged, must be cancelled, not waited for.
            query_stall: vec![(1, Duration::from_secs(10))],
            marker_patience: Duration::from_millis(50),
            metrics: Some(Arc::clone(&metrics)),
            ..RuntimeConfig::default()
        };
        let requests = vec![
            req("goes-sim.b4-ir", OutputFormat::Stats),
            req("scale(goes-sim.b4-ir, 2, 0)", OutputFormat::Stats),
        ];
        let started = Instant::now();
        let (results, stats) = run_supervised(&scanner, 2, &requests, &config).unwrap();
        // The healthy sibling on the same band is complete and correct.
        let r0 = results[0].as_ref().unwrap();
        assert!(!r0.cancelled);
        assert_eq!(r0.report.as_ref().unwrap().points_delivered, 2 * 8 * 4);
        // The wedged query was cancelled, and nobody waited 10s.
        let r1 = results[1].as_ref().unwrap();
        assert!(r1.cancelled);
        assert_eq!(stats.watchdog_cancellations, 1);
        assert_eq!(metrics.watchdog_cancellations.get(), 1);
        assert!(started.elapsed() < Duration::from_secs(8), "watchdog failed to cut through");
    }

    #[test]
    fn chaotic_feed_yields_partial_frames_with_completeness() {
        let scanner = goes_like(32, 16, 5);
        let metrics = Arc::new(ServerMetrics::new());
        let config = RuntimeConfig {
            fault_plan: Some(
                FaultPlan::seeded(42)
                    .with_dropped_rows(0.1)
                    .with_dropped_points(0.05)
                    .with_dropped_end_markers(0.1)
                    .with_duplicates(0.05),
            ),
            metrics: Some(Arc::clone(&metrics)),
            ..RuntimeConfig::default()
        };
        let (results, _) =
            run_supervised(&scanner, 4, &[req("goes-sim.b4-ir", OutputFormat::Stats)], &config)
                .unwrap();
        let r = results[0].as_ref().unwrap();
        let repair = &r.repair[0];
        assert!(repair.stats.completeness() < 1.0);
        assert!(repair.stats.completeness() > 0.5);
        assert!(!repair.sectors.is_empty());
        for s in &repair.sectors {
            assert!(s.ratio() <= 1.0);
        }
        assert!(metrics.gaps_detected.get() > 0);
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let run = || {
            let scanner = goes_like(32, 16, 5);
            let config = RuntimeConfig {
                fault_plan: Some(
                    FaultPlan::seeded(9)
                        .with_dropped_rows(0.1)
                        .with_dropped_points(0.05)
                        .with_duplicates(0.05)
                        .with_reordering(0.05),
                ),
                // Big enough that timing can never shed.
                channel_cap: 1 << 16,
                ..RuntimeConfig::default()
            };
            let requests = vec![
                req("goes-sim.b4-ir", OutputFormat::Stats),
                req("goes-sim.b1-vis", OutputFormat::PngGray),
            ];
            run_supervised(&scanner, 3, &requests, &config).unwrap()
        };
        let (a, _) = run();
        let (b, _) = run();
        let a0 = a[0].as_ref().unwrap();
        let b0 = b[0].as_ref().unwrap();
        assert_eq!(
            a0.report.as_ref().unwrap().points_delivered,
            b0.report.as_ref().unwrap().points_delivered
        );
        let a1 = a[1].as_ref().unwrap();
        let b1 = b[1].as_ref().unwrap();
        assert_eq!(a1.frames.len(), b1.frames.len());
        for (fa, fb) in a1.frames.iter().zip(&b1.frames) {
            assert_eq!(fa.png, fb.png, "frame bytes must be identical across runs");
        }
        assert_eq!(
            a0.repair.first().map(|r| r.stats.clone()),
            b0.repair.first().map(|r| r.stats.clone())
        );
    }
}
