//! TCP front end for the HTTP-style query protocol.
//!
//! §4: clients "use a Web-based graphical interface … user queries,
//! which are converted by the interface to specialized HTTP requests,
//! are transmitted to the server". This module serves those requests
//! over real sockets: one thread per connection, request line in,
//! PNG (or error) response out. It also serves the operational
//! endpoints `GET /metrics` (Prometheus text exposition) and
//! `GET /healthz`, and records per-connection latency into the
//! server's `geostreams_request_ns` histogram.

use crate::server::Dsms;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a handler waits for request bytes before giving up on the
/// connection. A client that connects and goes silent cannot pin a
/// handler thread past this.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a handler blocks writing response bytes to a client that
/// stops reading (full TCP window) before the connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A running TCP server.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handled: Arc<AtomicU64>,
    errored: Arc<AtomicU64>,
    join: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// requests on a background thread until [`HttpServer::stop`].
    pub fn spawn(server: Arc<Dsms>, addr: &str) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handled = Arc::new(AtomicU64::new(0));
        let errored = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let handled2 = Arc::clone(&handled);
        let errored2 = Arc::clone(&errored);
        let join = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for conn in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let server = Arc::clone(&server);
                        let handled = Arc::clone(&handled2);
                        let errored = Arc::clone(&errored2);
                        // Reap finished handlers so the vec stays small
                        // on long-running servers.
                        conns.retain(|h| !h.is_finished());
                        conns.push(std::thread::spawn(move || {
                            let started = Instant::now();
                            match handle_connection(stream, &server) {
                                Ok(()) => {
                                    handled.fetch_add(1, Ordering::Relaxed);
                                    server.metrics.requests_handled.inc();
                                }
                                Err(_) => {
                                    errored.fetch_add(1, Ordering::Relaxed);
                                    server.metrics.requests_errored.inc();
                                }
                            }
                            server.metrics.request_ns.record(started.elapsed().as_nanos() as u64);
                        }));
                    }
                    Err(_) => break,
                }
            }
            // Deterministic shutdown: every in-flight connection is
            // drained before the acceptor exits.
            for h in conns {
                let _ = h.join();
            }
        });
        Ok(HttpServer { addr: local, stop, handled, errored, join: Some(join) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of successfully handled connections so far.
    pub fn handled(&self) -> u64 {
        self.handled.load(Ordering::Relaxed)
    }

    /// Number of connections that failed mid-request so far.
    pub fn errored(&self) -> u64 {
        self.errored.load(Ordering::Relaxed)
    }

    /// Stops accepting connections, waits for in-flight requests to
    /// drain, and joins the acceptor thread. Deterministic: when this
    /// returns, no server thread is running.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the acceptor with a dummy connection (the stop flag is
        // checked before the connection is handled, so it is never
        // served or counted).
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads the request head (through the blank line) and writes the
/// response.
fn handle_connection(stream: TcpStream, server: &Dsms) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        let done = line == "\r\n" || line == "\n";
        head.push_str(&line);
        if done {
            break;
        }
        // Guard against unbounded headers.
        if head.len() > 16 * 1024 {
            break;
        }
    }
    let response = server.handle_http(&head);
    let mut stream = stream;
    stream.write_all(&response)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_satsim::goes_like;
    use std::io::Read;

    fn request(addr: SocketAddr, target: &str) -> Vec<u8> {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        conn.shutdown(std::net::Shutdown::Write).expect("shutdown write");
        let mut buf = Vec::new();
        conn.read_to_end(&mut buf).expect("read");
        buf
    }

    fn body_of(resp: &[u8]) -> Vec<u8> {
        let start = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        resp[start..].to_vec()
    }

    #[test]
    fn serves_png_over_a_real_socket() {
        let dsms = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 3), 1));
        let http = HttpServer::spawn(dsms, "127.0.0.1:0").expect("bind");
        let addr = http.addr();

        let resp = request(addr, "/query?q=goes-sim.b4-ir&format=png&sectors=1");
        let text = String::from_utf8_lossy(&resp[..32.min(resp.len())]).to_string();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(geostreams_raster::png::decode(&body_of(&resp)).is_ok());

        let bad = request(addr, "/query?q=borked(((");
        assert!(String::from_utf8_lossy(&bad).starts_with("HTTP/1.1 400"));

        // Concurrent clients.
        let mut joins = Vec::new();
        for _ in 0..4 {
            joins.push(std::thread::spawn(move || {
                request(addr, "/query?q=goes-sim.b5-ir&format=png&sectors=1")
            }));
        }
        for j in joins {
            let resp = j.join().expect("client thread");
            assert!(String::from_utf8_lossy(&resp[..16]).starts_with("HTTP/1.1 200"));
        }
        http.stop();
    }

    #[test]
    fn stop_joins_all_connection_threads() {
        let dsms = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 3), 1));
        let http = HttpServer::spawn(Arc::clone(&dsms), "127.0.0.1:0").expect("bind");
        let addr = http.addr();
        for _ in 0..3 {
            let _ = request(addr, "/query?q=goes-sim.b4-ir&format=png&sectors=1");
        }
        // stop() joins the acceptor, which joins every handler — the
        // counters are final as soon as it returns, without sleeping.
        http.stop();
        assert_eq!(dsms.metrics.requests_handled.get(), 3);
    }

    #[test]
    fn healthz_and_metrics_are_served() {
        let dsms = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 3), 1));
        let http = HttpServer::spawn(Arc::clone(&dsms), "127.0.0.1:0").expect("bind");
        let addr = http.addr();

        let health = request(addr, "/healthz");
        assert!(String::from_utf8_lossy(&health).starts_with("HTTP/1.1 200"));
        assert_eq!(body_of(&health), b"ok\n");

        let _ = request(addr, "/query?q=goes-sim.b4-ir&format=png&sectors=1");
        let metrics = request(addr, "/metrics");
        let text = String::from_utf8(body_of(&metrics)).unwrap();
        assert!(text.contains("geostreams_queries_registered_total 1"), "{text}");
        assert!(text.contains("geostreams_frames_delivered_total"));
        assert!(text.contains("geostreams_requests_errored_total 0"));
        http.stop();
    }

    #[test]
    fn failed_connections_are_counted() {
        let dsms = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 3), 1));
        let http = HttpServer::spawn(Arc::clone(&dsms), "127.0.0.1:0").expect("bind");
        let addr = http.addr();
        // Client connects, sends a full request, but closes its read
        // side immediately: the handler's response write fails.
        {
            let mut conn = TcpStream::connect(addr).expect("connect");
            write!(conn, "GET /query?q=goes-sim.b4-ir&format=png&sectors=1 HTTP/1.1\r\n\r\n")
                .expect("send");
            conn.shutdown(std::net::Shutdown::Both).expect("shutdown");
        }
        // A well-behaved request still succeeds afterwards.
        let ok = request(addr, "/healthz");
        assert!(String::from_utf8_lossy(&ok).starts_with("HTTP/1.1 200"));
        http.stop();
        let errored = dsms.metrics.requests_errored.get();
        let handled = dsms.metrics.requests_handled.get();
        assert_eq!(handled + errored, 2, "handled={handled} errored={errored}");
    }
}
