//! TCP front end for the HTTP-style query protocol.
//!
//! §4: clients "use a Web-based graphical interface … user queries,
//! which are converted by the interface to specialized HTTP requests,
//! are transmitted to the server". This module serves those requests
//! over real sockets: one thread per connection, request line in,
//! PNG (or error) response out.

use crate::server::Dsms;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handled: Arc<AtomicU64>,
    join: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// requests on a background thread until [`HttpServer::stop`].
    pub fn spawn(server: Arc<Dsms>, addr: &str) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handled = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let handled2 = Arc::clone(&handled);
        let join = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let server = Arc::clone(&server);
                        let handled = Arc::clone(&handled2);
                        std::thread::spawn(move || {
                            if handle_connection(stream, &server).is_ok() {
                                handled.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(HttpServer { addr: local, stop, handled, join: Some(join) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of successfully handled connections so far.
    pub fn handled(&self) -> u64 {
        self.handled.load(Ordering::Relaxed)
    }

    /// Stops accepting connections and joins the acceptor thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Reads the request head (through the blank line) and writes the
/// response.
fn handle_connection(stream: TcpStream, server: &Dsms) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        let done = line == "\r\n" || line == "\n";
        head.push_str(&line);
        if done {
            break;
        }
        // Guard against unbounded headers.
        if head.len() > 16 * 1024 {
            break;
        }
    }
    let response = server.handle_http(&head);
    let mut stream = stream;
    stream.write_all(&response)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_satsim::goes_like;
    use std::io::Read;

    fn request(addr: SocketAddr, target: &str) -> Vec<u8> {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        conn.shutdown(std::net::Shutdown::Write).expect("shutdown write");
        let mut buf = Vec::new();
        conn.read_to_end(&mut buf).expect("read");
        buf
    }

    #[test]
    fn serves_png_over_a_real_socket() {
        let dsms = Arc::new(Dsms::over_scanner(&goes_like(32, 16, 3), 1));
        let http = HttpServer::spawn(dsms, "127.0.0.1:0").expect("bind");
        let addr = http.addr();

        let resp = request(addr, "/query?q=goes-sim.b4-ir&format=png&sectors=1");
        let text = String::from_utf8_lossy(&resp[..32.min(resp.len())]).to_string();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        let body_start = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert!(geostreams_raster::png::decode(&resp[body_start..]).is_ok());

        let bad = request(addr, "/query?q=borked(((");
        assert!(String::from_utf8_lossy(&bad).starts_with("HTTP/1.1 400"));

        // Concurrent clients.
        let mut joins = Vec::new();
        for _ in 0..4 {
            joins.push(std::thread::spawn(move || {
                request(addr, "/query?q=goes-sim.b5-ir&format=png&sectors=1")
            }));
        }
        for j in joins {
            let resp = j.join().expect("client thread");
            assert!(String::from_utf8_lossy(&resp[..16]).starts_with("HTTP/1.1 200"));
        }
        // The counter increments after the response is flushed; give the
        // handler threads a moment to finish bookkeeping.
        for _ in 0..100 {
            if http.handled() >= 6 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(http.handled() >= 6, "handled {}", http.handled());
        http.stop();
    }
}
