//! Server-wide metrics, built on the `geostreams-core` observability
//! registry.
//!
//! Every metric carries the stable `geostreams_` prefix and is
//! registered once at server construction; the hot paths only touch
//! lock-free handles. `GET /metrics` (see [`crate::net`]) renders the
//! whole registry as Prometheus text exposition v0.0.4.

use geostreams_core::obs::{Counter, HistogramHandle, Registry, TraceLog};
use std::sync::Arc;

/// Metric and trace handles shared across the server's query threads.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Arc<Registry>,
    /// Continuous queries registered since start.
    pub queries_registered: Counter,
    /// Queries rejected at parse/plan time.
    pub queries_rejected: Counter,
    /// PNG frames delivered to clients.
    pub frames_delivered: Counter,
    /// Total PNG bytes delivered.
    pub bytes_delivered: Counter,
    /// Points pulled from source streams.
    pub points_ingested: Counter,
    /// Connections served successfully by the HTTP front end.
    pub requests_handled: Counter,
    /// Connections that failed mid-request (read/write errors).
    pub requests_errored: Counter,
    /// Executions whose observed peak buffering exceeded the static
    /// plan-analysis bound (a cost-model soundness alarm).
    pub plan_buffer_overruns: Counter,
    /// Supervised restarts of dead/stalled ingest threads.
    pub ingest_restarts: Counter,
    /// Gap detections in ingested streams (incomplete frames, missing
    /// rows/sectors).
    pub gaps_detected: Counter,
    /// Frames finalized partial (missing points) instead of blocking.
    pub partial_frames: Counter,
    /// Duplicate frames/points dropped at the repair stage.
    pub duplicates_dropped: Counter,
    /// Out-of-order element observations.
    pub disorder_detected: Counter,
    /// Elements shed by the non-blocking fan-out instead of
    /// head-of-line blocking the band.
    pub fanout_shed: Counter,
    /// Queries cancelled by the per-query watchdog.
    pub watchdog_cancellations: Counter,
    /// Per-query wall time, nanoseconds.
    pub query_wall_ns: HistogramHandle,
    /// Per-connection request latency, nanoseconds.
    pub request_ns: HistogramHandle,
    /// Structured event log (query/sector boundaries, stalls, peaks).
    pub trace: Arc<TraceLog>,
}

impl ServerMetrics {
    /// Creates zeroed metrics with the default trace capacity (4096).
    pub fn new() -> Self {
        Self::with_trace_capacity(4096)
    }

    /// Creates zeroed metrics with an explicit trace-ring capacity.
    pub fn with_trace_capacity(trace_capacity: usize) -> Self {
        let registry = Arc::new(Registry::new());
        let help: &[(&str, &str)] = &[
            ("geostreams_queries_registered_total", "Continuous queries registered."),
            ("geostreams_queries_rejected_total", "Queries rejected at parse/plan time."),
            ("geostreams_frames_delivered_total", "PNG frames delivered to clients."),
            ("geostreams_bytes_delivered_total", "PNG bytes delivered to clients."),
            ("geostreams_points_ingested_total", "Points pulled from source streams."),
            ("geostreams_requests_handled_total", "Connections served successfully."),
            ("geostreams_requests_errored_total", "Connections that failed mid-request."),
            (
                "geostreams_plan_buffer_overrun_total",
                "Query runs whose observed peak buffering exceeded the static bound.",
            ),
            (
                "geostreams_ingest_restarts_total",
                "Supervised restarts of dead/stalled ingest threads.",
            ),
            (
                "geostreams_gaps_detected_total",
                "Gap detections in ingested streams (incomplete frames, missing rows/sectors).",
            ),
            (
                "geostreams_partial_frames_total",
                "Frames finalized partial (missing points) instead of blocking.",
            ),
            (
                "geostreams_duplicates_dropped_total",
                "Duplicate frames and points dropped at the repair stage.",
            ),
            ("geostreams_disorder_total", "Out-of-order element observations."),
            (
                "geostreams_fanout_shed_total",
                "Elements shed by the non-blocking fan-out instead of blocking the band.",
            ),
            (
                "geostreams_watchdog_cancellations_total",
                "Queries cancelled by the per-query watchdog.",
            ),
            ("geostreams_query_wall_ns", "Per-query wall time in nanoseconds."),
            ("geostreams_request_ns", "Per-connection request latency in nanoseconds."),
        ];
        for (name, text) in help {
            registry.set_help(name, text);
        }
        ServerMetrics {
            queries_registered: registry.counter("geostreams_queries_registered_total", &[]),
            queries_rejected: registry.counter("geostreams_queries_rejected_total", &[]),
            frames_delivered: registry.counter("geostreams_frames_delivered_total", &[]),
            bytes_delivered: registry.counter("geostreams_bytes_delivered_total", &[]),
            points_ingested: registry.counter("geostreams_points_ingested_total", &[]),
            requests_handled: registry.counter("geostreams_requests_handled_total", &[]),
            requests_errored: registry.counter("geostreams_requests_errored_total", &[]),
            plan_buffer_overruns: registry.counter("geostreams_plan_buffer_overrun_total", &[]),
            ingest_restarts: registry.counter("geostreams_ingest_restarts_total", &[]),
            gaps_detected: registry.counter("geostreams_gaps_detected_total", &[]),
            partial_frames: registry.counter("geostreams_partial_frames_total", &[]),
            duplicates_dropped: registry.counter("geostreams_duplicates_dropped_total", &[]),
            disorder_detected: registry.counter("geostreams_disorder_total", &[]),
            fanout_shed: registry.counter("geostreams_fanout_shed_total", &[]),
            watchdog_cancellations: registry
                .counter("geostreams_watchdog_cancellations_total", &[]),
            query_wall_ns: registry.histogram("geostreams_query_wall_ns", &[]),
            request_ns: registry.histogram("geostreams_request_ns", &[]),
            trace: Arc::new(TraceLog::new(trace_capacity)),
            registry,
        }
    }

    /// The underlying registry (for registering further metrics).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Renders every metric as Prometheus text exposition v0.0.4.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "queries={} rejected={} frames={} bytes={} points_in={} requests={} errored={}",
            self.queries_registered.get(),
            self.queries_rejected.get(),
            self.frames_delivered.get(),
            self.bytes_delivered.get(),
            self.points_ingested.get(),
            self.requests_handled.get(),
            self.requests_errored.get(),
        )
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new();
        m.frames_delivered.add(3);
        m.frames_delivered.add(2);
        assert_eq!(m.frames_delivered.get(), 5);
        assert!(m.summary().contains("frames=5"));
        assert!(m.summary().contains("errored=0"));
    }

    #[test]
    fn prometheus_rendering_includes_all_series() {
        let m = ServerMetrics::new();
        m.queries_registered.inc();
        m.query_wall_ns.record(1_500_000);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE geostreams_queries_registered_total counter"));
        assert!(text.contains("geostreams_queries_registered_total 1"));
        assert!(text.contains("# TYPE geostreams_query_wall_ns histogram"));
        assert!(text.contains("geostreams_query_wall_ns_count 1"));
        assert!(text.contains("geostreams_requests_errored_total 0"));
    }
}
