//! Server-wide metrics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters shared across the server's query threads.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Continuous queries registered since start.
    pub queries_registered: AtomicU64,
    /// Queries rejected at parse/plan time.
    pub queries_rejected: AtomicU64,
    /// PNG frames delivered to clients.
    pub frames_delivered: AtomicU64,
    /// Total PNG bytes delivered.
    pub bytes_delivered: AtomicU64,
    /// Points pulled from source streams.
    pub points_ingested: AtomicU64,
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: adds to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Convenience: reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "queries={} rejected={} frames={} bytes={} points_in={}",
            Self::get(&self.queries_registered),
            Self::get(&self.queries_rejected),
            Self::get(&self.frames_delivered),
            Self::get(&self.bytes_delivered),
            Self::get(&self.points_ingested),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new();
        ServerMetrics::add(&m.frames_delivered, 3);
        ServerMetrics::add(&m.frames_delivered, 2);
        assert_eq!(ServerMetrics::get(&m.frames_delivered), 5);
        assert!(m.summary().contains("frames=5"));
    }
}
