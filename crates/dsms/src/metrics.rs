//! Server-wide metrics, built on the `geostreams-core` observability
//! registry.
//!
//! Every metric carries the stable `geostreams_` prefix and is
//! registered once at server construction; the hot paths only touch
//! lock-free handles. `GET /metrics` (see [`crate::net`]) renders the
//! whole registry as Prometheus text exposition v0.0.4.

use geostreams_core::model::FrameInfo;
use geostreams_core::obs::{
    now_ns, Counter, FlightRecorder, Gauge, HistogramHandle, Registry, TraceLog,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Live status of one registered query — the payload of `GET /queries`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryStatus {
    /// Query id.
    pub id: u32,
    /// Query text as registered.
    pub query: String,
    /// Lifecycle state: `registered`, `running`, `done`, `cancelled`,
    /// `failed`.
    pub state: String,
    /// Trace id of the query's flight recorder.
    pub trace_id: u64,
    /// Points delivered so far.
    pub points_delivered: u64,
    /// Frames delivered so far.
    pub frames_delivered: u64,
    /// Event-time watermark: latest delivered frame timestamp
    /// (sector-id semantics), or -1 before the first frame.
    pub watermark: i64,
    /// Tick of the last frame delivery ([`now_ns`] clock; 0 = never).
    pub last_delivery_ns: u64,
    /// Time since the last frame delivery (0 until the first frame,
    /// frozen once the query leaves the `running` state).
    pub staleness_ns: u64,
    /// Median synthesis→delivery lag, nanoseconds.
    pub e2e_lag_p50_ns: u64,
    /// 95th-percentile synthesis→delivery lag, nanoseconds.
    pub e2e_lag_p95_ns: u64,
    /// Repair-stage completeness ratio (1.0 until a run reports one).
    pub completeness: f64,
    /// Items currently queued in the query's fan-out channels.
    pub queue_depth: u64,
}

/// Mutable per-query bookkeeping behind the directory mutex.
#[derive(Debug)]
struct QueryState {
    query: String,
    state: String,
    trace_id: u64,
    points: u64,
    frames: u64,
    watermark: Option<i64>,
    last_delivery_ns: u64,
    completeness: f64,
    lag: HistogramHandle,
    watermark_gauge: Gauge,
    staleness_gauge: Gauge,
    depth_gauge: Gauge,
}

/// Metric and trace handles shared across the server's query threads.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Arc<Registry>,
    /// Continuous queries registered since start.
    pub queries_registered: Counter,
    /// Queries rejected at parse/plan time.
    pub queries_rejected: Counter,
    /// PNG frames delivered to clients.
    pub frames_delivered: Counter,
    /// Total PNG bytes delivered.
    pub bytes_delivered: Counter,
    /// Points pulled from source streams.
    pub points_ingested: Counter,
    /// Connections served successfully by the HTTP front end.
    pub requests_handled: Counter,
    /// Connections that failed mid-request (read/write errors).
    pub requests_errored: Counter,
    /// Executions whose observed peak buffering exceeded the static
    /// plan-analysis bound (a cost-model soundness alarm).
    pub plan_buffer_overruns: Counter,
    /// Supervised restarts of dead/stalled ingest threads.
    pub ingest_restarts: Counter,
    /// Gap detections in ingested streams (incomplete frames, missing
    /// rows/sectors).
    pub gaps_detected: Counter,
    /// Frames finalized partial (missing points) instead of blocking.
    pub partial_frames: Counter,
    /// Duplicate frames/points dropped at the repair stage.
    pub duplicates_dropped: Counter,
    /// Out-of-order element observations.
    pub disorder_detected: Counter,
    /// Elements shed by the non-blocking fan-out instead of
    /// head-of-line blocking the band.
    pub fanout_shed: Counter,
    /// Queries cancelled by the per-query watchdog.
    pub watchdog_cancellations: Counter,
    /// Stream-protocol violations observed by the debug-build runtime
    /// validator (marker bracketing breaks, chunks crossing frame or
    /// sector edges). Always 0 in release builds, where the validator
    /// compiles out.
    pub protocol_violations: Counter,
    /// Trace events and spans evicted from bounded rings (the trace
    /// log plus every flight recorder), synced at scrape time.
    pub trace_dropped: Counter,
    /// Cumulative supervised-restart backoff, milliseconds.
    pub ingest_backoff_ms: Counter,
    /// Distinct shared plans evaluated by the sharing runtime (DAG
    /// nodes; 1 for N identical queries).
    pub share_distinct_plans: Gauge,
    /// Chunked items multicast to shared-plan subscribers.
    pub share_chunks_multicast: Counter,
    /// Chunk payload deep copies on the subscriber side: the
    /// copy-on-write fallback when a fanned-out `Arc` chunk is still
    /// referenced elsewhere. 0 means fan-out was zero-copy throughout.
    pub share_payload_copies: Counter,
    /// Plan analyses served from the canonical-key cache instead of
    /// re-analyzed.
    pub plan_cache_hits: Counter,
    /// Per-query wall time, nanoseconds.
    pub query_wall_ns: HistogramHandle,
    /// Per-connection request latency, nanoseconds.
    pub request_ns: HistogramHandle,
    /// End-to-end synthesis→delivery lag, nanoseconds (all queries;
    /// per-query series carry a `query` label).
    pub e2e_lag_ns: HistogramHandle,
    /// Structured event log (query/sector boundaries, stalls, peaks).
    pub trace: Arc<TraceLog>,
    /// Per-query flight recorders, keyed by query id.
    recorders: Mutex<BTreeMap<u32, Arc<FlightRecorder>>>,
    /// Live query directory, keyed by query id.
    queries: Mutex<BTreeMap<u32, QueryState>>,
}

impl ServerMetrics {
    /// Creates zeroed metrics with the default trace capacity (4096).
    pub fn new() -> Self {
        Self::with_trace_capacity(4096)
    }

    /// Creates zeroed metrics with an explicit trace-ring capacity.
    pub fn with_trace_capacity(trace_capacity: usize) -> Self {
        let registry = Arc::new(Registry::new());
        let help: &[(&str, &str)] = &[
            ("geostreams_queries_registered_total", "Continuous queries registered."),
            ("geostreams_queries_rejected_total", "Queries rejected at parse/plan time."),
            ("geostreams_frames_delivered_total", "PNG frames delivered to clients."),
            ("geostreams_bytes_delivered_total", "PNG bytes delivered to clients."),
            ("geostreams_points_ingested_total", "Points pulled from source streams."),
            ("geostreams_requests_handled_total", "Connections served successfully."),
            ("geostreams_requests_errored_total", "Connections that failed mid-request."),
            (
                "geostreams_plan_buffer_overrun_total",
                "Query runs whose observed peak buffering exceeded the static bound.",
            ),
            (
                "geostreams_ingest_restarts_total",
                "Supervised restarts of dead/stalled ingest threads.",
            ),
            (
                "geostreams_gaps_detected_total",
                "Gap detections in ingested streams (incomplete frames, missing rows/sectors).",
            ),
            (
                "geostreams_partial_frames_total",
                "Frames finalized partial (missing points) instead of blocking.",
            ),
            (
                "geostreams_duplicates_dropped_total",
                "Duplicate frames and points dropped at the repair stage.",
            ),
            ("geostreams_disorder_total", "Out-of-order element observations."),
            (
                "geostreams_fanout_shed_total",
                "Elements shed by the non-blocking fan-out instead of blocking the band.",
            ),
            (
                "geostreams_watchdog_cancellations_total",
                "Queries cancelled by the per-query watchdog.",
            ),
            (
                "geostreams_protocol_violation_total",
                "Stream-protocol violations observed by the debug-build runtime validator.",
            ),
            (
                "geostreams_trace_dropped_total",
                "Trace events and spans evicted from bounded rings.",
            ),
            (
                "geostreams_ingest_backoff_ms_total",
                "Cumulative supervised-restart backoff in milliseconds.",
            ),
            ("geostreams_query_wall_ns", "Per-query wall time in nanoseconds."),
            ("geostreams_request_ns", "Per-connection request latency in nanoseconds."),
            ("geostreams_e2e_lag_ns", "End-to-end synthesis-to-delivery lag in nanoseconds."),
            (
                "geostreams_watermark",
                "Per-query event-time watermark (latest delivered frame timestamp).",
            ),
            ("geostreams_staleness_ns", "Per-query nanoseconds since the last frame delivery."),
            (
                "geostreams_band_staleness_ns",
                "Per-band nanoseconds since ingest last made progress.",
            ),
            ("geostreams_fanout_depth", "Fan-out channel depth (queued items) per query source."),
            (
                "geostreams_share_distinct_plans",
                "Distinct shared plans evaluated by the sharing runtime.",
            ),
            ("geostreams_share_subscribers", "Subscribers attached per shared plan."),
            (
                "geostreams_share_chunks_multicast_total",
                "Chunked items multicast to shared-plan subscribers.",
            ),
            ("geostreams_share_shed_total", "Elements shed per tenant by the subscription tree."),
            (
                "geostreams_share_payload_copies_total",
                "Chunk payload deep copies made on the subscriber side (copy-on-write fallback).",
            ),
            (
                "geostreams_plan_cache_hits_total",
                "Plan analyses served from the canonical-key cache.",
            ),
        ];
        for (name, text) in help {
            registry.set_help(name, text);
        }
        ServerMetrics {
            queries_registered: registry.counter("geostreams_queries_registered_total", &[]),
            queries_rejected: registry.counter("geostreams_queries_rejected_total", &[]),
            frames_delivered: registry.counter("geostreams_frames_delivered_total", &[]),
            bytes_delivered: registry.counter("geostreams_bytes_delivered_total", &[]),
            points_ingested: registry.counter("geostreams_points_ingested_total", &[]),
            requests_handled: registry.counter("geostreams_requests_handled_total", &[]),
            requests_errored: registry.counter("geostreams_requests_errored_total", &[]),
            plan_buffer_overruns: registry.counter("geostreams_plan_buffer_overrun_total", &[]),
            ingest_restarts: registry.counter("geostreams_ingest_restarts_total", &[]),
            gaps_detected: registry.counter("geostreams_gaps_detected_total", &[]),
            partial_frames: registry.counter("geostreams_partial_frames_total", &[]),
            duplicates_dropped: registry.counter("geostreams_duplicates_dropped_total", &[]),
            disorder_detected: registry.counter("geostreams_disorder_total", &[]),
            fanout_shed: registry.counter("geostreams_fanout_shed_total", &[]),
            watchdog_cancellations: registry
                .counter("geostreams_watchdog_cancellations_total", &[]),
            protocol_violations: registry.counter("geostreams_protocol_violation_total", &[]),
            trace_dropped: registry.counter("geostreams_trace_dropped_total", &[]),
            ingest_backoff_ms: registry.counter("geostreams_ingest_backoff_ms_total", &[]),
            share_distinct_plans: registry.gauge("geostreams_share_distinct_plans", &[]),
            share_chunks_multicast: registry
                .counter("geostreams_share_chunks_multicast_total", &[]),
            share_payload_copies: registry.counter("geostreams_share_payload_copies_total", &[]),
            plan_cache_hits: registry.counter("geostreams_plan_cache_hits_total", &[]),
            query_wall_ns: registry.histogram("geostreams_query_wall_ns", &[]),
            request_ns: registry.histogram("geostreams_request_ns", &[]),
            e2e_lag_ns: registry.histogram("geostreams_e2e_lag_ns", &[]),
            trace: Arc::new(TraceLog::new(trace_capacity)),
            recorders: Mutex::new(BTreeMap::new()),
            queries: Mutex::new(BTreeMap::new()),
            registry,
        }
    }

    /// The underlying registry (for registering further metrics).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The flight recorder for `query_id`, minting one on first use.
    pub fn recorder(&self, query_id: u32) -> Arc<FlightRecorder> {
        let mut recs = self.recorders.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(
            recs.entry(query_id).or_insert_with(|| Arc::new(FlightRecorder::for_query(query_id))),
        )
    }

    /// The flight recorder for `query_id`, if one was minted.
    pub fn try_recorder(&self, query_id: u32) -> Option<Arc<FlightRecorder>> {
        let recs = self.recorders.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        recs.get(&query_id).map(Arc::clone)
    }

    /// Registers (or re-registers) a query in the live directory and
    /// mints its flight recorder. Returns the recorder.
    pub fn register_query(&self, query_id: u32, query: &str) -> Arc<FlightRecorder> {
        let rec = self.recorder(query_id);
        let label = query_id.to_string();
        let state = QueryState {
            query: query.to_string(),
            state: "registered".to_string(),
            trace_id: rec.trace_id(),
            points: 0,
            frames: 0,
            watermark: None,
            last_delivery_ns: 0,
            completeness: 1.0,
            lag: self.registry.histogram("geostreams_e2e_lag_ns", &[("query", &label)]),
            watermark_gauge: self.registry.gauge("geostreams_watermark", &[("query", &label)]),
            staleness_gauge: self.registry.gauge("geostreams_staleness_ns", &[("query", &label)]),
            depth_gauge: self.registry.gauge("geostreams_fanout_depth", &[("query", &label)]),
        };
        let mut dir = self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        dir.insert(query_id, state);
        rec
    }

    /// Moves a query to a new lifecycle state.
    pub fn set_query_state(&self, query_id: u32, state: &str) {
        let mut dir = self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(q) = dir.get_mut(&query_id) {
            q.state = state.to_string();
        }
    }

    /// The per-plan subscriber gauge (`geostreams_share_subscribers`,
    /// labeled by the plan's canonical key).
    pub fn share_subscribers_gauge(&self, plan_key: &str) -> Gauge {
        self.registry.gauge("geostreams_share_subscribers", &[("plan", plan_key)])
    }

    /// The per-tenant shed counter of the subscription tree
    /// (`geostreams_share_shed_total`, labeled by tenant).
    pub fn share_shed_counter(&self, tenant: &str) -> Counter {
        self.registry.counter("geostreams_share_shed_total", &[("tenant", tenant)])
    }

    /// Publishes the morsel-execution pool's lifetime counters
    /// (`geostreams_exec_worker_{jobs,steals,busy_ns}`, labeled by
    /// worker index). Gauges are set-style: a runtime records once
    /// when it settles, so repeated runs over one registry show the
    /// latest run's pool.
    pub fn record_exec_workers(&self, stats: &[geostreams_core::exec::WorkerStatsSnapshot]) {
        for s in stats {
            let w = s.worker.to_string();
            self.registry.gauge("geostreams_exec_worker_jobs", &[("worker", &w)]).set(s.jobs);
            self.registry.gauge("geostreams_exec_worker_steals", &[("worker", &w)]).set(s.steals);
            self.registry.gauge("geostreams_exec_worker_busy_ns", &[("worker", &w)]).set(s.busy_ns);
        }
    }

    /// The fan-out depth gauge of a registered query (shared with the
    /// pump and pull sides of its channels).
    pub fn query_depth_gauge(&self, query_id: u32) -> Option<Gauge> {
        let dir = self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        dir.get(&query_id).map(|q| q.depth_gauge.clone())
    }

    /// Delivery-side freshness accounting: called once per delivered
    /// `FrameStart`. Records synthesis→delivery lag (global and
    /// per-query), advances the event-time watermark, and stamps the
    /// last-delivery tick consulted by the staleness gauge.
    pub fn note_frame(&self, query_id: u32, fi: &FrameInfo) {
        let now = now_ns();
        let lag = now.saturating_sub(fi.synth_ns);
        if fi.synth_ns > 0 {
            self.e2e_lag_ns.record(lag);
        }
        let mut dir = self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(q) = dir.get_mut(&query_id) {
            if fi.synth_ns > 0 {
                q.lag.record(lag);
            }
            q.frames += 1;
            q.last_delivery_ns = now;
            let ts = fi.timestamp.value();
            if q.watermark.is_none_or(|w| ts > w) {
                q.watermark = Some(ts);
                q.watermark_gauge.set(ts.max(0) as u64);
            }
            q.staleness_gauge.set(0);
        }
    }

    /// Final accounting when a query run ends.
    pub fn finish_query(&self, query_id: u32, state: &str, points: u64, completeness: f64) {
        let mut dir = self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(q) = dir.get_mut(&query_id) {
            q.state = state.to_string();
            q.points = points;
            q.completeness = completeness;
        }
    }

    /// Snapshot of the live query directory, ordered by id.
    pub fn query_statuses(&self) -> Vec<QueryStatus> {
        self.refresh();
        let dir = self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        dir.iter()
            .map(|(&id, q)| QueryStatus {
                id,
                query: q.query.clone(),
                state: q.state.clone(),
                trace_id: q.trace_id,
                points_delivered: q.points,
                frames_delivered: q.frames,
                watermark: q.watermark.unwrap_or(-1),
                last_delivery_ns: q.last_delivery_ns,
                staleness_ns: q.staleness_gauge.get(),
                e2e_lag_p50_ns: q.lag.percentile(0.50),
                e2e_lag_p95_ns: q.lag.percentile(0.95),
                completeness: q.completeness,
                queue_depth: q.depth_gauge.get(),
            })
            .collect()
    }

    /// The `GET /queries` payload.
    pub fn queries_json(&self) -> String {
        serde_json::to_string(&self.query_statuses()).unwrap_or_else(|_| "[]".to_string())
    }

    /// The `GET /trace/<id>` payload, if the query has a recorder.
    pub fn recorder_json(&self, query_id: u32) -> Option<String> {
        let rec = self.try_recorder(query_id)?;
        serde_json::to_string(&rec.to_snapshot()).ok()
    }

    /// Scrape-time sync of derived series: the `trace_dropped` counter
    /// (the registry `Counter` is monotone, so the delta against the
    /// rings' own drop counts is added) and per-query staleness gauges.
    pub fn refresh(&self) {
        let mut total = self.trace.dropped();
        {
            let recs = self.recorders.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            total += recs.values().map(|r| r.dropped()).sum::<u64>();
        }
        self.trace_dropped.add(total.saturating_sub(self.trace_dropped.get()));
        let now = now_ns();
        let dir = self.queries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for q in dir.values() {
            if q.state == "running" && q.last_delivery_ns > 0 {
                q.staleness_gauge.set(now.saturating_sub(q.last_delivery_ns));
            }
        }
    }

    /// Renders every metric as Prometheus text exposition v0.0.4.
    pub fn render_prometheus(&self) -> String {
        self.refresh();
        self.registry.render_prometheus()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "queries={} rejected={} frames={} bytes={} points_in={} requests={} errored={}",
            self.queries_registered.get(),
            self.queries_rejected.get(),
            self.frames_delivered.get(),
            self.bytes_delivered.get(),
            self.points_ingested.get(),
            self.requests_handled.get(),
            self.requests_errored.get(),
        )
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new();
        m.frames_delivered.add(3);
        m.frames_delivered.add(2);
        assert_eq!(m.frames_delivered.get(), 5);
        assert!(m.summary().contains("frames=5"));
        assert!(m.summary().contains("errored=0"));
    }

    #[test]
    fn prometheus_rendering_includes_all_series() {
        let m = ServerMetrics::new();
        m.queries_registered.inc();
        m.query_wall_ns.record(1_500_000);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE geostreams_queries_registered_total counter"));
        assert!(text.contains("geostreams_queries_registered_total 1"));
        assert!(text.contains("# TYPE geostreams_query_wall_ns histogram"));
        assert!(text.contains("geostreams_query_wall_ns_count 1"));
        assert!(text.contains("geostreams_requests_errored_total 0"));
    }
}
