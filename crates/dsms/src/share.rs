//! Shared-plan multicast: multi-query optimization and the
//! subscription tree (DESIGN.md §16).
//!
//! The DSMS registers continuous queries once and evaluates them
//! forever (§3), so N identical dashboards must not cost N pipelines.
//! This module turns the per-query engine into an O(distinct plans)
//! serving layer:
//!
//! * [`plan_sharing`] groups admitted plans by their canonical key
//!   (see [`geostreams_core::query::canon`]) and detects common
//!   subexpressions *across* plans, emitting a shared-subplan DAG: one
//!   [`ShareNode`] per distinct plan or shared cut, with synthetic
//!   `@share:<key>` sources wiring consumers to producers;
//! * [`SubscriptionTree`] multicasts one evaluation's chunked output
//!   to every subscriber as [`Arc`]-shared payloads — never cloned per
//!   subscriber — with two delivery tiers: *interior* edges (node →
//!   node) are lossless and blocking, *query* edges (node → client)
//!   follow the runtime's fan-out policy, shedding per tenant instead
//!   of head-of-line-blocking siblings;
//! * [`ShareRegistry`] is the server-side bookkeeping: the
//!   canonical-key plan cache (one analysis and one certificate
//!   validation per distinct plan), per-tenant admission quotas
//!   extending the memory-budget admission control, and the `/share`
//!   topology.
//!
//! The load-bearing invariant: **sharing never changes per-subscriber
//! results**. It holds because canonicalization is bit-exact and every
//! subscriber of a node receives the identical chunk sequence the
//! unshared pipeline would have produced.

use crate::continuous::FanoutPolicy;
use geostreams_core::obs::{Counter, Gauge};
use geostreams_core::query::{canonical_key, canonicalize, key_hex, Expr, PlanReport};
use geostreams_core::{model::ChunkOrMarker, CoreError, Result};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Prefix of synthetic catalog sources that reference another share
/// node's output instead of an instrument band.
pub const SHARE_SOURCE_PREFIX: &str = "@share:";

/// The synthetic source name of a shared cut.
pub fn share_source_name(key: u64) -> String {
    format!("{SHARE_SOURCE_PREFIX}{}", key_hex(key))
}

/// The `@share:*` sources an expression references, in first-use order.
pub fn share_refs(expr: &Expr) -> Vec<String> {
    expr.source_names().into_iter().filter(|n| n.starts_with(SHARE_SOURCE_PREFIX)).collect()
}

/// The instrument-band sources an expression references (everything
/// that is not a `@share:*` reference), in first-use order.
pub fn band_refs(expr: &Expr) -> Vec<String> {
    expr.source_names().into_iter().filter(|n| !n.starts_with(SHARE_SOURCE_PREFIX)).collect()
}

/// Poison-tolerant lock (the tree stays usable after a panic).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Shared-subplan DAG
// ---------------------------------------------------------------------------

/// One evaluation node of the shared-subplan DAG: a canonical
/// (sub)plan evaluated exactly once per chunk, multicast to member
/// queries and to downstream nodes that reference it via `@share:*`
/// sources.
#[derive(Debug, Clone)]
pub struct ShareNode {
    /// Canonical key of the (sub)plan this node evaluates.
    pub key: u64,
    /// The expression to execute. Shared proper subexpressions are
    /// rewritten into `@share:<key>` sources, so the node consumes
    /// upstream nodes instead of recomputing their work.
    pub expr: Expr,
    /// Request indices of queries whose whole plan is this node.
    pub members: Vec<usize>,
}

/// The sharing decision for a batch of admitted plans.
#[derive(Debug, Clone, Default)]
pub struct SharePlan {
    /// Evaluation nodes; producers always precede their consumers.
    pub nodes: Vec<ShareNode>,
    /// Request indices that gain nothing from sharing (singleton plans
    /// with no shared cuts) and should run on the legacy per-query
    /// path unchanged.
    pub legacy: Vec<usize>,
}

impl SharePlan {
    /// Number of distinct evaluations the sharing runtime performs.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Rebuilds an expression from transformed children (structural
/// identity for `Source`). Mirrors the optimizer's helper.
fn map_children(e: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    match e {
        Expr::Source(_) => e,
        Expr::RestrictSpace { input, region, crs } => {
            Expr::RestrictSpace { input: Box::new(f(*input)), region, crs }
        }
        Expr::RestrictTime { input, times } => {
            Expr::RestrictTime { input: Box::new(f(*input)), times }
        }
        Expr::RestrictValue { input, ranges } => {
            Expr::RestrictValue { input: Box::new(f(*input)), ranges }
        }
        Expr::MapValue { input, func } => Expr::MapValue { input: Box::new(f(*input)), func },
        Expr::Stretch { input, mode, scope } => {
            Expr::Stretch { input: Box::new(f(*input)), mode, scope }
        }
        Expr::Focal { input, func, k } => Expr::Focal { input: Box::new(f(*input)), func, k },
        Expr::Orient { input, orientation } => {
            Expr::Orient { input: Box::new(f(*input)), orientation }
        }
        Expr::Delay { input, d } => Expr::Delay { input: Box::new(f(*input)), d },
        Expr::Shed { input, policy, stride } => {
            Expr::Shed { input: Box::new(f(*input)), policy, stride }
        }
        Expr::Magnify { input, k } => Expr::Magnify { input: Box::new(f(*input)), k },
        Expr::Downsample { input, k } => Expr::Downsample { input: Box::new(f(*input)), k },
        Expr::Reproject { input, to, kernel } => {
            Expr::Reproject { input: Box::new(f(*input)), to, kernel }
        }
        Expr::Compose { left, right, op } => {
            Expr::Compose { left: Box::new(f(*left)), right: Box::new(f(*right)), op }
        }
        Expr::Ndvi { nir, vis } => Expr::Ndvi { nir: Box::new(f(*nir)), vis: Box::new(f(*vis)) },
        Expr::AggTime { input, func, window } => {
            Expr::AggTime { input: Box::new(f(*input)), func, window }
        }
        Expr::AggSpace { input, func, region } => {
            Expr::AggSpace { input: Box::new(f(*input)), func, region }
        }
    }
}

/// Builds cut nodes on demand while rewriting plans top-down: the
/// outermost shared subexpression wins (maximal cuts), and a cut's own
/// body is rewritten recursively so cuts can consume other cuts.
struct DagBuilder {
    shared: HashSet<u64>,
    nodes: Vec<ShareNode>,
    index: HashMap<u64, usize>,
}

impl DagBuilder {
    /// Rewrites the *children* of `e`, leaving `e` itself in place
    /// (used at node roots, which must not collapse into themselves).
    fn rewrite_below(&mut self, e: &Expr) -> Expr {
        map_children(e.clone(), &mut |child| self.rewrite_at(&child))
    }

    /// Rewrites `e`: replaced by a `@share:*` reference when its key is
    /// shared (ensuring the producing node exists), recursed otherwise.
    fn rewrite_at(&mut self, e: &Expr) -> Expr {
        if !matches!(e, Expr::Source(_)) {
            let k = canonical_key(e);
            if self.shared.contains(&k) {
                self.ensure(k, e);
                return Expr::Source(share_source_name(k));
            }
        }
        self.rewrite_below(e)
    }

    /// Creates the node evaluating `e` under key `k` if it does not
    /// exist yet. The placeholder reserves the index first so the
    /// recursive child rewrite can reference nodes deterministically.
    fn ensure(&mut self, k: u64, e: &Expr) {
        if self.index.contains_key(&k) {
            return;
        }
        let idx = self.nodes.len();
        self.index.insert(k, idx);
        self.nodes.push(ShareNode { key: k, expr: e.clone(), members: Vec::new() });
        let rewritten = self.rewrite_below(e);
        self.nodes[idx].expr = rewritten;
    }
}

/// Groups plans by canonical key and detects common subexpressions
/// across them, returning the shared-subplan DAG.
///
/// A subexpression becomes a shared cut when it (a) contains at least
/// one operator (bare band sources are already shared by the ingest
/// fan-out) and (b) occurs in at least two *distinct* plans. Queries
/// whose plan is a singleton with no shared cut go to
/// [`SharePlan::legacy`]: the sharing runtime must never make an
/// unshared query slower or observably different.
pub fn plan_sharing(roots: &[(usize, Expr)]) -> SharePlan {
    // Group by canonical key, preserving first-appearance order.
    let mut order: Vec<u64> = Vec::new();
    let mut by_key: HashMap<u64, (Expr, Vec<usize>)> = HashMap::new();
    for (qid, expr) in roots {
        let canonical = canonicalize(expr);
        let k = canonical_key(&canonical);
        match by_key.entry(k) {
            std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().1.push(*qid),
            std::collections::hash_map::Entry::Vacant(v) => {
                order.push(k);
                v.insert((canonical, vec![*qid]));
            }
        }
    }
    // Census: in how many distinct plans does each operator
    // subexpression occur? (Deduplicated per plan, so repetition
    // inside one plan does not create a cut.)
    let mut occurs: HashMap<u64, u32> = HashMap::new();
    for k in &order {
        let (expr, _) = &by_key[k];
        let mut seen = HashSet::new();
        expr.visit(&mut |e| {
            if matches!(e, Expr::Source(_)) {
                return;
            }
            let ek = canonical_key(e);
            if seen.insert(ek) {
                *occurs.entry(ek).or_insert(0) += 1;
            }
        });
    }
    let shared: HashSet<u64> =
        occurs.into_iter().filter(|(_, n)| *n >= 2).map(|(k, _)| k).collect();
    let mut b = DagBuilder { shared, nodes: Vec::new(), index: HashMap::new() };
    let mut legacy = Vec::new();
    for k in &order {
        let (canonical, members) = &by_key[k];
        if b.shared.contains(k) {
            // The whole plan is itself a shared cut (a prefix of some
            // other plan): its queries subscribe to the cut node
            // directly, with no pass-through evaluator in between.
            b.ensure(*k, canonical);
            let idx = b.index[k];
            b.nodes[idx].members.extend(members.iter().copied());
            continue;
        }
        let rewritten = b.rewrite_below(canonical);
        let uses_cuts = rewritten.source_names().iter().any(|n| n.starts_with(SHARE_SOURCE_PREFIX));
        if members.len() == 1 && !uses_cuts {
            legacy.push(members[0]);
            continue;
        }
        b.nodes.push(ShareNode { key: *k, expr: rewritten, members: members.clone() });
    }
    SharePlan { nodes: b.nodes, legacy }
}

// ---------------------------------------------------------------------------
// Subscription tree
// ---------------------------------------------------------------------------

/// The payload unit of all shared fan-out: one chunked item behind an
/// [`Arc`], so multicasting to N subscribers clones a pointer, never
/// the points.
pub type SharedItem = Arc<ChunkOrMarker<f32>>;

/// One subscriber of a [`SubscriptionTree`].
struct TreeSub {
    tx: Option<SyncSender<SharedItem>>,
    /// `None` for interior (node → node) edges, which are lossless;
    /// `Some(tenant)` for query edges, which follow the fan-out policy
    /// and account shed per tenant.
    tenant: Option<String>,
    shed: u64,
    full_since: Option<Instant>,
    depth: Option<Gauge>,
    shed_counter: Option<Counter>,
}

/// Multicasts one node's output to its subscribers (DESIGN.md §16).
///
/// Two delivery tiers share one tree: interior edges feed downstream
/// DAG nodes and are always blocking (losing data *inside* the DAG
/// would change subscriber results), while query edges follow the
/// runtime's [`FanoutPolicy`] — under [`FanoutPolicy::Shed`] a slow
/// subscriber loses point runs (counted against its tenant) and a
/// subscriber that cannot accept framing markers within the patience
/// window is declared dead, exactly like the band fan-out.
#[derive(Default)]
pub struct SubscriptionTree {
    subs: Mutex<Vec<TreeSub>>,
    chunks_multicast: AtomicU64,
    multicast_counter: Option<Counter>,
}

impl SubscriptionTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the server-wide multicast counter
    /// (`geostreams_share_chunks_multicast_total`).
    pub fn with_counter(mut self, counter: Option<Counter>) -> Self {
        self.multicast_counter = counter;
        self
    }

    /// Subscribes a downstream DAG node (lossless interior edge).
    pub fn subscribe_interior(&self, cap: usize) -> Receiver<SharedItem> {
        let (tx, rx) = sync_channel(cap);
        lock(&self.subs).push(TreeSub {
            tx: Some(tx),
            tenant: None,
            shed: 0,
            full_since: None,
            depth: None,
            shed_counter: None,
        });
        rx
    }

    /// Subscribes a query (policy-governed edge, shed accounted to
    /// `tenant`).
    pub fn subscribe_query(
        &self,
        cap: usize,
        tenant: &str,
        depth: Option<Gauge>,
        shed_counter: Option<Counter>,
    ) -> Receiver<SharedItem> {
        let (tx, rx) = sync_channel(cap);
        lock(&self.subs).push(TreeSub {
            tx: Some(tx),
            tenant: Some(tenant.to_string()),
            shed: 0,
            full_since: None,
            depth,
            shed_counter,
        });
        rx
    }

    /// Live subscriber count (both tiers).
    pub fn subscribers(&self) -> usize {
        lock(&self.subs).iter().filter(|s| s.tx.is_some()).count()
    }

    /// Point-bearing items delivered to query-tier subscribers so far
    /// (standalone framing markers are not counted).
    pub fn chunks_multicast(&self) -> u64 {
        self.chunks_multicast.load(Ordering::Relaxed)
    }

    /// Elements shed per tenant, sorted by tenant.
    pub fn shed_per_tenant(&self) -> Vec<(String, u64)> {
        let mut acc: BTreeMap<String, u64> = BTreeMap::new();
        for s in lock(&self.subs).iter() {
            if let Some(t) = &s.tenant {
                if s.shed > 0 {
                    *acc.entry(t.clone()).or_insert(0) += s.shed;
                }
            }
        }
        acc.into_iter().collect()
    }

    /// Ends the stream for every subscriber (their receivers
    /// disconnect once in-flight items drain).
    pub fn close(&self) {
        for s in lock(&self.subs).iter_mut() {
            s.tx = None;
        }
    }

    /// Delivers one item to every subscriber — never blocking or
    /// sleeping while the subscriber lock is held (same discipline as
    /// the band fan-out; see the geolint `lock-across-send` rule).
    pub fn multicast(&self, item: &SharedItem, policy: FanoutPolicy, marker_patience: Duration) {
        let has_marker = item.marker().is_some();
        let has_points = item.point_count() > 0;
        // Lossless pass: interior edges always; query edges too under
        // the blocking policy. Snapshot senders under the lock, send
        // unlocked, re-lock only to null out closed receivers.
        let lossless: Vec<(usize, SyncSender<SharedItem>, Option<Gauge>, bool)> = {
            let guard = lock(&self.subs);
            guard
                .iter()
                .enumerate()
                .filter(|(_, s)| s.tenant.is_none() || policy == FanoutPolicy::Blocking)
                .filter_map(|(i, s)| {
                    s.tx.clone().map(|tx| (i, tx, s.depth.clone(), s.tenant.is_some()))
                })
                .collect()
        };
        let mut delivered_to_queries = 0u64;
        let mut dead = Vec::new();
        for (i, tx, depth, is_query) in lossless {
            if tx.send(Arc::clone(item)).is_err() {
                dead.push(i);
            } else {
                if let Some(g) = depth {
                    g.add(1);
                }
                if is_query && has_points {
                    delivered_to_queries += 1;
                }
            }
        }
        if !dead.is_empty() {
            let mut guard = lock(&self.subs);
            for i in dead {
                if let Some(slot) = guard.get_mut(i) {
                    slot.tx = None;
                }
            }
        }
        // Shed pass: query edges under the shed policy. Non-blocking
        // delivery attempts under the lock; full-on-a-marker
        // subscribers are retried with the guard dropped between
        // attempts until the marker patience runs out.
        if policy == FanoutPolicy::Shed {
            let mut settled: Vec<bool> = Vec::new();
            loop {
                let mut pending = false;
                {
                    let mut guard = lock(&self.subs);
                    settled.resize(guard.len().max(settled.len()), false);
                    for (i, slot) in guard.iter_mut().enumerate() {
                        if settled[i] || slot.tenant.is_none() {
                            continue;
                        }
                        match shed_try_sub(slot, item, has_marker, marker_patience) {
                            SubOutcome::Delivered => {
                                settled[i] = true;
                                if has_points {
                                    delivered_to_queries += 1;
                                }
                            }
                            SubOutcome::Settled => settled[i] = true,
                            SubOutcome::Retry => pending = true,
                        }
                    }
                }
                if !pending {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        if delivered_to_queries > 0 {
            self.chunks_multicast.fetch_add(delivered_to_queries, Ordering::Relaxed);
            if let Some(c) = &self.multicast_counter {
                c.add(delivered_to_queries);
            }
        }
    }
}

/// Outcome of one non-blocking delivery attempt to one subscriber.
enum SubOutcome {
    /// The item landed in the subscriber's channel.
    Delivered,
    /// The item is settled without delivery (shed, or the subscriber
    /// is gone).
    Settled,
    /// Full on a marker within patience: retry after an unlocked nap.
    Retry,
}

/// One non-blocking delivery attempt to one query-tier subscriber
/// (the subscription tree's analog of the band fan-out's shed tier).
fn shed_try_sub(
    slot: &mut TreeSub,
    item: &SharedItem,
    has_marker: bool,
    marker_patience: Duration,
) -> SubOutcome {
    let Some(tx) = &slot.tx else { return SubOutcome::Settled };
    match tx.try_send(Arc::clone(item)) {
        Ok(()) => {
            slot.full_since = None;
            if let Some(g) = &slot.depth {
                g.add(1);
            }
            SubOutcome::Delivered
        }
        Err(TrySendError::Disconnected(_)) => {
            slot.tx = None;
            SubOutcome::Settled
        }
        Err(TrySendError::Full(_)) => {
            let since = *slot.full_since.get_or_insert_with(Instant::now);
            if !has_marker {
                // Point runs are expendable: shed the whole run rather
                // than stall the shared evaluation for one tenant.
                let n = item.point_count() as u64;
                slot.shed += n;
                if let Some(c) = &slot.shed_counter {
                    c.add(n);
                }
                return SubOutcome::Settled;
            }
            if since.elapsed() >= marker_patience {
                // Cannot even accept framing markers: wedged — declare
                // the subscriber dead so siblings keep their cadence.
                slot.tx = None;
                let n = item.element_count();
                slot.shed += n;
                if let Some(c) = &slot.shed_counter {
                    c.add(n);
                }
                return SubOutcome::Settled;
            }
            SubOutcome::Retry
        }
    }
}

// ---------------------------------------------------------------------------
// Server-side registry: plan cache, tenant quotas, /share topology
// ---------------------------------------------------------------------------

/// Admission limits for one tenant, layered on top of the server's
/// per-query memory budget. `None` means unlimited on that axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum live queries for this tenant.
    pub max_queries: Option<u32>,
    /// Cumulative worst-case buffer budget across the tenant's
    /// *distinct* plans — subscribing twice to the same shared plan
    /// charges its buffer bound once, so identical dashboards are
    /// nearly free.
    pub memory_budget_bytes: Option<u64>,
}

#[derive(Debug, Default)]
struct TenantState {
    queries: u32,
    charged_bytes: u64,
    /// Plan key → this tenant's subscription count (for charge/refund).
    plan_refs: BTreeMap<u64, u32>,
}

#[derive(Debug)]
struct PlanEntry {
    canonical_text: String,
    /// Cached analysis (`None` after an invalidation — e.g. an archive
    /// attach changed the analysis context — until re-analyzed).
    report: Option<Arc<PlanReport>>,
    /// Worst-case buffer bytes this plan charges a tenant on first
    /// subscription.
    bytes: u64,
    /// Query ids subscribed to this plan.
    subscribers: Vec<u32>,
}

#[derive(Debug, Default)]
struct RegState {
    plans: BTreeMap<u64, PlanEntry>,
    quotas: BTreeMap<String, TenantQuota>,
    tenants: BTreeMap<String, TenantState>,
    by_query: BTreeMap<u32, (u64, String)>,
}

/// One plan of the `/share` topology.
#[derive(Debug, Clone, Serialize)]
pub struct SharePlanInfo {
    /// Canonical key, 16 hex digits.
    pub key: String,
    /// Canonical textual form.
    pub canonical: String,
    /// Subscribed query ids.
    pub subscribers: Vec<u32>,
    /// Tenants holding those subscriptions (deduplicated, sorted).
    pub tenants: Vec<String>,
    /// Worst-case buffer bytes charged per subscribing tenant.
    pub peak_buffer_bytes: u64,
}

/// One tenant of the `/share` topology.
#[derive(Debug, Clone, Serialize)]
pub struct TenantInfo {
    /// Tenant name.
    pub tenant: String,
    /// Live queries.
    pub queries: u32,
    /// Bytes charged against the tenant's memory budget.
    pub charged_bytes: u64,
    /// Query quota, if set.
    pub max_queries: Option<u32>,
    /// Memory quota, if set.
    pub memory_budget_bytes: Option<u64>,
}

/// The `GET /share` payload: the sharing topology as the server sees
/// it — distinct plans, who subscribes to them, tenant accounting.
#[derive(Debug, Clone, Serialize)]
pub struct ShareTopology {
    /// Number of distinct registered plans.
    pub distinct_plans: usize,
    /// Per-plan fan-out.
    pub plans: Vec<SharePlanInfo>,
    /// Per-tenant usage against quotas.
    pub tenants: Vec<TenantInfo>,
}

/// Server-side sharing bookkeeping: the canonical-key plan cache,
/// per-tenant quotas and usage, and the subscription topology.
#[derive(Debug, Default)]
pub struct ShareRegistry {
    state: Mutex<RegState>,
}

impl ShareRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) a tenant's quota. Existing subscriptions are
    /// unaffected; the quota binds future admissions.
    pub fn set_quota(&self, tenant: &str, quota: TenantQuota) {
        lock(&self.state).quotas.insert(tenant.to_string(), quota);
    }

    /// A tenant's quota, if one is set.
    pub fn quota(&self, tenant: &str) -> Option<TenantQuota> {
        lock(&self.state).quotas.get(tenant).copied()
    }

    /// The cached analysis for a canonical key, if present and valid.
    pub fn cached_report(&self, key: u64) -> Option<Arc<PlanReport>> {
        lock(&self.state).plans.get(&key).and_then(|p| p.report.clone())
    }

    /// Number of live queries subscribed to a canonical key.
    pub fn subscribers_of(&self, key: u64) -> u64 {
        lock(&self.state).plans.get(&key).map_or(0, |p| p.subscribers.len() as u64)
    }

    /// Number of distinct registered plans.
    pub fn distinct_plans(&self) -> usize {
        lock(&self.state).plans.len()
    }

    /// Admits query `qid` of `tenant` onto plan `key`, enforcing the
    /// tenant's quotas and caching the analysis for future
    /// registrations and `/explain`. Sharing-aware accounting: the
    /// plan's buffer bound is charged against the tenant's memory
    /// budget only on the tenant's *first* subscription to this plan.
    pub fn admit(
        &self,
        tenant: &str,
        key: u64,
        canonical_text: &str,
        report: &Arc<PlanReport>,
        qid: u32,
    ) -> Result<()> {
        let bytes = report.peak_buffer_bytes.unwrap_or(0);
        let mut st = lock(&self.state);
        let quota = st.quotas.get(tenant).copied().unwrap_or_default();
        let usage = st.tenants.entry(tenant.to_string()).or_default();
        if let Some(max) = quota.max_queries {
            if usage.queries >= max {
                return Err(CoreError::PlanRejected(format!(
                    "tenant `{tenant}` is at its query quota ({max})"
                )));
            }
        }
        let first_ref = !usage.plan_refs.contains_key(&key);
        if first_ref {
            if let Some(budget) = quota.memory_budget_bytes {
                if usage.charged_bytes.saturating_add(bytes) > budget {
                    return Err(CoreError::PlanRejected(format!(
                        "admitting this plan would charge tenant `{tenant}` {} bytes \
                         against a budget of {budget} bytes",
                        usage.charged_bytes.saturating_add(bytes)
                    )));
                }
            }
            usage.charged_bytes += bytes;
        }
        usage.queries += 1;
        *usage.plan_refs.entry(key).or_insert(0) += 1;
        let entry = st.plans.entry(key).or_insert_with(|| PlanEntry {
            canonical_text: canonical_text.to_string(),
            report: None,
            bytes,
            subscribers: Vec::new(),
        });
        entry.report = Some(Arc::clone(report));
        entry.bytes = bytes;
        entry.subscribers.push(qid);
        st.by_query.insert(qid, (key, tenant.to_string()));
        Ok(())
    }

    /// Releases query `qid`: refunds the tenant's charge when this was
    /// its last subscription to the plan, and drops the plan entry
    /// entirely when no subscriber remains (unsubscribe tears down
    /// only unreferenced plans). Returns `true` when the query was
    /// known.
    pub fn release(&self, qid: u32) -> bool {
        let mut st = lock(&self.state);
        let Some((key, tenant)) = st.by_query.remove(&qid) else { return false };
        let mut plan_bytes = 0;
        if let Some(entry) = st.plans.get_mut(&key) {
            entry.subscribers.retain(|&q| q != qid);
            plan_bytes = entry.bytes;
            if entry.subscribers.is_empty() {
                st.plans.remove(&key);
            }
        }
        if let Some(usage) = st.tenants.get_mut(&tenant) {
            usage.queries = usage.queries.saturating_sub(1);
            let drop_ref = match usage.plan_refs.get_mut(&key) {
                Some(n) => {
                    *n = n.saturating_sub(1);
                    *n == 0
                }
                None => false,
            };
            if drop_ref {
                usage.plan_refs.remove(&key);
                usage.charged_bytes = usage.charged_bytes.saturating_sub(plan_bytes);
            }
        }
        true
    }

    /// Invalidates every cached analysis (the analysis context
    /// changed, e.g. an archive was attached). Subscriptions and
    /// tenant accounting survive; the next registration or `/explain`
    /// per key re-analyzes and re-fills the cache.
    pub fn invalidate_reports(&self) {
        for entry in lock(&self.state).plans.values_mut() {
            entry.report = None;
        }
    }

    /// The `/share` topology snapshot.
    pub fn topology(&self) -> ShareTopology {
        let st = lock(&self.state);
        let plans = st
            .plans
            .iter()
            .map(|(key, p)| {
                let mut tenants: Vec<String> = p
                    .subscribers
                    .iter()
                    .filter_map(|q| st.by_query.get(q).map(|(_, t)| t.clone()))
                    .collect();
                tenants.sort();
                tenants.dedup();
                SharePlanInfo {
                    key: key_hex(*key),
                    canonical: p.canonical_text.clone(),
                    subscribers: p.subscribers.clone(),
                    tenants,
                    peak_buffer_bytes: p.bytes,
                }
            })
            .collect();
        let tenants = st
            .tenants
            .iter()
            .filter(|(_, u)| u.queries > 0)
            .map(|(name, u)| {
                let quota = st.quotas.get(name).copied().unwrap_or_default();
                TenantInfo {
                    tenant: name.clone(),
                    queries: u.queries,
                    charged_bytes: u.charged_bytes,
                    max_queries: quota.max_queries,
                    memory_budget_bytes: quota.memory_budget_bytes,
                }
            })
            .collect();
        ShareTopology { distinct_plans: st.plans.len(), plans, tenants }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_core::query::parse_query;

    fn e(q: &str) -> Expr {
        parse_query(q).unwrap()
    }

    #[test]
    fn identical_plans_collapse_into_one_node() {
        let roots: Vec<(usize, Expr)> = (0..100).map(|i| (i, e("scale(g1, 2, 0)"))).collect();
        let plan = plan_sharing(&roots);
        assert_eq!(plan.node_count(), 1);
        assert!(plan.legacy.is_empty());
        assert_eq!(plan.nodes[0].members.len(), 100);
        assert!(share_refs(&plan.nodes[0].expr).is_empty());
    }

    #[test]
    fn commuted_spellings_share_one_node() {
        let roots = vec![(0, e("add(g1, g2)")), (1, e("add(g2, g1)"))];
        let plan = plan_sharing(&roots);
        assert_eq!(plan.node_count(), 1);
        assert_eq!(plan.nodes[0].members, vec![0, 1]);
    }

    #[test]
    fn partial_overlap_shares_the_common_prefix() {
        // Both plans contain downsample(g1, 4); only that cut is shared.
        let roots = vec![
            (0, e("restrict_value(downsample(g1, 4), 0, 1)")),
            (1, e("scale(downsample(g1, 4), 2, 0)")),
        ];
        let plan = plan_sharing(&roots);
        assert!(plan.legacy.is_empty());
        assert_eq!(plan.node_count(), 3, "{:?}", plan.nodes);
        // Node 0 is the cut (no members of its own), nodes 1..2 consume it.
        let cut = &plan.nodes[0];
        assert!(cut.members.is_empty());
        assert_eq!(cut.expr, e("downsample(g1, 4)"));
        for node in &plan.nodes[1..] {
            assert_eq!(node.members.len(), 1);
            assert_eq!(share_refs(&node.expr), vec![share_source_name(cut.key)]);
        }
    }

    #[test]
    fn a_plan_that_is_anothers_prefix_attaches_to_the_cut() {
        let roots = vec![(0, e("downsample(g1, 4)")), (1, e("scale(downsample(g1, 4), 2, 0)"))];
        let plan = plan_sharing(&roots);
        assert_eq!(plan.node_count(), 2);
        // The prefix query subscribes directly to the cut node.
        let cut = &plan.nodes[0];
        assert_eq!(cut.members, vec![0]);
        assert_eq!(cut.expr, e("downsample(g1, 4)"));
        assert_eq!(plan.nodes[1].members, vec![1]);
    }

    #[test]
    fn disjoint_singletons_stay_legacy() {
        let roots = vec![(0, e("g1")), (1, e("scale(g2, 2, 0)")), (2, e("downsample(g1, 2)"))];
        let plan = plan_sharing(&roots);
        assert_eq!(plan.node_count(), 0);
        assert_eq!(plan.legacy, vec![0, 1, 2]);
    }

    #[test]
    fn bare_source_plans_share_without_cutting_bands() {
        // Identical bare-source plans still form one node (one
        // multicast), but a band never becomes a @share cut.
        let roots = vec![(0, e("g1")), (1, e("g1")), (2, e("scale(g1, 2, 0)"))];
        let plan = plan_sharing(&roots);
        assert_eq!(plan.node_count(), 1);
        assert_eq!(plan.nodes[0].members, vec![0, 1]);
        assert_eq!(plan.legacy, vec![2]);
    }

    #[test]
    fn nested_cuts_chain_through_the_dag() {
        // g(D) is shared by the first two plans; D by all three. The
        // cut for g(D) must itself consume the cut for D.
        let d = "downsample(g1, 4)";
        let roots = vec![
            (0, e(&format!("scale(clamp({d}, 0, 1), 2, 0)"))),
            (1, e(&format!("abs(clamp({d}, 0, 1))"))),
            (2, e(&format!("threshold({d}, 0.5)"))),
        ];
        let plan = plan_sharing(&roots);
        assert!(plan.legacy.is_empty());
        let clamp_node = plan
            .nodes
            .iter()
            .find(|n| n.expr.to_string().starts_with("clamp("))
            .expect("cut for clamp(D)");
        let refs = share_refs(&clamp_node.expr);
        assert_eq!(refs.len(), 1, "clamp cut consumes the D cut: {:?}", clamp_node.expr);
    }

    /// A chunk item carrying `n` points (the content is irrelevant to
    /// the tree; only the counts matter).
    fn chunk_of(n: usize) -> SharedItem {
        use geostreams_core::model::{Chunk, PointRecord};
        use geostreams_geo::Cell;
        Arc::new(ChunkOrMarker::Chunk(Chunk {
            points: (0..n)
                .map(|i| PointRecord { cell: Cell::new(0, i as u32), value: 1.0f32 })
                .collect(),
            end: None,
            ctx: None,
        }))
    }

    #[test]
    fn tree_multicasts_arcs_and_closes() {
        let tree = SubscriptionTree::new();
        let rx1 = tree.subscribe_query(8, "a", None, None);
        let rx2 = tree.subscribe_query(8, "b", None, None);
        assert_eq!(tree.subscribers(), 2);
        let item = chunk_of(2);
        tree.multicast(&item, FanoutPolicy::Shed, Duration::from_millis(50));
        assert_eq!(tree.chunks_multicast(), 2);
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        // Same allocation on both sides: pointer-equal, no deep copy.
        assert!(Arc::ptr_eq(&a, &b));
        tree.close();
        assert!(rx1.recv().is_err());
        assert!(rx2.recv().is_err());
        assert_eq!(tree.subscribers(), 0);
    }

    #[test]
    fn full_subscriber_sheds_points_per_tenant_without_stalling() {
        let tree = SubscriptionTree::new();
        let _rx_slow = tree.subscribe_query(1, "slow", None, None);
        let rx_fast = tree.subscribe_query(64, "fast", None, None);
        for _ in 0..5 {
            tree.multicast(&chunk_of(10), FanoutPolicy::Shed, Duration::from_millis(10));
        }
        // The slow tenant's 1-slot channel absorbed one item and shed
        // the rest; the fast sibling got everything.
        assert_eq!(rx_fast.try_iter().count(), 5);
        let shed = tree.shed_per_tenant();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0, "slow");
        assert_eq!(shed[0].1, 40, "4 shed runs x 10 points");
    }

    #[test]
    fn registry_shares_charges_and_tears_down() {
        let reg = ShareRegistry::new();
        reg.set_quota(
            "acme",
            TenantQuota { max_queries: Some(3), memory_budget_bytes: Some(1000) },
        );
        let report = Arc::new(PlanReport { peak_buffer_bytes: Some(600), ..PlanReport::default() });
        // Two subscriptions to the same plan charge the budget once.
        reg.admit("acme", 7, "scale(g1, 2, 0)", &report, 1).unwrap();
        reg.admit("acme", 7, "scale(g1, 2, 0)", &report, 2).unwrap();
        assert_eq!(reg.subscribers_of(7), 2);
        let topo = reg.topology();
        assert_eq!(topo.distinct_plans, 1);
        assert_eq!(topo.tenants[0].charged_bytes, 600);
        // A distinct plan that would break the budget is refused...
        let report2 =
            Arc::new(PlanReport { peak_buffer_bytes: Some(600), ..PlanReport::default() });
        assert!(reg.admit("acme", 9, "downsample(g1, 2)", &report2, 3).is_err());
        // ...and the query quota binds as well.
        let tiny = Arc::new(PlanReport { peak_buffer_bytes: Some(1), ..PlanReport::default() });
        reg.admit("acme", 11, "g1", &tiny, 4).unwrap();
        assert!(reg.admit("acme", 11, "g1", &tiny, 5).is_err(), "4th query over max_queries=3");
        // Release: the plan survives while referenced, then tears down.
        assert!(reg.release(1));
        assert_eq!(reg.subscribers_of(7), 1);
        assert!(reg.cached_report(7).is_some());
        assert!(reg.release(2));
        assert_eq!(reg.subscribers_of(7), 0);
        assert!(reg.cached_report(7).is_none(), "unreferenced plan entry torn down");
        let topo = reg.topology();
        assert_eq!(topo.tenants[0].charged_bytes, 1, "only the tiny plan remains charged");
    }

    #[test]
    fn invalidation_clears_reports_but_keeps_subscriptions() {
        let reg = ShareRegistry::new();
        let report = Arc::new(PlanReport::default());
        reg.admit("default", 7, "g1", &report, 1).unwrap();
        assert!(reg.cached_report(7).is_some());
        reg.invalidate_reports();
        assert!(reg.cached_report(7).is_none());
        assert_eq!(reg.subscribers_of(7), 1);
    }
}
