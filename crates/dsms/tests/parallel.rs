//! Differential oracle suite for morsel-driven parallel execution
//! (DESIGN.md §17).
//!
//! Every partitionable operator — and a stacked pipeline — must
//! produce a flattened element sequence *byte-identical* to the serial
//! single-threaded plan at every worker count and chunk budget,
//! including over a faulty downlink (`ChaosStream` repaired below the
//! split, mirroring the runtime's source wiring) and through the
//! shared-plan runtime with `share_plans` on.

use geostreams_core::exec::{compile_stages, run_morsels, split_parallel, WorkerPool};
use geostreams_core::model::{drain_chunked, Element, GeoStream, StreamRepair};
use geostreams_core::obs::PipelineObs;
use geostreams_core::query::{optimize, parse_query, Catalog, Planner};
use geostreams_dsms::{run_supervised, ClientRequest, OutputFormat, RuntimeConfig};
use geostreams_satsim::{goes_like, ChaosStream, FaultPlan};
use std::sync::Arc;

const SECTORS: u64 = 2;
const BUDGETS: [usize; 3] = [1, 7, 256];

/// Worker counts under test: {1, 2, 4, cores}, deduplicated.
fn worker_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut v = vec![1, 2, 4, cores];
    v.sort_unstable();
    v.dedup();
    v
}

/// A catalog over the simulated scanner, each band optionally degraded
/// by a seeded `ChaosStream` and always repaired — repair sits *below*
/// the parallel split, exactly like the runtime's channel sources, so
/// morsel kernels only ever see protocol-clean input.
fn catalog(chaos: Option<FaultPlan>) -> Catalog {
    let scanner = goes_like(16, 8, 5);
    let mut catalog = Catalog::new();
    for band_idx in 0..scanner.instrument.bands.len() {
        let schema = scanner.band_stream(band_idx, 1).schema().clone();
        let scanner = scanner.clone();
        let plan = chaos.clone();
        catalog.register(schema, move || {
            let stream = scanner.band_stream(band_idx, SECTORS);
            match &plan {
                Some(p) => Box::new(StreamRepair::new(ChaosStream::new(
                    stream,
                    p.clone(),
                    band_idx as u64,
                ))),
                None => Box::new(StreamRepair::new(stream)),
            }
        });
    }
    catalog
}

/// Bit patterns of every point value, in delivery order. Element
/// equality already covers structure; this pins the values down to the
/// exact f32 bits (`assert_eq!` on `f32` would pass for `-0.0 == 0.0`).
fn point_bits(els: &[Element<f32>]) -> Vec<u32> {
    els.iter()
        .filter_map(|el| match el {
            Element::Point(p) => Some(p.value.to_bits()),
            _ => None,
        })
        .collect()
}

/// Serial oracle: the full plan, one thread, drained at `budget`.
fn serial_oracle(catalog: &Catalog, query: &str, budget: usize) -> Vec<Element<f32>> {
    let expr = optimize(&parse_query(query).expect("parse"), catalog);
    let planner = Planner::new(catalog);
    let mut pipeline = planner.build(&expr).expect("build");
    drain_chunked(&mut *pipeline, budget)
}

/// Morsel run: split the same plan, fan the stage suffix out to `pool`,
/// and flatten the merged delivery.
fn morsel_run(
    catalog: &Catalog,
    query: &str,
    pool: &WorkerPool,
    budget: usize,
) -> Vec<Element<f32>> {
    let expr = optimize(&parse_query(query).expect("parse"), catalog);
    let split = split_parallel(&expr);
    assert!(!split.stages.is_empty(), "query must have a partitionable suffix: {query}");
    let planner = Planner::new(catalog);
    let mut inner = planner.build(&split.inner).expect("build inner");
    let stages = Arc::new(compile_stages(&split.stages, inner.schema()).expect("compile"));
    let mut merged = Vec::new();
    let report = run_morsels(&mut inner, &stages, pool, &PipelineObs::default(), budget, |item| {
        item.for_each_element(&mut |el| merged.push(el.clone()))
    });
    assert_eq!(report.run.protocol_violations, 0, "{query}");
    assert_eq!(report.kernel_panics, 0, "{query}");
    merged
}

/// One query per partitionable operator (restrictions, value map,
/// stretch, focal, orient), each rooted directly over a source.
const OPERATOR_QUERIES: [&str; 7] = [
    "restrict_space(goes-sim.b4-ir, bbox(-100, 30, -90, 40), \"latlon\")",
    "restrict_time(goes-sim.b4-ir, interval(0, 2))",
    "restrict_value(goes-sim.b4-ir, 200, 320)",
    "scale(goes-sim.b4-ir, 2, 1)",
    "stretch(goes-sim.b4-ir, \"linear\")",
    "focal(goes-sim.b4-ir, \"mean\", 3)",
    "orient(goes-sim.b4-ir, \"rot90\")",
];

fn assert_identical(catalog: &Catalog, queries: &[&str]) {
    for &workers in &worker_counts() {
        let pool = WorkerPool::new(workers);
        for query in queries {
            for budget in BUDGETS {
                let serial = serial_oracle(catalog, query, budget);
                let merged = morsel_run(catalog, query, &pool, budget);
                assert_eq!(merged, serial, "{query} at {workers} workers, budget {budget}");
                assert_eq!(
                    point_bits(&merged),
                    point_bits(&serial),
                    "{query} bits at {workers} workers, budget {budget}"
                );
            }
        }
    }
}

#[test]
fn every_operator_is_byte_identical_across_workers_and_budgets() {
    assert_identical(&catalog(None), &OPERATOR_QUERIES);
}

#[test]
fn stacked_pipeline_is_byte_identical() {
    assert_identical(
        &catalog(None),
        &["restrict_value(stretch(scale(goes-sim.b4-ir, 2, 1), \"linear\"), 0, 1000)"],
    );
}

#[test]
fn operators_stay_byte_identical_under_chaos() {
    // A deterministic, genuinely nasty downlink: dropped rows and
    // sectors, missing end markers, duplicates, reordering, corrupted
    // values. StreamRepair below the split normalizes it identically
    // for the oracle and every morsel kernel.
    let plan = FaultPlan::seeded(42)
        .with_dropped_points(0.05)
        .with_dropped_rows(0.02)
        .with_dropped_end_markers(0.05)
        .with_duplicates(0.03)
        .with_reordering(0.05)
        .with_corruption(0.02, 50.0);
    let catalog = catalog(Some(plan));
    assert_identical(
        &catalog,
        &[
            "restrict_value(goes-sim.b4-ir, 200, 320)",
            "focal(goes-sim.b4-ir, \"mean\", 3)",
            "restrict_value(stretch(scale(goes-sim.b4-ir, 2, 1), \"linear\"), 0, 1000)",
        ],
    );
}

#[test]
fn shared_plans_on_the_pool_match_the_legacy_serial_runtime() {
    // Two structurally-equal counting queries (shared when
    // `share_plans` is on) plus a distinct one, over a chaotic feed.
    // The per-query facts must be invariant across {legacy serial,
    // shared + inline, shared + 4 workers, unshared + 4 workers}.
    let requests = vec![
        req("restrict_value(scale(goes-sim.b4-ir, 2, 0), 0, 700)"),
        req("restrict_value(scale(goes-sim.b4-ir, 2, 0), 0, 700)"),
        req("scale(goes-sim.b3-wv, 3, 1)"),
    ];
    let run = |share_plans: bool, exec_workers: usize| -> Vec<(u64, u64)> {
        let scanner = goes_like(32, 16, 5);
        let config = RuntimeConfig {
            share_plans,
            exec_workers,
            fault_plan: Some(FaultPlan::seeded(9).with_dropped_points(0.03).with_duplicates(0.02)),
            ..RuntimeConfig::default()
        };
        let (results, _) = run_supervised(&scanner, SECTORS, &requests, &config).expect("run");
        results
            .iter()
            .map(|r| {
                let r = r.as_ref().expect("query result");
                (r.points, r.report.as_ref().expect("report").sectors)
            })
            .collect()
    };
    let legacy = run(false, 0);
    for (share, workers) in [(true, 0), (true, 4), (false, 4)] {
        assert_eq!(run(share, workers), legacy, "share={share} workers={workers}");
    }
}

fn req(q: &str) -> ClientRequest {
    ClientRequest { query: q.to_string(), format: OutputFormat::Stats, sectors: 0 }
}
