//! Planar affine transforms.
//!
//! §3.2 lists "magnification (zooming), rotation, and general affine
//! transformations" as spatial transforms. An [`Affine`] represents the
//! mapping `(x, y) ↦ (a·x + b·y + c, d·x + e·y + f)` and supports exact
//! composition and inversion, which the optimizer uses when fusing chained
//! spatial transforms.

use crate::coord::Coord;
use crate::error::{GeoError, Result};
use serde::{Deserialize, Serialize};

/// A 2-D affine transform stored row-major as `[a, b, c, d, e, f]` for
/// `x' = a·x + b·y + c`, `y' = d·x + e·y + f`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Affine {
    /// Coefficients `[a, b, c, d, e, f]`.
    pub m: [f64; 6],
}

impl Affine {
    /// The identity transform.
    pub const IDENTITY: Affine = Affine { m: [1.0, 0.0, 0.0, 0.0, 1.0, 0.0] };

    /// Creates a transform from raw coefficients.
    pub const fn new(a: f64, b: f64, c: f64, d: f64, e: f64, f: f64) -> Self {
        Affine { m: [a, b, c, d, e, f] }
    }

    /// Pure translation.
    pub const fn translation(dx: f64, dy: f64) -> Self {
        Affine::new(1.0, 0.0, dx, 0.0, 1.0, dy)
    }

    /// Anisotropic scaling about the origin.
    pub const fn scaling(sx: f64, sy: f64) -> Self {
        Affine::new(sx, 0.0, 0.0, 0.0, sy, 0.0)
    }

    /// Counter-clockwise rotation about the origin, angle in degrees.
    pub fn rotation(degrees: f64) -> Self {
        let (s, c) = degrees.to_radians().sin_cos();
        Affine::new(c, -s, 0.0, s, c, 0.0)
    }

    /// Rotation about an arbitrary pivot point.
    pub fn rotation_about(degrees: f64, pivot: Coord) -> Self {
        Affine::translation(pivot.x, pivot.y)
            .then(&Affine::rotation(degrees))
            .then(&Affine::translation(-pivot.x, -pivot.y))
    }

    /// Applies the transform to a coordinate.
    #[inline]
    pub fn apply(&self, p: Coord) -> Coord {
        let [a, b, c, d, e, f] = self.m;
        Coord::new(a * p.x + b * p.y + c, d * p.x + e * p.y + f)
    }

    /// Determinant of the linear part.
    #[inline]
    pub fn det(&self) -> f64 {
        let [a, b, _, d, e, _] = self.m;
        a * e - b * d
    }

    /// `self ∘ other`: applies `other` first, then `self`.
    ///
    /// Note the argument order: `t1.then(&t2)` is the transform that first
    /// applies `t2` then `t1` (matrix product `t1 · t2`).
    pub fn then(&self, inner: &Affine) -> Affine {
        let [a1, b1, c1, d1, e1, f1] = self.m;
        let [a2, b2, c2, d2, e2, f2] = inner.m;
        Affine::new(
            a1 * a2 + b1 * d2,
            a1 * b2 + b1 * e2,
            a1 * c2 + b1 * f2 + c1,
            d1 * a2 + e1 * d2,
            d1 * b2 + e1 * e2,
            d1 * c2 + e1 * f2 + f1,
        )
    }

    /// Exact inverse; fails for singular transforms.
    pub fn inverse(&self) -> Result<Affine> {
        let det = self.det();
        if det.abs() < 1e-300 || !det.is_finite() {
            return Err(GeoError::SingularTransform);
        }
        let [a, b, c, d, e, f] = self.m;
        let inv_det = 1.0 / det;
        let ia = e * inv_det;
        let ib = -b * inv_det;
        let id = -d * inv_det;
        let ie = a * inv_det;
        let ic = -(ia * c + ib * f);
        let if_ = -(id * c + ie * f);
        Ok(Affine::new(ia, ib, ic, id, ie, if_))
    }
}

impl Default for Affine {
    fn default() -> Self {
        Affine::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Coord, b: Coord) -> bool {
        (a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9
    }

    #[test]
    fn identity_fixes_points() {
        let p = Coord::new(3.5, -2.0);
        assert!(close(Affine::IDENTITY.apply(p), p));
    }

    #[test]
    fn translation_and_scaling() {
        let t = Affine::translation(10.0, -5.0);
        assert!(close(t.apply(Coord::new(1.0, 1.0)), Coord::new(11.0, -4.0)));
        let s = Affine::scaling(2.0, 3.0);
        assert!(close(s.apply(Coord::new(1.0, 1.0)), Coord::new(2.0, 3.0)));
    }

    #[test]
    fn rotation_quarter_turn() {
        let r = Affine::rotation(90.0);
        assert!(close(r.apply(Coord::new(1.0, 0.0)), Coord::new(0.0, 1.0)));
    }

    #[test]
    fn rotation_about_pivot_fixes_pivot() {
        let pivot = Coord::new(4.0, 7.0);
        let r = Affine::rotation_about(137.0, pivot);
        assert!(close(r.apply(pivot), pivot));
    }

    #[test]
    fn composition_order() {
        // Scale then translate ≠ translate then scale.
        let s = Affine::scaling(2.0, 2.0);
        let t = Affine::translation(1.0, 0.0);
        let st = t.then(&s); // scale first, then translate
        assert!(close(st.apply(Coord::new(1.0, 1.0)), Coord::new(3.0, 2.0)));
        let ts = s.then(&t); // translate first, then scale
        assert!(close(ts.apply(Coord::new(1.0, 1.0)), Coord::new(4.0, 2.0)));
    }

    #[test]
    fn inverse_round_trips() {
        let t = Affine::rotation(33.0)
            .then(&Affine::scaling(2.5, 0.5))
            .then(&Affine::translation(4.0, -9.0));
        let inv = t.inverse().unwrap();
        for p in [Coord::new(0.0, 0.0), Coord::new(10.0, -3.0), Coord::new(-7.5, 2.25)] {
            assert!(close(inv.apply(t.apply(p)), p));
        }
    }

    #[test]
    fn singular_transform_rejected() {
        assert!(Affine::scaling(0.0, 1.0).inverse().is_err());
    }
}
