//! Query regions for spatial restrictions.
//!
//! §3.1 of the paper lists three ways to specify the restriction region
//! `R`: (1) an enumeration of coordinate pairs, (2) constraint-model
//! expressions (polynomial inequalities on `x, y`), and (3) the bounding
//! box given by two corner points — "commonly used in graphical user
//! interfaces". [`Region`] supports all three (constraints as linear
//! half-plane conjunctions) plus simple polygons, and every variant
//! answers an O(1)–O(k) `contains` test and a bounding box used for
//! lattice footprint computation.
//!
//! [`map_region`] implements the cross-CRS region mapping required by the
//! §3.4 rewrite that pushes a restriction through a re-projection.

use crate::coord::Coord;
use crate::crs::Crs;
use crate::error::{GeoError, Result};
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle, the paper's "two corner points" region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum x (west / left).
    pub x_min: f64,
    /// Minimum y (south / bottom).
    pub y_min: f64,
    /// Maximum x (east / right).
    pub x_max: f64,
    /// Maximum y (north / top).
    pub y_max: f64,
}

impl Rect {
    /// Builds a rectangle from two opposite corners (any order).
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect { x_min: x1.min(x2), y_min: y1.min(y2), x_max: x1.max(x2), y_max: y1.max(y2) }
    }

    /// The degenerate empty rectangle used as a fold seed.
    pub fn empty() -> Rect {
        Rect {
            x_min: f64::INFINITY,
            y_min: f64::INFINITY,
            x_max: f64::NEG_INFINITY,
            y_max: f64::NEG_INFINITY,
        }
    }

    /// True when no point satisfies the rectangle.
    pub fn is_empty(&self) -> bool {
        self.x_min > self.x_max || self.y_min > self.y_max
    }

    /// Point-in-rectangle test (closed boundaries).
    #[inline]
    pub fn contains(&self, p: Coord) -> bool {
        p.x >= self.x_min && p.x <= self.x_max && p.y >= self.y_min && p.y <= self.y_max
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x_min: self.x_min.min(other.x_min),
            y_min: self.y_min.min(other.y_min),
            x_max: self.x_max.max(other.x_max),
            y_max: self.y_max.max(other.y_max),
        }
    }

    /// Intersection; may be empty.
    pub fn intersect(&self, other: &Rect) -> Rect {
        Rect {
            x_min: self.x_min.max(other.x_min),
            y_min: self.y_min.max(other.y_min),
            x_max: self.x_max.min(other.x_max),
            y_max: self.y_max.min(other.y_max),
        }
    }

    /// True when the rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Grows the rectangle by a margin on every side.
    pub fn expand(&self, margin: f64) -> Rect {
        Rect {
            x_min: self.x_min - margin,
            y_min: self.y_min - margin,
            x_max: self.x_max + margin,
            y_max: self.y_max + margin,
        }
    }

    /// Width (x extent).
    pub fn width(&self) -> f64 {
        (self.x_max - self.x_min).max(0.0)
    }

    /// Height (y extent).
    pub fn height(&self) -> f64 {
        (self.y_max - self.y_min).max(0.0)
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Coord {
        Coord::new((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)
    }

    /// Uniformly samples `n` points per edge along the boundary plus the
    /// four corners; used to map regions across projections.
    pub fn boundary_samples(&self, n_per_edge: usize) -> Vec<Coord> {
        let n = n_per_edge.max(1);
        let mut out = Vec::with_capacity(4 * (n + 1));
        for i in 0..=n {
            let t = i as f64 / n as f64;
            let x = self.x_min + t * self.width();
            let y = self.y_min + t * self.height();
            out.push(Coord::new(x, self.y_min));
            out.push(Coord::new(x, self.y_max));
            out.push(Coord::new(self.x_min, y));
            out.push(Coord::new(self.x_max, y));
        }
        out
    }
}

/// A closed half-plane `a·x + b·y ≤ c`: the linear instance of the paper's
/// constraint data model region specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HalfPlane {
    /// Coefficient on x.
    pub a: f64,
    /// Coefficient on y.
    pub b: f64,
    /// Right-hand side.
    pub c: f64,
}

impl HalfPlane {
    /// Creates the half-plane `a·x + b·y ≤ c`.
    pub const fn new(a: f64, b: f64, c: f64) -> Self {
        HalfPlane { a, b, c }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, p: Coord) -> bool {
        self.a * p.x + self.b * p.y <= self.c + 1e-12
    }
}

/// A simple polygon (implicitly closed ring of vertices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    /// Ring vertices in order (first ≠ last; closure is implicit).
    pub vertices: Vec<Coord>,
}

impl Polygon {
    /// Creates a polygon; requires at least 3 vertices.
    pub fn new(vertices: Vec<Coord>) -> Result<Polygon> {
        if vertices.len() < 3 {
            return Err(GeoError::EmptyRegion);
        }
        Ok(Polygon { vertices })
    }

    /// Even–odd ray-casting point-in-polygon test, O(#vertices).
    pub fn contains(&self, p: Coord) -> bool {
        let v = &self.vertices;
        let mut inside = false;
        let mut j = v.len() - 1;
        for i in 0..v.len() {
            let (vi, vj) = (v[i], v[j]);
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Axis-aligned bounding box of the vertices.
    pub fn bbox(&self) -> Rect {
        self.vertices.iter().fold(Rect::empty(), |r, v| r.union(&Rect::new(v.x, v.y, v.x, v.y)))
    }
}

/// A spatial restriction region `R` (Definition 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Region {
    /// Bounding-box region (specification style (3) of §3.1).
    Rect(Rect),
    /// Simple polygon region.
    Polygon(Polygon),
    /// Conjunction of linear constraints (specification style (2)).
    HalfPlanes(Vec<HalfPlane>),
    /// Enumerated coordinates with a snap tolerance (specification
    /// style (1)); a point belongs to the region when it lies within
    /// `tolerance` (Chebyshev) of any listed coordinate.
    Points {
        /// The enumerated coordinates.
        coords: Vec<Coord>,
        /// Snap tolerance in CRS units.
        tolerance: f64,
    },
}

impl Region {
    /// Membership test for a coordinate.
    pub fn contains(&self, p: Coord) -> bool {
        match self {
            Region::Rect(r) => r.contains(p),
            Region::Polygon(poly) => poly.contains(p),
            Region::HalfPlanes(hs) => hs.iter().all(|h| h.contains(p)),
            Region::Points { coords, tolerance } => coords
                .iter()
                .any(|c| (c.x - p.x).abs() <= *tolerance && (c.y - p.y).abs() <= *tolerance),
        }
    }

    /// Conservative axis-aligned bounding box. Half-plane conjunctions may
    /// be unbounded; the box is then clamped to `clamp`.
    pub fn bbox_clamped(&self, clamp: Rect) -> Rect {
        match self {
            Region::Rect(r) => r.intersect(&clamp),
            Region::Polygon(p) => p.bbox().intersect(&clamp),
            Region::HalfPlanes(hs) => half_plane_bbox(hs, clamp),
            Region::Points { coords, tolerance } => coords
                .iter()
                .fold(Rect::empty(), |r, c| r.union(&Rect::new(c.x, c.y, c.x, c.y)))
                .expand(*tolerance)
                .intersect(&clamp),
        }
    }

    /// Bounding box with an effectively unbounded clamp.
    pub fn bbox(&self) -> Rect {
        self.bbox_clamped(Rect::new(-1e300, -1e300, 1e300, 1e300))
    }

    /// Whether this region is exactly its bounding box (lets the spatial
    /// restriction operator skip the per-point `contains` test).
    pub fn is_rectangular(&self) -> bool {
        matches!(self, Region::Rect(_))
    }
}

/// Bounding box of a conjunction of half-planes by clipping the clamp
/// rectangle polygon against each half-plane (Sutherland–Hodgman).
fn half_plane_bbox(planes: &[HalfPlane], clamp: Rect) -> Rect {
    let mut poly = vec![
        Coord::new(clamp.x_min, clamp.y_min),
        Coord::new(clamp.x_max, clamp.y_min),
        Coord::new(clamp.x_max, clamp.y_max),
        Coord::new(clamp.x_min, clamp.y_max),
    ];
    for h in planes {
        let mut next = Vec::with_capacity(poly.len() + 1);
        for i in 0..poly.len() {
            let cur = poly[i];
            let prev = poly[(i + poly.len() - 1) % poly.len()];
            let cur_in = h.contains(cur);
            let prev_in = h.contains(prev);
            if cur_in != prev_in {
                // Edge crosses the boundary a·x + b·y = c.
                let denom = h.a * (cur.x - prev.x) + h.b * (cur.y - prev.y);
                if denom.abs() > 1e-300 {
                    let t = (h.c - h.a * prev.x - h.b * prev.y) / denom;
                    next.push(Coord::new(
                        prev.x + t * (cur.x - prev.x),
                        prev.y + t * (cur.y - prev.y),
                    ));
                }
            }
            if cur_in {
                next.push(cur);
            }
        }
        poly = next;
        if poly.is_empty() {
            return Rect::empty();
        }
    }
    poly.iter().fold(Rect::empty(), |r, v| r.union(&Rect::new(v.x, v.y, v.x, v.y)))
}

/// Maps a region from one CRS into a conservative rectangle in another CRS
/// by projecting densified boundary samples through the geographic
/// intermediate. This is the geometry behind the §3.4 rewrite "R needs to
/// be mapped to the coordinate system C" when pushing a spatial
/// restriction through a re-projection.
///
/// Samples that fall outside the target projection's domain (e.g. beyond
/// the geostationary limb) are skipped; if *all* samples are invisible the
/// mapped region is empty and `EmptyRegion` is returned. The result is
/// slightly expanded to stay conservative (no false negatives for the
/// restriction that will use it).
pub fn map_region(region: &Region, from: &Crs, to: &Crs, densify: usize) -> Result<Rect> {
    if from == to {
        let b = region.bbox();
        return if b.is_empty() { Err(GeoError::EmptyRegion) } else { Ok(b) };
    }
    let bbox = region.bbox();
    if bbox.is_empty() {
        return Err(GeoError::EmptyRegion);
    }
    let from_proj = from.projection()?;
    let to_proj = to.projection()?;
    let mut out = Rect::empty();
    let mut samples = bbox.boundary_samples(densify.max(4));
    samples.push(bbox.center());
    let mut mapped_any = false;
    for s in samples {
        let Ok(ll) = from_proj.inverse(s) else { continue };
        let Ok(p) = to_proj.forward(ll) else { continue };
        out = out.union(&Rect::new(p.x, p.y, p.x, p.y));
        mapped_any = true;
    }
    if !mapped_any || out.is_empty() {
        return Err(GeoError::EmptyRegion);
    }
    // Conservative inflation: boundary sampling can undershoot the true
    // image of the region between samples; pad by one sampling step.
    let pad_x = out.width() / (densify.max(4) as f64);
    let pad_y = out.height() / (densify.max(4) as f64);
    Ok(out.expand(pad_x.max(pad_y).max(1e-9)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_and_ops() {
        let r = Rect::new(0.0, 0.0, 10.0, 5.0);
        assert!(r.contains(Coord::new(5.0, 2.5)));
        assert!(r.contains(Coord::new(0.0, 0.0)));
        assert!(!r.contains(Coord::new(-0.1, 2.0)));
        assert_eq!(r.area(), 50.0);
        assert_eq!(r.center(), Coord::new(5.0, 2.5));
    }

    #[test]
    fn rect_new_normalizes_corners() {
        let r = Rect::new(10.0, 5.0, 0.0, 0.0);
        assert_eq!(r.x_min, 0.0);
        assert_eq!(r.y_max, 5.0);
    }

    #[test]
    fn rect_union_intersection() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.union(&b), Rect::new(0.0, 0.0, 6.0, 6.0));
        assert_eq!(a.intersect(&b), Rect::new(2.0, 2.0, 4.0, 4.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&Rect::new(5.0, 5.0, 6.0, 6.0)));
    }

    #[test]
    fn polygon_point_in_triangle() {
        let tri =
            Polygon::new(vec![Coord::new(0.0, 0.0), Coord::new(4.0, 0.0), Coord::new(0.0, 4.0)])
                .unwrap();
        assert!(tri.contains(Coord::new(1.0, 1.0)));
        assert!(!tri.contains(Coord::new(3.0, 3.0)));
        assert_eq!(tri.bbox(), Rect::new(0.0, 0.0, 4.0, 4.0));
    }

    #[test]
    fn polygon_needs_three_vertices() {
        assert!(Polygon::new(vec![Coord::new(0.0, 0.0), Coord::new(1.0, 1.0)]).is_err());
    }

    #[test]
    fn half_planes_form_a_band() {
        // 1 ≤ x ≤ 3 as two half-planes.
        let region = Region::HalfPlanes(vec![
            HalfPlane::new(1.0, 0.0, 3.0),
            HalfPlane::new(-1.0, 0.0, -1.0),
        ]);
        assert!(region.contains(Coord::new(2.0, 100.0)));
        assert!(!region.contains(Coord::new(0.5, 0.0)));
        let clamp = Rect::new(-10.0, -10.0, 10.0, 10.0);
        let b = region.bbox_clamped(clamp);
        assert!((b.x_min - 1.0).abs() < 1e-9 && (b.x_max - 3.0).abs() < 1e-9);
        assert!((b.y_min + 10.0).abs() < 1e-9 && (b.y_max - 10.0).abs() < 1e-9);
    }

    #[test]
    fn half_plane_triangle_bbox() {
        // x ≥ 0, y ≥ 0, x + y ≤ 2.
        let region = Region::HalfPlanes(vec![
            HalfPlane::new(-1.0, 0.0, 0.0),
            HalfPlane::new(0.0, -1.0, 0.0),
            HalfPlane::new(1.0, 1.0, 2.0),
        ]);
        let b = region.bbox_clamped(Rect::new(-100.0, -100.0, 100.0, 100.0));
        assert!((b.x_max - 2.0).abs() < 1e-9 && (b.y_max - 2.0).abs() < 1e-9);
        assert!(b.x_min.abs() < 1e-9 && b.y_min.abs() < 1e-9);
    }

    #[test]
    fn infeasible_half_planes_are_empty() {
        let region = Region::HalfPlanes(vec![
            HalfPlane::new(1.0, 0.0, 0.0),
            HalfPlane::new(-1.0, 0.0, -1.0),
        ]);
        assert!(region.bbox_clamped(Rect::new(-10.0, -10.0, 10.0, 10.0)).is_empty());
    }

    #[test]
    fn enumerated_points_snap() {
        let region = Region::Points {
            coords: vec![Coord::new(1.0, 1.0), Coord::new(5.0, 5.0)],
            tolerance: 0.25,
        };
        assert!(region.contains(Coord::new(1.2, 0.8)));
        assert!(!region.contains(Coord::new(2.0, 2.0)));
        let b = region.bbox();
        assert!((b.x_min - 0.75).abs() < 1e-9 && (b.x_max - 5.25).abs() < 1e-9);
    }

    #[test]
    fn map_region_latlon_to_utm_covers_interior() {
        let region = Region::Rect(Rect::new(-123.0, 37.0, -122.0, 38.0));
        let utm = Crs::utm(10, true);
        let mapped = map_region(&region, &Crs::LatLon, &utm, 16).unwrap();
        // Interior points of the region must land inside the mapped box.
        for lon in [-122.9, -122.5, -122.1] {
            for lat in [37.1, 37.5, 37.9] {
                let p = utm.forward(Coord::new(lon, lat)).unwrap();
                assert!(mapped.contains(p), "({lon},{lat}) -> {p} outside {mapped:?}");
            }
        }
    }

    #[test]
    fn map_region_identity_returns_bbox() {
        let region = Region::Rect(Rect::new(0.0, 0.0, 2.0, 2.0));
        let m = map_region(&region, &Crs::LatLon, &Crs::LatLon, 8).unwrap();
        assert_eq!(m, Rect::new(0.0, 0.0, 2.0, 2.0));
    }

    #[test]
    fn map_region_fully_invisible_is_empty() {
        // A region near the antipode of a geostationary satellite.
        let region = Region::Rect(Rect::new(100.0, -5.0, 110.0, 5.0));
        let err = map_region(&region, &Crs::LatLon, &Crs::geostationary(-75.0), 8);
        assert_eq!(err, Err(GeoError::EmptyRegion));
    }
}
