//! Reference ellipsoids and derived constants.
//!
//! The Transverse Mercator / UTM implementation uses the full ellipsoidal
//! (Krüger series) formulation; the remaining projections use the
//! authalic/spherical model, which is accurate enough for the streaming
//! experiments (the paper's operators are agnostic to datum precision).

use serde::{Deserialize, Serialize};

/// An oblate reference ellipsoid described by its semi-major axis and
/// inverse flattening.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ellipsoid {
    /// Semi-major axis `a` in meters.
    pub a: f64,
    /// Inverse flattening `1/f` (infinite for a sphere is not supported;
    /// use [`Ellipsoid::SPHERE`] which has a tiny but nonzero flattening
    /// of exactly 0 via `f = 0`).
    pub inv_f: f64,
}

impl Ellipsoid {
    /// WGS-84, the datum used by GPS and modern remote-sensing products.
    pub const WGS84: Ellipsoid = Ellipsoid { a: 6_378_137.0, inv_f: 298.257_223_563 };

    /// GRS-80 (used by NAD83); nearly identical to WGS-84.
    pub const GRS80: Ellipsoid = Ellipsoid { a: 6_378_137.0, inv_f: 298.257_222_101 };

    /// Clarke 1866 (NAD27); the ellipsoid of the worked UTM examples in
    /// Snyder's *Map Projections — A Working Manual*.
    pub const CLARKE1866: Ellipsoid = Ellipsoid { a: 6_378_206.4, inv_f: 294.978_698_213_9 };

    /// Sphere with the WGS-84 mean radius; `inv_f = f64::INFINITY` encodes
    /// zero flattening.
    pub const SPHERE: Ellipsoid = Ellipsoid { a: 6_371_008.8, inv_f: f64::INFINITY };

    /// Flattening `f`.
    #[inline]
    pub fn f(&self) -> f64 {
        if self.inv_f.is_infinite() {
            0.0
        } else {
            1.0 / self.inv_f
        }
    }

    /// Semi-minor axis `b = a (1 - f)`.
    #[inline]
    pub fn b(&self) -> f64 {
        self.a * (1.0 - self.f())
    }

    /// First eccentricity squared `e² = f (2 - f)`.
    #[inline]
    pub fn e2(&self) -> f64 {
        let f = self.f();
        f * (2.0 - f)
    }

    /// First eccentricity `e`.
    #[inline]
    pub fn e(&self) -> f64 {
        self.e2().sqrt()
    }

    /// Second eccentricity squared `e'² = e² / (1 - e²)`.
    #[inline]
    pub fn ep2(&self) -> f64 {
        let e2 = self.e2();
        e2 / (1.0 - e2)
    }

    /// Third flattening `n = f / (2 - f)`, the expansion parameter of the
    /// Krüger series.
    #[inline]
    pub fn n(&self) -> f64 {
        let f = self.f();
        f / (2.0 - f)
    }

    /// Radius of the rectifying circle `A = a/(1+n) (1 + n²/4 + n⁴/64 + …)`.
    #[inline]
    pub fn rectifying_radius(&self) -> f64 {
        let n = self.n();
        let n2 = n * n;
        self.a / (1.0 + n) * (1.0 + n2 / 4.0 + n2 * n2 / 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wgs84_constants() {
        let e = Ellipsoid::WGS84;
        assert!((e.b() - 6_356_752.314_245).abs() < 1e-3);
        assert!((e.e2() - 0.006_694_379_990_14).abs() < 1e-12);
        assert!((e.e() - 0.081_819_190_842_6).abs() < 1e-9);
    }

    #[test]
    fn sphere_has_zero_flattening() {
        let s = Ellipsoid::SPHERE;
        assert_eq!(s.f(), 0.0);
        assert_eq!(s.e2(), 0.0);
        assert_eq!(s.b(), s.a);
        assert_eq!(s.n(), 0.0);
        assert!((s.rectifying_radius() - s.a).abs() < 1e-9);
    }

    #[test]
    fn rectifying_radius_within_axis_bounds() {
        let e = Ellipsoid::WGS84;
        let aa = e.rectifying_radius();
        assert!(aa < e.a && aa > e.b());
        // Known value for WGS-84: A ≈ 6 367 449.1458 m.
        assert!((aa - 6_367_449.145_8).abs() < 1e-3);
    }

    #[test]
    fn third_flattening_matches_definition() {
        let e = Ellipsoid::WGS84;
        let f = e.f();
        assert!((e.n() - f / (2.0 - f)).abs() < 1e-18);
    }
}
