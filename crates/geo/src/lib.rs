//! Geospatial substrate for the GeoStreams system.
//!
//! This crate provides everything the streaming image algebra needs to be
//! *geo-referenced* (Definition 5 of the paper): coordinate reference
//! systems with forward/inverse map projections, planar regions used by
//! spatial restrictions, affine transforms, and the georeferencing of
//! regularly-spaced point lattices (Definition 1's "point lattice").
//!
//! Everything is implemented from scratch (no PROJ/GDAL bindings); the
//! projection formulas follow Snyder, *Map Projections — A Working Manual*
//! (USGS PP 1395) and the CGMS LRIT/HRIT specification for the
//! geostationary view used by GOES-style imagers.
//!
//! # Example
//!
//! ```
//! use geostreams_geo::{Crs, Coord, Region, Rect};
//!
//! // Project San Francisco into UTM zone 10 north.
//! let utm = Crs::utm(10, true);
//! let sf = Coord::new(-122.42, 37.77);
//! let xy = utm.forward(sf).unwrap();
//! assert!((xy.x - 551_000.0).abs() < 5_000.0);
//!
//! // Map a lat/lon query region into the UTM plane.
//! let region = Region::Rect(Rect::new(-123.0, 37.0, -122.0, 38.0));
//! let mapped = geostreams_geo::map_region(&region, &Crs::LatLon, &utm, 16).unwrap();
//! assert!(mapped.contains(xy));
//! ```

#![warn(missing_docs)]

pub mod affine;
pub mod coord;
pub mod crs;
pub mod ellipsoid;
pub mod error;
pub mod lattice;
pub mod projection;
pub mod region;

pub use affine::Affine;
pub use coord::{Cell, CellBox, Coord};
pub use crs::Crs;
pub use ellipsoid::Ellipsoid;
pub use error::{GeoError, Result};
pub use lattice::LatticeGeoref;
pub use projection::Projection;
pub use region::{map_region, HalfPlane, Polygon, Rect, Region};
