//! Albers equal-area conic, spherical form with two standard parallels
//! (Snyder PP 1395, eq. 14-1..14-11) — the standard projection for
//! area-preserving products (land-cover statistics, the USGS CONUS
//! grids).

use super::{checked_lonlat_rad, deg, norm_lon_deg, Projection};
use crate::coord::Coord;
use crate::ellipsoid::Ellipsoid;
use crate::error::{GeoError, Result};

/// Spherical Albers equal-area conic projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Albers {
    /// First standard parallel, degrees.
    pub lat1_deg: f64,
    /// Second standard parallel, degrees.
    pub lat2_deg: f64,
    /// Latitude of origin, degrees.
    pub lat0_deg: f64,
    /// Central meridian, degrees.
    pub lon0_deg: f64,
    /// Sphere radius, meters.
    pub radius: f64,
    n: f64,
    c: f64,
    rho0: f64,
}

impl Albers {
    /// Builds the projection; standard parallels must not be symmetric
    /// about the equator.
    pub fn new(lat1_deg: f64, lat2_deg: f64, lat0_deg: f64, lon0_deg: f64) -> Self {
        let radius = Ellipsoid::SPHERE.a;
        let p1 = lat1_deg.to_radians();
        let p2 = lat2_deg.to_radians();
        let p0 = lat0_deg.to_radians();
        let n = (p1.sin() + p2.sin()) / 2.0;
        let c = p1.cos().powi(2) + 2.0 * n * p1.sin();
        let rho0 = radius * (c - 2.0 * n * p0.sin()).sqrt() / n;
        Albers { lat1_deg, lat2_deg, lat0_deg, lon0_deg, radius, n, c, rho0 }
    }

    /// The USGS CONUS instance (29.5 / 45.5 / 23 / -96).
    pub fn conus() -> Self {
        Albers::new(29.5, 45.5, 23.0, -96.0)
    }
}

impl Projection for Albers {
    fn forward(&self, lonlat: Coord) -> Result<Coord> {
        let (lon, lat) = checked_lonlat_rad(lonlat)?;
        let under_root = self.c - 2.0 * self.n * lat.sin();
        if under_root < 0.0 {
            return Err(GeoError::OutOfDomain {
                projection: self.name(),
                coord: (lonlat.x, lonlat.y),
            });
        }
        let rho = self.radius * under_root.sqrt() / self.n;
        let theta = self.n * norm_lon_deg(deg(lon) - self.lon0_deg).to_radians();
        Ok(Coord::new(rho * theta.sin(), self.rho0 - rho * theta.cos()))
    }

    fn inverse(&self, xy: Coord) -> Result<Coord> {
        if !xy.is_finite() {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let dy = self.rho0 - xy.y;
        let rho = xy.x.hypot(dy) * self.n.signum();
        let theta = (self.n.signum() * xy.x).atan2(self.n.signum() * dy);
        let sin_lat = (self.c - (rho * self.n / self.radius).powi(2)) / (2.0 * self.n);
        if !(-1.0..=1.0).contains(&sin_lat) {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let lat = sin_lat.asin();
        let lon = norm_lon_deg(self.lon0_deg + deg(theta / self.n));
        Ok(Coord::new(lon, deg(lat)))
    }

    fn name(&self) -> &'static str {
        "albers"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_maps_to_zero() {
        let a = Albers::conus();
        let xy = a.forward(Coord::new(-96.0, 23.0)).unwrap();
        assert!(xy.x.abs() < 1e-6 && xy.y.abs() < 1e-6);
    }

    #[test]
    fn round_trip_conus() {
        let a = Albers::conus();
        for &(lon, lat) in
            &[(-122.4, 37.8), (-96.0, 39.0), (-70.0, 45.0), (-110.0, 30.0), (-85.0, 25.0)]
        {
            let xy = a.forward(Coord::new(lon, lat)).unwrap();
            let ll = a.inverse(xy).unwrap();
            assert!((ll.x - lon).abs() < 1e-8, "lon {lon} -> {}", ll.x);
            assert!((ll.y - lat).abs() < 1e-8, "lat {lat} -> {}", ll.y);
        }
    }

    #[test]
    fn preserves_area_ratios() {
        // Two 1°x1° cells at different latitudes have area ratio
        // cos(lat_hi)/cos(lat_lo) on the sphere; the projected
        // quadrilaterals must match that ratio (equal-area property).
        let a = Albers::conus();
        let cell_area = |lon: f64, lat: f64| {
            let p = |dx: f64, dy: f64| a.forward(Coord::new(lon + dx, lat + dy)).unwrap();
            let (p00, p10, p11, p01) = (p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0));
            // Shoelace formula.
            0.5 * ((p00.x * p10.y - p10.x * p00.y)
                + (p10.x * p11.y - p11.x * p10.y)
                + (p11.x * p01.y - p01.x * p11.y)
                + (p01.x * p00.y - p00.x * p01.y))
                .abs()
        };
        let low = cell_area(-96.0, 25.0);
        let high = cell_area(-96.0, 45.0);
        let expect = (45.5f64.to_radians().cos() / 25.5f64.to_radians().cos()).abs();
        let got = high / low;
        assert!((got - expect).abs() / expect < 0.01, "ratio {got} vs {expect}");
    }

    #[test]
    fn rejects_out_of_domain_inverse() {
        let a = Albers::conus();
        assert!(a.inverse(Coord::new(1e9, 1e9)).is_err());
    }
}
