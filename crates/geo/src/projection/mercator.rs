//! Spherical Mercator (Snyder PP 1395, eq. 7-1/7-4).

use super::{checked_lonlat_rad, deg, norm_lon_deg, Projection};
use crate::coord::Coord;
use crate::ellipsoid::Ellipsoid;
use crate::error::{GeoError, Result};
use std::f64::consts::FRAC_PI_4;

/// Maximum latitude the (web-style) Mercator accepts, in degrees.
pub const MERCATOR_MAX_LAT: f64 = 85.051_128_779_806_6;

/// Spherical Mercator centered on a configurable central meridian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mercator {
    /// Central meridian in degrees.
    pub lon0_deg: f64,
    /// Sphere radius in meters.
    pub radius: f64,
}

impl Default for Mercator {
    fn default() -> Self {
        Mercator { lon0_deg: 0.0, radius: Ellipsoid::SPHERE.a }
    }
}

impl Mercator {
    /// Creates a Mercator projection about the given central meridian.
    pub fn new(lon0_deg: f64) -> Self {
        Mercator { lon0_deg, ..Default::default() }
    }
}

impl Projection for Mercator {
    fn forward(&self, lonlat: Coord) -> Result<Coord> {
        let (lon, lat) = checked_lonlat_rad(lonlat)?;
        if lonlat.y.abs() > MERCATOR_MAX_LAT {
            return Err(GeoError::OutOfDomain {
                projection: self.name(),
                coord: (lonlat.x, lonlat.y),
            });
        }
        let dlon = norm_lon_deg(deg(lon) - self.lon0_deg).to_radians();
        let x = self.radius * dlon;
        let y = self.radius * (FRAC_PI_4 + lat / 2.0).tan().ln();
        Ok(Coord::new(x, y))
    }

    fn inverse(&self, xy: Coord) -> Result<Coord> {
        if !xy.is_finite() {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let lon = norm_lon_deg(deg(xy.x / self.radius) + self.lon0_deg);
        let lat = deg(2.0 * (xy.y / self.radius).exp().atan() - std::f64::consts::FRAC_PI_2);
        Ok(Coord::new(lon, lat))
    }

    fn name(&self) -> &'static str {
        "mercator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equator_scales_linearly() {
        let m = Mercator::default();
        let p = m.forward(Coord::new(90.0, 0.0)).unwrap();
        assert!((p.x - m.radius * std::f64::consts::FRAC_PI_2).abs() < 1e-6);
        assert!(p.y.abs() < 1e-9);
    }

    #[test]
    fn round_trip_mid_latitudes() {
        let m = Mercator::new(-75.0);
        for &(lon, lat) in &[(-122.4, 37.8), (10.0, -45.0), (-75.0, 60.0), (179.0, 80.0)] {
            let xy = m.forward(Coord::new(lon, lat)).unwrap();
            let ll = m.inverse(xy).unwrap();
            assert!((ll.x - lon).abs() < 1e-9, "lon {lon} -> {}", ll.x);
            assert!((ll.y - lat).abs() < 1e-9, "lat {lat} -> {}", ll.y);
        }
    }

    #[test]
    fn rejects_poles() {
        let m = Mercator::default();
        assert!(m.forward(Coord::new(0.0, 89.9)).is_err());
        assert!(m.forward(Coord::new(0.0, -90.0)).is_err());
    }
}
