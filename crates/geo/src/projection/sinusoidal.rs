//! Sinusoidal (Sanson–Flamsteed) equal-area projection (Snyder eq. 30-1),
//! the native grid of the MODIS land products mentioned in the paper's
//! introduction (Aqua/Terra).

use super::{checked_lonlat_rad, deg, norm_lon_deg, Projection};
use crate::coord::Coord;
use crate::ellipsoid::Ellipsoid;
use crate::error::{GeoError, Result};

/// Spherical sinusoidal projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sinusoidal {
    /// Central meridian, degrees.
    pub lon0_deg: f64,
    /// Sphere radius, meters.
    pub radius: f64,
}

impl Sinusoidal {
    /// Creates the projection about a central meridian.
    pub fn new(lon0_deg: f64) -> Self {
        Sinusoidal { lon0_deg, radius: Ellipsoid::SPHERE.a }
    }
}

impl Default for Sinusoidal {
    fn default() -> Self {
        Sinusoidal::new(0.0)
    }
}

impl Projection for Sinusoidal {
    fn forward(&self, lonlat: Coord) -> Result<Coord> {
        let (lon, lat) = checked_lonlat_rad(lonlat)?;
        let dlon = norm_lon_deg(deg(lon) - self.lon0_deg).to_radians();
        Ok(Coord::new(self.radius * dlon * lat.cos(), self.radius * lat))
    }

    fn inverse(&self, xy: Coord) -> Result<Coord> {
        if !xy.is_finite() {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let lat = xy.y / self.radius;
        if lat.abs() > std::f64::consts::FRAC_PI_2 + 1e-12 {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let cos_lat = lat.cos();
        let dlon = if cos_lat.abs() < 1e-12 { 0.0 } else { xy.x / (self.radius * cos_lat) };
        if dlon.abs() > std::f64::consts::PI + 1e-9 {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        Ok(Coord::new(norm_lon_deg(self.lon0_deg + deg(dlon)), deg(lat)))
    }

    fn name(&self) -> &'static str {
        "sinusoidal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equator_is_linear_in_longitude() {
        let s = Sinusoidal::default();
        let p = s.forward(Coord::new(90.0, 0.0)).unwrap();
        assert!((p.x - s.radius * std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn meridian_lengths_shrink_with_latitude() {
        let s = Sinusoidal::default();
        let low = s.forward(Coord::new(10.0, 0.0)).unwrap();
        let high = s.forward(Coord::new(10.0, 60.0)).unwrap();
        assert!((high.x - low.x / 2.0).abs() < 1.0); // cos 60° = 0.5
    }

    #[test]
    fn round_trip() {
        let s = Sinusoidal::new(-100.0);
        for &(lon, lat) in &[(-122.0, 38.0), (-60.0, -25.0), (-100.0, 89.0), (79.9, 0.0)] {
            let xy = s.forward(Coord::new(lon, lat)).unwrap();
            let ll = s.inverse(xy).unwrap();
            assert!((ll.x - lon).abs() < 1e-8, "lon {lon} -> {}", ll.x);
            assert!((ll.y - lat).abs() < 1e-8, "lat {lat} -> {}", ll.y);
        }
    }

    #[test]
    fn out_of_range_planar_rejected() {
        let s = Sinusoidal::default();
        assert!(s.inverse(Coord::new(0.0, s.radius * 2.0)).is_err());
        assert!(s.inverse(Coord::new(s.radius * 4.0, 0.0)).is_err());
    }
}
