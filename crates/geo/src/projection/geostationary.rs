//! Geostationary satellite view ("GEOS" projection).
//!
//! This is the native acquisition geometry of GOES-class imagers: the
//! paper's prototype receives streams in the *GOES Variable Format*, a
//! satellite-specific coordinate system, and re-projects them to
//! latitude/longitude inside the DSMS (§4). Our simulator emits streams on
//! this fixed grid and the re-projection operator uses this projection's
//! forward/inverse pair.
//!
//! Formulas follow the GOES-R Product Definition and User's Guide (PUG,
//! Vol. 3 §5.1.2.8) / CGMS LRIT-HRIT navigation, ellipsoidal form. Planar
//! coordinates are scan angles multiplied by the satellite height above
//! the surface (the PROJ `geos` convention), i.e. approximate meters at
//! the sub-satellite point.

use super::{checked_lonlat_rad, deg, norm_lon_deg, Projection};
use crate::coord::Coord;
use crate::ellipsoid::Ellipsoid;
use crate::error::{GeoError, Result};

/// Distance of a geostationary satellite from the Earth's center, meters.
pub const GEO_ORBIT_RADIUS: f64 = 42_164_160.0;

/// Geostationary view projection for a satellite at a fixed longitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geostationary {
    /// Sub-satellite longitude, degrees (GOES-East ≈ -75, GOES-West ≈ -137).
    pub lon0_deg: f64,
    /// Reference ellipsoid.
    pub ellipsoid: Ellipsoid,
    /// Satellite distance from the Earth center, meters.
    pub orbit_radius: f64,
}

impl Geostationary {
    /// Creates a geostationary view for the given sub-satellite longitude.
    pub fn new(lon0_deg: f64) -> Self {
        Geostationary { lon0_deg, ellipsoid: Ellipsoid::WGS84, orbit_radius: GEO_ORBIT_RADIUS }
    }

    /// Height above the sub-satellite surface point (the planar scale).
    #[inline]
    pub fn height(&self) -> f64 {
        self.orbit_radius - self.ellipsoid.a
    }

    /// Ratio `r_eq² / r_pol²`.
    #[inline]
    fn axis_ratio2(&self) -> f64 {
        let a = self.ellipsoid.a;
        let b = self.ellipsoid.b();
        (a * a) / (b * b)
    }
}

impl Projection for Geostationary {
    fn forward(&self, lonlat: Coord) -> Result<Coord> {
        let (lon, lat) = checked_lonlat_rad(lonlat)?;
        let dlon = norm_lon_deg(deg(lon) - self.lon0_deg).to_radians();
        let h_total = self.orbit_radius;
        let e2 = self.ellipsoid.e2();
        let r_pol = self.ellipsoid.b();

        // Geocentric latitude and radius of the surface point.
        let phi_c = ((1.0 - e2) * lat.tan()).atan();
        let rc = r_pol / (1.0 - e2 * phi_c.cos().powi(2)).sqrt();

        // Satellite-centered coordinates (x toward Earth center).
        let sx = h_total - rc * phi_c.cos() * dlon.cos();
        let sy = -rc * phi_c.cos() * dlon.sin();
        let sz = rc * phi_c.sin();

        // Visibility: the surface normal must face the satellite.
        if h_total * (h_total - sx) < sy * sy + self.axis_ratio2() * sz * sz {
            return Err(GeoError::OutOfDomain {
                projection: self.name(),
                coord: (lonlat.x, lonlat.y),
            });
        }

        let rs = (sx * sx + sy * sy + sz * sz).sqrt();
        let x_ang = (-sy / rs).asin();
        let y_ang = (sz / sx).atan();
        let h = self.height();
        Ok(Coord::new(h * x_ang, h * y_ang))
    }

    fn inverse(&self, xy: Coord) -> Result<Coord> {
        if !xy.is_finite() {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let h = self.height();
        let x = xy.x / h;
        let y = xy.y / h;
        let h_total = self.orbit_radius;
        let r_eq = self.ellipsoid.a;
        let ratio2 = self.axis_ratio2();

        let (sin_x, cos_x) = x.sin_cos();
        let (sin_y, cos_y) = y.sin_cos();
        let a_ = sin_x * sin_x + cos_x * cos_x * (cos_y * cos_y + ratio2 * sin_y * sin_y);
        let b_ = -2.0 * h_total * cos_x * cos_y;
        let c_ = h_total * h_total - r_eq * r_eq;
        let disc = b_ * b_ - 4.0 * a_ * c_;
        if disc < 0.0 {
            // The view ray misses the Earth.
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let rs = (-b_ - disc.sqrt()) / (2.0 * a_);
        let sx = rs * cos_x * cos_y;
        let sy = -rs * sin_x;
        let sz = rs * cos_x * sin_y;

        let lat = (ratio2 * sz / ((h_total - sx).hypot(sy))).atan();
        let lon = self.lon0_deg - deg((sy / (h_total - sx)).atan());
        Ok(Coord::new(norm_lon_deg(lon), deg(lat)))
    }

    fn name(&self) -> &'static str {
        "geostationary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_satellite_point_is_origin() {
        let g = Geostationary::new(-75.0);
        let xy = g.forward(Coord::new(-75.0, 0.0)).unwrap();
        assert!(xy.x.abs() < 1e-6 && xy.y.abs() < 1e-6);
        let ll = g.inverse(Coord::new(0.0, 0.0)).unwrap();
        assert!((ll.x + 75.0).abs() < 1e-9 && ll.y.abs() < 1e-9);
    }

    #[test]
    fn far_side_is_invisible() {
        let g = Geostationary::new(-75.0);
        assert!(g.forward(Coord::new(105.0, 0.0)).is_err()); // antipode
        assert!(g.forward(Coord::new(10.0, 0.0)).is_err()); // just past limb
    }

    #[test]
    fn limb_neighborhood_visible_inside() {
        let g = Geostationary::new(0.0);
        // The limb is at about 81.3° great-circle distance from nadir.
        assert!(g.forward(Coord::new(75.0, 0.0)).is_ok());
        assert!(g.forward(Coord::new(85.0, 0.0)).is_err());
    }

    #[test]
    fn round_trip_visible_disk() {
        let g = Geostationary::new(-75.0);
        for &(lon, lat) in &[
            (-75.0, 0.0),
            (-122.4, 37.8),
            (-45.0, -30.0),
            (-100.0, 45.0),
            (-75.0, 70.0),
            (-20.0, 10.0),
        ] {
            let xy = g.forward(Coord::new(lon, lat)).unwrap();
            let ll = g.inverse(xy).unwrap();
            assert!((ll.x - lon).abs() < 1e-6, "lon {lon} -> {}", ll.x);
            assert!((ll.y - lat).abs() < 1e-6, "lat {lat} -> {}", ll.y);
        }
    }

    #[test]
    fn scan_angles_scale_with_height() {
        let g = Geostationary::new(0.0);
        // A point one degree east of nadir on the equator subtends roughly
        // earth-radius*1° / height scan angle.
        let xy = g.forward(Coord::new(1.0, 0.0)).unwrap();
        let arc = Ellipsoid::WGS84.a * 1f64.to_radians();
        // Apparent size is a bit larger than arc/height (oblique factor ≈ 1).
        let expected = arc; // x is angle*h ≈ ground meters near nadir
        assert!((xy.x - expected).abs() / expected < 0.05, "x={} expected≈{}", xy.x, expected);
    }

    #[test]
    fn off_disk_planar_rejected() {
        let g = Geostationary::new(0.0);
        let h = g.height();
        assert!(g.inverse(Coord::new(0.3 * h, 0.0)).is_err());
    }
}
