//! Polar stereographic, spherical form (Snyder PP 1395, eq. 21-1..21-15)
//! — the projection of choice for polar-orbiter products and sea-ice
//! grids, complementing the geostationary view which cannot see the
//! poles.

use super::{checked_lonlat_rad, deg, norm_lon_deg, Projection};
use crate::coord::Coord;
use crate::ellipsoid::Ellipsoid;
use crate::error::{GeoError, Result};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// Spherical polar stereographic projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolarStereographic {
    /// True for the north-pole aspect, false for the south-pole aspect.
    pub north: bool,
    /// Central meridian, degrees.
    pub lon0_deg: f64,
    /// Scale factor at the pole (0.994 for the standard sea-ice grids).
    pub k0: f64,
    /// Sphere radius, meters.
    pub radius: f64,
}

impl PolarStereographic {
    /// Creates a polar aspect about a central meridian.
    pub fn new(north: bool, lon0_deg: f64) -> Self {
        PolarStereographic { north, lon0_deg, k0: 0.994, radius: Ellipsoid::SPHERE.a }
    }
}

impl Projection for PolarStereographic {
    fn forward(&self, lonlat: Coord) -> Result<Coord> {
        let (lon, lat) = checked_lonlat_rad(lonlat)?;
        // The opposite hemisphere's far half is outside the useful
        // domain (the opposite pole maps to infinity).
        let signed_lat = if self.north { lat } else { -lat };
        if signed_lat < -60f64.to_radians() {
            return Err(GeoError::OutOfDomain {
                projection: self.name(),
                coord: (lonlat.x, lonlat.y),
            });
        }
        let dlon = norm_lon_deg(deg(lon) - self.lon0_deg).to_radians();
        let rho = 2.0 * self.radius * self.k0 * (FRAC_PI_4 - signed_lat / 2.0).tan();
        let (x, y) = if self.north {
            (rho * dlon.sin(), -rho * dlon.cos())
        } else {
            (rho * dlon.sin(), rho * dlon.cos())
        };
        Ok(Coord::new(x, y))
    }

    fn inverse(&self, xy: Coord) -> Result<Coord> {
        if !xy.is_finite() {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let rho = xy.x.hypot(xy.y);
        let signed_lat = FRAC_PI_2 - 2.0 * (rho / (2.0 * self.radius * self.k0)).atan();
        let dlon = if rho < 1e-12 {
            0.0
        } else if self.north {
            xy.x.atan2(-xy.y)
        } else {
            xy.x.atan2(xy.y)
        };
        let lat = if self.north { signed_lat } else { -signed_lat };
        Ok(Coord::new(norm_lon_deg(self.lon0_deg + deg(dlon)), deg(lat)))
    }

    fn name(&self) -> &'static str {
        "polar_stereographic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pole_maps_to_origin() {
        let n = PolarStereographic::new(true, -45.0);
        let xy = n.forward(Coord::new(0.0, 90.0)).unwrap();
        assert!(xy.x.abs() < 1e-6 && xy.y.abs() < 1e-6);
        let s = PolarStereographic::new(false, 0.0);
        let xy = s.forward(Coord::new(120.0, -90.0)).unwrap();
        assert!(xy.x.abs() < 1e-6 && xy.y.abs() < 1e-6);
    }

    #[test]
    fn round_trip_both_aspects() {
        for north in [true, false] {
            let p = PolarStereographic::new(north, -45.0);
            let sign = if north { 1.0 } else { -1.0 };
            for &(lon, lat) in &[(0.0, 80.0), (-120.0, 65.0), (173.0, 40.0), (-45.0, 89.9)] {
                let lat = sign * lat;
                let xy = p.forward(Coord::new(lon, lat)).unwrap();
                let ll = p.inverse(xy).unwrap();
                assert!((ll.x - lon).abs() < 1e-8, "north={north} lon {lon} -> {}", ll.x);
                assert!((ll.y - lat).abs() < 1e-8, "north={north} lat {lat} -> {}", ll.y);
            }
        }
    }

    #[test]
    fn central_meridian_points_down_for_north_aspect() {
        // On the north aspect, the central meridian runs toward -y.
        let p = PolarStereographic::new(true, -45.0);
        let xy = p.forward(Coord::new(-45.0, 70.0)).unwrap();
        assert!(xy.x.abs() < 1e-6);
        assert!(xy.y < 0.0);
    }

    #[test]
    fn far_hemisphere_rejected() {
        let p = PolarStereographic::new(true, 0.0);
        assert!(p.forward(Coord::new(0.0, -75.0)).is_err());
        assert!(p.forward(Coord::new(0.0, -50.0)).is_ok());
    }

    #[test]
    fn scale_near_pole_matches_k0() {
        // Near the pole, distances scale by ~2 k0 tan(colat/2)/colat ≈ k0.
        let p = PolarStereographic::new(true, 0.0);
        let a = p.forward(Coord::new(0.0, 89.0)).unwrap();
        let b = p.forward(Coord::new(180.0, 89.0)).unwrap();
        let dist = a.distance(b);
        let arc = 2.0 * p.radius * 1f64.to_radians(); // 2° of colatitude
        assert!((dist / arc - p.k0).abs() < 0.001, "{}", dist / arc);
    }
}
