//! Plate Carrée / equirectangular "projection": the identity on degrees.
//!
//! This is the coordinate system the prototype DSMS of §4 serves to its
//! web clients ("the coordinate system used in this interface is
//! latitude/longitude").

use super::{norm_lon_deg, Projection};
use crate::coord::Coord;
use crate::error::{GeoError, Result};

/// The identity projection: planar coordinates are `(lon, lat)` degrees.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlateCarree;

impl Projection for PlateCarree {
    fn forward(&self, lonlat: Coord) -> Result<Coord> {
        if !lonlat.is_finite() || lonlat.y.abs() > 90.0 + 1e-9 {
            return Err(GeoError::InvalidLatLon { lon: lonlat.x, lat: lonlat.y });
        }
        Ok(Coord::new(norm_lon_deg(lonlat.x), lonlat.y))
    }

    fn inverse(&self, xy: Coord) -> Result<Coord> {
        self.forward(xy)
    }

    fn name(&self) -> &'static str {
        "latlon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let p = PlateCarree;
        let c = Coord::new(-122.5, 38.25);
        assert_eq!(p.forward(c).unwrap(), c);
        assert_eq!(p.inverse(c).unwrap(), c);
    }

    #[test]
    fn normalizes_longitude() {
        let p = PlateCarree;
        assert_eq!(p.forward(Coord::new(200.0, 0.0)).unwrap().x, -160.0);
    }

    #[test]
    fn rejects_bad_latitude() {
        assert!(PlateCarree.forward(Coord::new(0.0, 95.0)).is_err());
    }
}
