//! Map projections, from scratch.
//!
//! Each projection converts geographic coordinates (longitude/latitude in
//! **degrees**, WGS-84) to planar coordinates (meters) and back. The paper
//! uses re-projection (`f_spat` of Definition 9) as its flagship "spatial
//! transform" — and the prototype in §4 re-projects the native GOES
//! Variable-Format grid to latitude/longitude — so this module provides the
//! geostationary satellite view plus the common cartographic projections a
//! GIS client would request (UTM is the paper's §3.4 example).
//!
//! Formulas follow Snyder (USGS PP 1395) for the classical projections and
//! the GOES-R Product User's Guide / CGMS LRIT-HRIT spec for the
//! geostationary fixed grid.

mod albers;
mod geostationary;
mod lambert;
mod latlon;
mod mercator;
mod sinusoidal;
mod stereographic;
mod transverse_mercator;

pub use albers::Albers;
pub use geostationary::Geostationary;
pub use lambert::LambertConformal;
pub use latlon::PlateCarree;
pub use mercator::Mercator;
pub use sinusoidal::Sinusoidal;
pub use stereographic::PolarStereographic;
pub use transverse_mercator::TransverseMercator;

use crate::coord::Coord;
use crate::error::Result;

/// A forward/inverse pair between geographic coordinates (degrees) and a
/// planar coordinate space (meters, except [`PlateCarree`] which keeps
/// degrees).
///
/// Implementations must satisfy `inverse(forward(p)) ≈ p` on their domain;
/// this invariant is property-tested for every projection in the crate.
pub trait Projection: Send + Sync + std::fmt::Debug {
    /// Projects geographic `(lon, lat)` degrees into planar coordinates.
    fn forward(&self, lonlat: Coord) -> Result<Coord>;

    /// Recovers geographic `(lon, lat)` degrees from planar coordinates.
    fn inverse(&self, xy: Coord) -> Result<Coord>;

    /// Short human-readable name used in errors and plans.
    fn name(&self) -> &'static str;
}

/// Degrees-to-radians.
#[inline]
pub(crate) fn rad(deg: f64) -> f64 {
    deg.to_radians()
}

/// Radians-to-degrees.
#[inline]
pub(crate) fn deg(rad: f64) -> f64 {
    rad.to_degrees()
}

/// Normalizes a longitude difference into `(-180, 180]` degrees.
#[inline]
pub(crate) fn norm_lon_deg(mut lon: f64) -> f64 {
    while lon > 180.0 {
        lon -= 360.0;
    }
    while lon <= -180.0 {
        lon += 360.0;
    }
    lon
}

/// Validates a geographic coordinate and returns it in radians.
pub(crate) fn checked_lonlat_rad(lonlat: Coord) -> Result<(f64, f64)> {
    if !lonlat.is_finite() || lonlat.y.abs() > 90.0 + 1e-9 || lonlat.x.abs() > 360.0 {
        return Err(crate::error::GeoError::InvalidLatLon { lon: lonlat.x, lat: lonlat.y });
    }
    Ok((rad(norm_lon_deg(lonlat.x)), rad(lonlat.y.clamp(-90.0, 90.0))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lon_normalization_wraps_into_half_open_interval() {
        assert_eq!(norm_lon_deg(190.0), -170.0);
        assert_eq!(norm_lon_deg(-190.0), 170.0);
        assert_eq!(norm_lon_deg(180.0), 180.0);
        assert_eq!(norm_lon_deg(-180.0), 180.0);
        assert_eq!(norm_lon_deg(540.0), 180.0);
    }

    #[test]
    fn invalid_latitudes_are_rejected() {
        assert!(checked_lonlat_rad(Coord::new(0.0, 91.0)).is_err());
        assert!(checked_lonlat_rad(Coord::new(0.0, f64::NAN)).is_err());
        assert!(checked_lonlat_rad(Coord::new(0.0, 89.0)).is_ok());
    }
}
