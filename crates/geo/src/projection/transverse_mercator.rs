//! Ellipsoidal Transverse Mercator via the Krüger series (order n⁴),
//! the projection behind UTM — the coordinate system of the paper's
//! §3.4 query-rewriting example (`f_UTM`).
//!
//! Series coefficients follow Karney, "Transverse Mercator with an
//! accuracy of a few nanometers" (2011), truncated to fourth order in the
//! third flattening, which yields sub-millimeter accuracy within UTM
//! zones.

use super::{checked_lonlat_rad, deg, norm_lon_deg, Projection};
use crate::coord::Coord;
use crate::ellipsoid::Ellipsoid;
use crate::error::{GeoError, Result};

/// Ellipsoidal Transverse Mercator projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransverseMercator {
    /// Central meridian, degrees.
    pub lon0_deg: f64,
    /// Scale factor on the central meridian (`0.9996` for UTM).
    pub k0: f64,
    /// False easting in meters.
    pub false_easting: f64,
    /// False northing in meters.
    pub false_northing: f64,
    /// Reference ellipsoid.
    pub ellipsoid: Ellipsoid,
    // Precomputed series coefficients.
    alpha: [f64; 4],
    beta: [f64; 4],
    /// Rectifying radius times k0.
    k0_a_rect: f64,
}

impl TransverseMercator {
    /// Builds a Transverse Mercator projection with explicit parameters.
    pub fn new(
        lon0_deg: f64,
        k0: f64,
        false_easting: f64,
        false_northing: f64,
        ellipsoid: Ellipsoid,
    ) -> Self {
        let n = ellipsoid.n();
        let (n2, n3, n4) = (n * n, n * n * n, n * n * n * n);
        let alpha = [
            n / 2.0 - 2.0 * n2 / 3.0 + 5.0 * n3 / 16.0 + 41.0 * n4 / 180.0,
            13.0 * n2 / 48.0 - 3.0 * n3 / 5.0 + 557.0 * n4 / 1440.0,
            61.0 * n3 / 240.0 - 103.0 * n4 / 140.0,
            49561.0 * n4 / 161280.0,
        ];
        let beta = [
            n / 2.0 - 2.0 * n2 / 3.0 + 37.0 * n3 / 96.0 - n4 / 360.0,
            n2 / 48.0 + n3 / 15.0 - 437.0 * n4 / 1440.0,
            17.0 * n3 / 480.0 - 37.0 * n4 / 840.0,
            4397.0 * n4 / 161280.0,
        ];
        let k0_a_rect = k0 * ellipsoid.rectifying_radius();
        TransverseMercator {
            lon0_deg,
            k0,
            false_easting,
            false_northing,
            ellipsoid,
            alpha,
            beta,
            k0_a_rect,
        }
    }

    /// The UTM instance for a zone (1..=60) and hemisphere.
    pub fn utm(zone: u8, north: bool) -> Result<Self> {
        if zone == 0 || zone > 60 {
            return Err(GeoError::InvalidUtmZone(zone));
        }
        let lon0 = f64::from(zone) * 6.0 - 183.0;
        let fn_ = if north { 0.0 } else { 10_000_000.0 };
        Ok(TransverseMercator::new(lon0, 0.9996, 500_000.0, fn_, Ellipsoid::WGS84))
    }

    /// Conformal-latitude parameter `t = sinh(ψ)` for a geodetic latitude.
    fn conformal_t(&self, phi: f64) -> f64 {
        let e = self.ellipsoid.e();
        let s = phi.sin();
        (s.atanh() - e * (e * s).atanh()).sinh()
    }
}

impl Projection for TransverseMercator {
    fn forward(&self, lonlat: Coord) -> Result<Coord> {
        let (lon, lat) = checked_lonlat_rad(lonlat)?;
        let dlon = norm_lon_deg(deg(lon) - self.lon0_deg).to_radians();
        // The series diverges far from the central meridian; UTM use stays
        // well within ±6°, we allow a generous ±60°.
        if dlon.abs() > 60f64.to_radians() {
            return Err(GeoError::OutOfDomain {
                projection: self.name(),
                coord: (lonlat.x, lonlat.y),
            });
        }
        let t = self.conformal_t(lat);
        let xi_p = t.atan2(dlon.cos());
        let eta_p = (dlon.sin() / t.hypot(dlon.cos())).asinh();
        let mut xi = xi_p;
        let mut eta = eta_p;
        for (j, a) in self.alpha.iter().enumerate() {
            let k = 2.0 * (j as f64 + 1.0);
            xi += a * (k * xi_p).sin() * (k * eta_p).cosh();
            eta += a * (k * xi_p).cos() * (k * eta_p).sinh();
        }
        Ok(Coord::new(
            self.false_easting + self.k0_a_rect * eta,
            self.false_northing + self.k0_a_rect * xi,
        ))
    }

    fn inverse(&self, xy: Coord) -> Result<Coord> {
        if !xy.is_finite() {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let xi = (xy.y - self.false_northing) / self.k0_a_rect;
        let eta = (xy.x - self.false_easting) / self.k0_a_rect;
        let mut xi_p = xi;
        let mut eta_p = eta;
        for (j, b) in self.beta.iter().enumerate() {
            let k = 2.0 * (j as f64 + 1.0);
            xi_p -= b * (k * xi).sin() * (k * eta).cosh();
            eta_p -= b * (k * xi).cos() * (k * eta).sinh();
        }
        // Geographic longitude offset and the conformal parameter t'.
        let dlon = eta_p.sinh().atan2(xi_p.cos());
        let t_p = xi_p.sin() / eta_p.sinh().hypot(xi_p.cos());
        // Newton-iterate geodetic latitude from conformal t.
        let e = self.ellipsoid.e();
        let e2 = self.ellipsoid.e2();
        let mut phi = t_p.atan();
        let mut converged = false;
        for _ in 0..12 {
            let s = phi.sin();
            let t = self.conformal_t(phi);
            // d t / d phi = sqrt(1 + t^2) * (1 - e^2) / (1 - e^2 s^2) / cos(phi)
            let dt = (1.0 + t * t).sqrt() * (1.0 - e2) / ((1.0 - e2 * s * s) * phi.cos());
            let delta = (t - t_p) / dt;
            phi -= delta;
            if delta.abs() < 1e-14 {
                converged = true;
                break;
            }
        }
        // Suppress unused warning for e (kept for readability of formulas).
        let _ = e;
        if !converged {
            return Err(GeoError::NoConvergence { projection: self.name() });
        }
        Ok(Coord::new(norm_lon_deg(self.lon0_deg + deg(dlon)), deg(phi)))
    }

    fn name(&self) -> &'static str {
        "transverse_mercator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Snyder PP 1395 (p. 269-270) worked example: Clarke 1866 ellipsoid,
    /// φ = 40°30'N, λ = 73°30'W, UTM zone 18 → x = 627 106.5 m,
    /// y = 4 484 124.4 m.
    #[test]
    fn utm_known_point_zone18_snyder() {
        let tm = TransverseMercator::new(-75.0, 0.9996, 500_000.0, 0.0, Ellipsoid::CLARKE1866);
        let xy = tm.forward(Coord::new(-73.5, 40.5)).unwrap();
        assert!((xy.x - 627_106.5).abs() < 0.5, "easting {}", xy.x);
        assert!((xy.y - 4_484_124.4).abs() < 0.5, "northing {}", xy.y);
    }

    /// On WGS-84 the same point shifts by a few meters relative to
    /// Clarke 1866 (datum difference); pin the value as a regression
    /// anchor (agrees with PROJ `+proj=utm +zone=18` to centimeters).
    #[test]
    fn utm_known_point_zone18_wgs84() {
        let tm = TransverseMercator::utm(18, true).unwrap();
        let xy = tm.forward(Coord::new(-73.5, 40.5)).unwrap();
        assert!((xy.x - 627_103.09).abs() < 0.5, "easting {}", xy.x);
    }

    #[test]
    fn utm_central_meridian_maps_to_false_easting() {
        let tm = TransverseMercator::utm(10, true).unwrap();
        // Zone 10 central meridian is -123°.
        let xy = tm.forward(Coord::new(-123.0, 45.0)).unwrap();
        assert!((xy.x - 500_000.0).abs() < 1e-6);
    }

    #[test]
    fn southern_hemisphere_false_northing() {
        let tm = TransverseMercator::utm(56, false).unwrap();
        // Sydney, Australia ≈ (151.2, -33.87) → N ≈ 6 250 000 (below 10M).
        let xy = tm.forward(Coord::new(151.2, -33.87)).unwrap();
        assert!(xy.y > 6_000_000.0 && xy.y < 6_500_000.0, "northing {}", xy.y);
    }

    #[test]
    fn round_trip_across_zone() {
        let tm = TransverseMercator::utm(10, true).unwrap();
        for lon in [-126.0, -124.5, -123.0, -121.5, -120.0] {
            for lat in [-80.0, -35.0, 0.0, 37.77, 84.0] {
                let xy = tm.forward(Coord::new(lon, lat)).unwrap();
                let ll = tm.inverse(xy).unwrap();
                assert!((ll.x - lon).abs() < 1e-9, "lon {lon} -> {}", ll.x);
                assert!((ll.y - lat).abs() < 1e-9, "lat {lat} -> {}", ll.y);
            }
        }
    }

    #[test]
    fn invalid_zone_rejected() {
        assert!(TransverseMercator::utm(0, true).is_err());
        assert!(TransverseMercator::utm(61, true).is_err());
    }

    #[test]
    fn far_from_meridian_rejected() {
        let tm = TransverseMercator::utm(10, true).unwrap();
        assert!(tm.forward(Coord::new(60.0, 10.0)).is_err());
    }
}
