//! Lambert conformal conic, spherical form with two standard parallels
//! (Snyder PP 1395, eq. 15-1..15-5). The classic projection for
//! mid-latitude weather products derived from GOES imagery.

use super::{checked_lonlat_rad, deg, norm_lon_deg, Projection};
use crate::coord::Coord;
use crate::ellipsoid::Ellipsoid;
use crate::error::{GeoError, Result};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// Lambert conformal conic projection (spherical, two standard parallels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LambertConformal {
    /// Latitude of the first standard parallel, degrees.
    pub lat1_deg: f64,
    /// Latitude of the second standard parallel, degrees.
    pub lat2_deg: f64,
    /// Latitude of origin, degrees.
    pub lat0_deg: f64,
    /// Central meridian, degrees.
    pub lon0_deg: f64,
    /// Sphere radius, meters.
    pub radius: f64,
    // Precomputed cone constants.
    n: f64,
    f: f64,
    rho0: f64,
}

impl LambertConformal {
    /// Builds the projection; the standard parallels must not be symmetric
    /// about the equator (the cone degenerates to a cylinder).
    pub fn new(lat1_deg: f64, lat2_deg: f64, lat0_deg: f64, lon0_deg: f64) -> Self {
        let radius = Ellipsoid::SPHERE.a;
        let p1 = lat1_deg.to_radians();
        let p2 = lat2_deg.to_radians();
        let p0 = lat0_deg.to_radians();
        let n = if (lat1_deg - lat2_deg).abs() < 1e-9 {
            p1.sin()
        } else {
            (p1.cos() / p2.cos()).ln()
                / ((FRAC_PI_4 + p2 / 2.0).tan() / (FRAC_PI_4 + p1 / 2.0).tan()).ln()
        };
        let f = p1.cos() * (FRAC_PI_4 + p1 / 2.0).tan().powf(n) / n;
        let rho0 = radius * f / (FRAC_PI_4 + p0 / 2.0).tan().powf(n);
        LambertConformal { lat1_deg, lat2_deg, lat0_deg, lon0_deg, radius, n, f, rho0 }
    }

    /// The CONUS-style instance used in examples and benches (matches the
    /// familiar NCEP Lambert grid parameters).
    pub fn conus() -> Self {
        LambertConformal::new(33.0, 45.0, 39.0, -96.0)
    }
}

impl Projection for LambertConformal {
    fn forward(&self, lonlat: Coord) -> Result<Coord> {
        let (lon, lat) = checked_lonlat_rad(lonlat)?;
        // The opposite pole is a singularity.
        let pole_lat = if self.n > 0.0 { -FRAC_PI_2 } else { FRAC_PI_2 };
        if (lat - pole_lat).abs() < 1e-9 {
            return Err(GeoError::OutOfDomain {
                projection: self.name(),
                coord: (lonlat.x, lonlat.y),
            });
        }
        let rho = self.radius * self.f / (FRAC_PI_4 + lat / 2.0).tan().powf(self.n);
        let theta = self.n * norm_lon_deg(deg(lon) - self.lon0_deg).to_radians();
        Ok(Coord::new(rho * theta.sin(), self.rho0 - rho * theta.cos()))
    }

    fn inverse(&self, xy: Coord) -> Result<Coord> {
        if !xy.is_finite() {
            return Err(GeoError::OutOfDomain { projection: self.name(), coord: (xy.x, xy.y) });
        }
        let dy = self.rho0 - xy.y;
        let rho = self.n.signum() * xy.x.hypot(dy);
        if rho.abs() < 1e-12 {
            // Apex of the cone: the pole on the cone's side.
            let pole = if self.n > 0.0 { 90.0 } else { -90.0 };
            return Ok(Coord::new(self.lon0_deg, pole));
        }
        let theta = (self.n.signum() * xy.x).atan2(self.n.signum() * dy);
        let lat = 2.0 * (self.radius * self.f / rho).powf(1.0 / self.n).atan() - FRAC_PI_2;
        let lon = norm_lon_deg(self.lon0_deg + deg(theta / self.n));
        Ok(Coord::new(lon, deg(lat)))
    }

    fn name(&self) -> &'static str {
        "lambert_conformal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_maps_to_zero() {
        let lcc = LambertConformal::conus();
        let xy = lcc.forward(Coord::new(-96.0, 39.0)).unwrap();
        assert!(xy.x.abs() < 1e-6, "x={}", xy.x);
        assert!(xy.y.abs() < 1e-6, "y={}", xy.y);
    }

    #[test]
    fn standard_parallels_preserve_scale_ordering() {
        // A point east of the central meridian has positive x.
        let lcc = LambertConformal::conus();
        let east = lcc.forward(Coord::new(-80.0, 39.0)).unwrap();
        let west = lcc.forward(Coord::new(-110.0, 39.0)).unwrap();
        assert!(east.x > 0.0 && west.x < 0.0);
    }

    #[test]
    fn round_trip_conus() {
        let lcc = LambertConformal::conus();
        for &(lon, lat) in
            &[(-122.4, 37.8), (-96.0, 25.0), (-70.0, 45.0), (-105.0, 60.0), (-96.0, 39.0)]
        {
            let xy = lcc.forward(Coord::new(lon, lat)).unwrap();
            let ll = lcc.inverse(xy).unwrap();
            assert!((ll.x - lon).abs() < 1e-8, "lon {lon} -> {}", ll.x);
            assert!((ll.y - lat).abs() < 1e-8, "lat {lat} -> {}", ll.y);
        }
    }

    #[test]
    fn single_parallel_variant() {
        let lcc = LambertConformal::new(45.0, 45.0, 45.0, 0.0);
        let xy = lcc.forward(Coord::new(5.0, 50.0)).unwrap();
        let ll = lcc.inverse(xy).unwrap();
        assert!((ll.x - 5.0).abs() < 1e-8);
        assert!((ll.y - 50.0).abs() < 1e-8);
    }

    #[test]
    fn opposite_pole_rejected() {
        let lcc = LambertConformal::conus();
        assert!(lcc.forward(Coord::new(0.0, -90.0)).is_err());
    }
}
