//! Planar coordinates and lattice cells.
//!
//! The paper's Definition 1 restricts point sets to *regularly-spaced
//! lattices*, so two coordinate notions coexist:
//!
//! * [`Coord`] — a continuous planar coordinate (lon/lat degrees or
//!   projected meters, depending on the CRS in play), the `s` component of
//!   a point `x = ⟨s, t⟩`;
//! * [`Cell`] — a discrete `(col, row)` position within a georeferenced
//!   lattice (see [`crate::LatticeGeoref`]), which is how stream points are
//!   transported efficiently.

use serde::{Deserialize, Serialize};

/// A continuous 2-D coordinate. Interpretation depends on the CRS:
/// for [`crate::Crs::LatLon`] `x` is longitude and `y` latitude, in
/// degrees; for projected CRSs both are meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Coord {
    /// Easting / longitude.
    pub x: f64,
    /// Northing / latitude.
    pub y: f64,
}

impl Coord {
    /// Creates a coordinate from its two components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Euclidean distance to another coordinate (meaningful within one CRS).
    #[inline]
    pub fn distance(self, other: Coord) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Component-wise addition.
    #[inline]
    pub fn offset(self, dx: f64, dy: f64) -> Coord {
        Coord::new(self.x + dx, self.y + dy)
    }

    /// Returns true when both components are finite numbers.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Coord {
    fn from((x, y): (f64, f64)) -> Self {
        Coord::new(x, y)
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

/// A discrete cell of a point lattice: column (x-direction) and row
/// (y-direction) indices, both zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Cell {
    /// Zero-based column index.
    pub col: u32,
    /// Zero-based row index.
    pub row: u32,
}

impl Cell {
    /// Creates a cell from column and row indices.
    #[inline]
    pub const fn new(col: u32, row: u32) -> Self {
        Cell { col, row }
    }

    /// Chebyshev (L∞) distance between two cells; the natural neighborhood
    /// metric on a square lattice.
    #[inline]
    pub fn chebyshev(self, other: Cell) -> u32 {
        let dc = self.col.abs_diff(other.col);
        let dr = self.row.abs_diff(other.row);
        dc.max(dr)
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.col, self.row)
    }
}

/// An inclusive axis-aligned range of cells, used by spatial restriction to
/// precompute the lattice footprint of a query region once per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellBox {
    /// Smallest included column.
    pub col_min: u32,
    /// Smallest included row.
    pub row_min: u32,
    /// Largest included column.
    pub col_max: u32,
    /// Largest included row.
    pub row_max: u32,
}

impl CellBox {
    /// Creates a cell box; callers must ensure `min <= max` on both axes.
    pub const fn new(col_min: u32, row_min: u32, col_max: u32, row_max: u32) -> Self {
        CellBox { col_min, row_min, col_max, row_max }
    }

    /// A box covering an entire `width × height` lattice.
    pub const fn full(width: u32, height: u32) -> Self {
        CellBox {
            col_min: 0,
            row_min: 0,
            col_max: width.saturating_sub(1),
            row_max: height.saturating_sub(1),
        }
    }

    /// Number of columns spanned.
    #[inline]
    pub const fn width(&self) -> u32 {
        self.col_max - self.col_min + 1
    }

    /// Number of rows spanned.
    #[inline]
    pub const fn height(&self) -> u32 {
        self.row_max - self.row_min + 1
    }

    /// Number of cells contained.
    #[inline]
    pub const fn len(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    /// Always false — a `CellBox` contains at least one cell by construction.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// O(1) membership test used per stream point by the spatial
    /// restriction operator.
    #[inline]
    pub fn contains(&self, cell: Cell) -> bool {
        cell.col >= self.col_min
            && cell.col <= self.col_max
            && cell.row >= self.row_min
            && cell.row <= self.row_max
    }

    /// Intersection with another box, `None` when disjoint.
    pub fn intersect(&self, other: &CellBox) -> Option<CellBox> {
        let col_min = self.col_min.max(other.col_min);
        let row_min = self.row_min.max(other.row_min);
        let col_max = self.col_max.min(other.col_max);
        let row_max = self.row_max.min(other.row_max);
        if col_min <= col_max && row_min <= row_max {
            Some(CellBox { col_min, row_min, col_max, row_max })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_distance_is_euclidean() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn coord_offset_adds_components() {
        let c = Coord::new(1.0, 2.0).offset(0.5, -1.0);
        assert_eq!(c, Coord::new(1.5, 1.0));
    }

    #[test]
    fn coord_finiteness() {
        assert!(Coord::new(1.0, 2.0).is_finite());
        assert!(!Coord::new(f64::NAN, 2.0).is_finite());
        assert!(!Coord::new(1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn cell_chebyshev_distance() {
        assert_eq!(Cell::new(2, 3).chebyshev(Cell::new(5, 4)), 3);
        assert_eq!(Cell::new(5, 4).chebyshev(Cell::new(2, 3)), 3);
        assert_eq!(Cell::new(1, 1).chebyshev(Cell::new(1, 1)), 0);
    }

    #[test]
    fn cellbox_contains_and_bounds() {
        let b = CellBox::new(2, 3, 5, 6);
        assert!(b.contains(Cell::new(2, 3)));
        assert!(b.contains(Cell::new(5, 6)));
        assert!(!b.contains(Cell::new(1, 3)));
        assert!(!b.contains(Cell::new(2, 7)));
        assert_eq!(b.width(), 4);
        assert_eq!(b.height(), 4);
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn cellbox_intersection() {
        let a = CellBox::new(0, 0, 10, 10);
        let b = CellBox::new(5, 5, 15, 15);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, CellBox::new(5, 5, 10, 10));
        let disjoint = CellBox::new(20, 20, 30, 30);
        assert!(a.intersect(&disjoint).is_none());
    }

    #[test]
    fn cellbox_full_covers_lattice() {
        let b = CellBox::full(4, 2);
        assert_eq!(b.len(), 8);
        assert!(b.contains(Cell::new(3, 1)));
        assert!(!b.contains(Cell::new(4, 0)));
    }
}
