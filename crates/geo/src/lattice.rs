//! Georeferencing of regularly-spaced point lattices.
//!
//! Definition 1 of the paper restricts point sets to "a regularly-spaced
//! lattice in Rⁿ, thus providing a spatial resolution pertinent to X".
//! A [`LatticeGeoref`] is that lattice: a CRS, the world coordinate of the
//! center of cell `(0,0)`, signed cell steps, and the lattice dimensions.
//! Streams transport points as lattice [`Cell`]s; operators use the
//! georeference to translate query regions into cell footprints **once per
//! frame**, keeping the per-point work of a spatial restriction O(1).

use crate::coord::{Cell, CellBox, Coord};
use crate::crs::Crs;
use crate::region::{Rect, Region};
use serde::{Deserialize, Serialize};

/// Georeference of a `width × height` regularly-spaced lattice.
///
/// `step_y` is typically negative for "north-up" imagery (row index grows
/// southward); `step_x` is positive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatticeGeoref {
    /// Coordinate system of the world coordinates.
    pub crs: Crs,
    /// World coordinate of the **center** of cell `(0, 0)`.
    pub origin: Coord,
    /// World step per column increment (usually > 0).
    pub step_x: f64,
    /// World step per row increment (usually < 0 for north-up grids).
    pub step_y: f64,
    /// Number of columns.
    pub width: u32,
    /// Number of rows.
    pub height: u32,
}

impl LatticeGeoref {
    /// Creates a georeference; steps must be nonzero.
    pub fn new(crs: Crs, origin: Coord, step_x: f64, step_y: f64, width: u32, height: u32) -> Self {
        debug_assert!(step_x != 0.0 && step_y != 0.0, "lattice steps must be nonzero");
        LatticeGeoref { crs, origin, step_x, step_y, width, height }
    }

    /// A north-up georeference covering `bounds` with the given dimensions.
    pub fn north_up(crs: Crs, bounds: Rect, width: u32, height: u32) -> Self {
        let step_x = bounds.width() / f64::from(width.max(1));
        let step_y = -(bounds.height() / f64::from(height.max(1)));
        let origin = Coord::new(bounds.x_min + step_x / 2.0, bounds.y_max + step_y / 2.0);
        LatticeGeoref { crs, origin, step_x, step_y, width, height }
    }

    /// Number of cells in the lattice.
    #[inline]
    pub fn len(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// True when the lattice has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// World coordinate of a cell center.
    #[inline]
    pub fn cell_to_world(&self, cell: Cell) -> Coord {
        Coord::new(
            self.origin.x + f64::from(cell.col) * self.step_x,
            self.origin.y + f64::from(cell.row) * self.step_y,
        )
    }

    /// Nearest cell for a world coordinate, or `None` when it falls
    /// outside the lattice.
    pub fn world_to_cell(&self, w: Coord) -> Option<Cell> {
        let fc = (w.x - self.origin.x) / self.step_x;
        let fr = (w.y - self.origin.y) / self.step_y;
        let col = fc.round();
        let row = fr.round();
        if col < 0.0 || row < 0.0 || col >= f64::from(self.width) || row >= f64::from(self.height) {
            return None;
        }
        Some(Cell::new(col as u32, row as u32))
    }

    /// Fractional cell coordinates (for interpolation); unclamped.
    #[inline]
    pub fn world_to_fractional(&self, w: Coord) -> (f64, f64) {
        ((w.x - self.origin.x) / self.step_x, (w.y - self.origin.y) / self.step_y)
    }

    /// World-space bounding box of the full lattice (cell centers
    /// expanded by half a step so the box covers cell footprints).
    pub fn world_bbox(&self) -> Rect {
        if self.is_empty() {
            return Rect::empty();
        }
        let last = self.cell_to_world(Cell::new(self.width - 1, self.height - 1));
        let core = Rect::new(self.origin.x, self.origin.y, last.x, last.y);
        // Expand per-axis by half a step so the box covers cell footprints.
        let (hx, hy) = (self.step_x.abs() / 2.0, self.step_y.abs() / 2.0);
        Rect {
            x_min: core.x_min - hx,
            y_min: core.y_min - hy,
            x_max: core.x_max + hx,
            y_max: core.y_max + hy,
        }
    }

    /// Lattice footprint of a world rectangle: the inclusive cell ranges
    /// whose centers fall inside `rect`, or `None` when no cell does.
    ///
    /// This is the once-per-frame computation that lets the spatial
    /// restriction test each point with two integer comparisons.
    pub fn footprint(&self, rect: &Rect) -> Option<CellBox> {
        if self.is_empty() || rect.is_empty() {
            return None;
        }
        // Convert both x bounds to fractional columns, order them.
        let fc1 = (rect.x_min - self.origin.x) / self.step_x;
        let fc2 = (rect.x_max - self.origin.x) / self.step_x;
        let fr1 = (rect.y_min - self.origin.y) / self.step_y;
        let fr2 = (rect.y_max - self.origin.y) / self.step_y;
        let (c_lo, c_hi) = (fc1.min(fc2), fc1.max(fc2));
        let (r_lo, r_hi) = (fr1.min(fr2), fr1.max(fr2));
        // Inclusive integer ranges of cells whose centers lie within.
        let col_min = c_lo.ceil().max(0.0);
        let col_max = c_hi.floor().min(f64::from(self.width - 1));
        let row_min = r_lo.ceil().max(0.0);
        let row_max = r_hi.floor().min(f64::from(self.height - 1));
        if col_min > col_max || row_min > row_max {
            return None;
        }
        Some(CellBox::new(col_min as u32, row_min as u32, col_max as u32, row_max as u32))
    }

    /// Footprint of an arbitrary region via its bounding box (conservative
    /// for non-rectangular regions; the restriction operator then applies
    /// the exact `Region::contains` per point when needed).
    pub fn footprint_of_region(&self, region: &Region) -> Option<CellBox> {
        self.footprint(&region.bbox_clamped(self.world_bbox()))
    }

    /// The georeference of this lattice magnified by an integer factor
    /// (each cell becomes `k × k` cells; §3.2's "operator that increases
    /// the spatial resolution").
    pub fn magnified(&self, k: u32) -> LatticeGeoref {
        debug_assert!(k >= 1);
        let k_f = f64::from(k);
        LatticeGeoref {
            crs: self.crs,
            // New cell (0,0) center sits at the corner quarter of the old.
            origin: Coord::new(
                self.origin.x - self.step_x / 2.0 + self.step_x / (2.0 * k_f),
                self.origin.y - self.step_y / 2.0 + self.step_y / (2.0 * k_f),
            ),
            step_x: self.step_x / k_f,
            step_y: self.step_y / k_f,
            width: self.width * k,
            height: self.height * k,
        }
    }

    /// The georeference of this lattice reduced by an integer factor
    /// (`k × k` cells collapse into one; §3.2's "decrease the resolution").
    /// Trailing cells that do not fill a block are dropped.
    pub fn reduced(&self, k: u32) -> LatticeGeoref {
        debug_assert!(k >= 1);
        let k_f = f64::from(k);
        LatticeGeoref {
            crs: self.crs,
            origin: Coord::new(
                self.origin.x + self.step_x * (k_f - 1.0) / 2.0,
                self.origin.y + self.step_y * (k_f - 1.0) / 2.0,
            ),
            step_x: self.step_x * k_f,
            step_y: self.step_y * k_f,
            width: self.width / k,
            height: self.height / k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> LatticeGeoref {
        // 100x50 cells over lon [-125,-115], lat [30,40]; north-up.
        LatticeGeoref::north_up(Crs::LatLon, Rect::new(-125.0, 30.0, -115.0, 40.0), 100, 50)
    }

    #[test]
    fn north_up_orientation() {
        let g = grid();
        assert!(g.step_x > 0.0 && g.step_y < 0.0);
        // First row is the northernmost.
        let top = g.cell_to_world(Cell::new(0, 0));
        let bottom = g.cell_to_world(Cell::new(0, 49));
        assert!(top.y > bottom.y);
    }

    #[test]
    fn cell_world_round_trip() {
        let g = grid();
        for cell in [Cell::new(0, 0), Cell::new(99, 49), Cell::new(37, 21)] {
            let w = g.cell_to_world(cell);
            assert_eq!(g.world_to_cell(w), Some(cell));
        }
    }

    #[test]
    fn world_to_cell_rejects_outside() {
        let g = grid();
        assert_eq!(g.world_to_cell(Coord::new(-130.0, 35.0)), None);
        assert_eq!(g.world_to_cell(Coord::new(-120.0, 45.0)), None);
    }

    #[test]
    fn world_bbox_covers_all_cells() {
        let g = grid();
        let b = g.world_bbox();
        for cell in [Cell::new(0, 0), Cell::new(99, 49)] {
            assert!(b.contains(g.cell_to_world(cell)));
        }
        // The bbox approximates the original bounds.
        assert!((b.x_min + 125.0).abs() < g.step_x);
        assert!((b.y_max - 40.0).abs() < g.step_y.abs());
    }

    #[test]
    fn footprint_of_interior_rect() {
        let g = grid();
        let fp = g.footprint(&Rect::new(-121.0, 33.0, -119.0, 35.0)).unwrap();
        // Every cell center in the footprint is inside the rect.
        for col in fp.col_min..=fp.col_max {
            for row in fp.row_min..=fp.row_max {
                let w = g.cell_to_world(Cell::new(col, row));
                assert!(w.x >= -121.0 - 1e-9 && w.x <= -119.0 + 1e-9, "col {col} center {w}");
                assert!(w.y >= 33.0 - 1e-9 && w.y <= 35.0 + 1e-9, "row {row} center {w}");
            }
        }
        // And the neighbors just outside are not.
        assert!(fp.col_min > 0 && fp.col_max < 99);
        let left = g.cell_to_world(Cell::new(fp.col_min - 1, fp.row_min));
        assert!(left.x < -121.0);
    }

    #[test]
    fn footprint_disjoint_rect_is_none() {
        let g = grid();
        assert!(g.footprint(&Rect::new(0.0, 0.0, 10.0, 10.0)).is_none());
    }

    #[test]
    fn footprint_clamps_to_lattice() {
        let g = grid();
        let fp = g.footprint(&Rect::new(-200.0, -80.0, 200.0, 80.0)).unwrap();
        assert_eq!(fp, CellBox::full(100, 50));
    }

    #[test]
    fn magnified_preserves_world_extent() {
        let g = grid();
        let m = g.magnified(3);
        assert_eq!(m.width, 300);
        assert_eq!(m.height, 150);
        let gb = g.world_bbox();
        let mb = m.world_bbox();
        assert!((gb.x_min - mb.x_min).abs() < 1e-9);
        assert!((gb.y_max - mb.y_max).abs() < 1e-9);
        assert!((gb.x_max - mb.x_max).abs() < 1e-9);
    }

    #[test]
    fn reduced_block_centers() {
        let g = grid();
        let r = g.reduced(2);
        assert_eq!(r.width, 50);
        // The center of reduced cell (0,0) is the mean of the 2x2 block.
        let expect = Coord::new(
            (g.cell_to_world(Cell::new(0, 0)).x + g.cell_to_world(Cell::new(1, 0)).x) / 2.0,
            (g.cell_to_world(Cell::new(0, 0)).y + g.cell_to_world(Cell::new(0, 1)).y) / 2.0,
        );
        let got = r.cell_to_world(Cell::new(0, 0));
        assert!((got.x - expect.x).abs() < 1e-9 && (got.y - expect.y).abs() < 1e-9);
    }

    #[test]
    fn magnify_then_reduce_is_identity_on_georef() {
        let g = grid();
        let round = g.magnified(4).reduced(4);
        assert_eq!(round.width, g.width);
        assert_eq!(round.height, g.height);
        assert!((round.origin.x - g.origin.x).abs() < 1e-9);
        assert!((round.origin.y - g.origin.y).abs() < 1e-9);
        assert!((round.step_x - g.step_x).abs() < 1e-12);
    }
}
