//! Error type shared by the geospatial substrate.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GeoError>;

/// Errors produced by projections, region mapping, and lattice math.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A coordinate lies outside the domain of a projection, e.g. a point
    /// on the far side of the Earth for the geostationary view.
    OutOfDomain {
        /// Projection that rejected the coordinate.
        projection: &'static str,
        /// The offending coordinate (in the projection's input space).
        coord: (f64, f64),
    },
    /// A numeric routine failed to converge (iterative inverses).
    NoConvergence {
        /// Projection whose inverse did not converge.
        projection: &'static str,
    },
    /// Latitude/longitude input outside valid bounds.
    InvalidLatLon {
        /// Offending longitude in degrees.
        lon: f64,
        /// Offending latitude in degrees.
        lat: f64,
    },
    /// A UTM zone outside 1..=60 was requested.
    InvalidUtmZone(u8),
    /// An affine transform is singular and cannot be inverted.
    SingularTransform,
    /// A region was empty after mapping/clipping.
    EmptyRegion,
    /// Two coordinate systems were expected to match but do not.
    CrsMismatch {
        /// Textual rendering of the expected CRS.
        expected: String,
        /// Textual rendering of the CRS that was found.
        found: String,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::OutOfDomain { projection, coord } => write!(
                f,
                "coordinate ({}, {}) outside the domain of projection {projection}",
                coord.0, coord.1
            ),
            GeoError::NoConvergence { projection } => {
                write!(f, "inverse of projection {projection} did not converge")
            }
            GeoError::InvalidLatLon { lon, lat } => {
                write!(f, "invalid lon/lat ({lon}, {lat})")
            }
            GeoError::InvalidUtmZone(z) => write!(f, "invalid UTM zone {z} (expected 1..=60)"),
            GeoError::SingularTransform => write!(f, "affine transform is singular"),
            GeoError::EmptyRegion => write!(f, "region is empty"),
            GeoError::CrsMismatch { expected, found } => {
                write!(f, "coordinate system mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for GeoError {}
