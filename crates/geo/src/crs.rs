//! Coordinate reference systems.
//!
//! Definition 5 of the paper makes a stream a *GeoStream* by attaching a
//! coordinate system to the spatial component of its point lattice. The
//! query model requires CRS equality checks (compositions demand matching
//! lattices, §3.3) and CRS conversion (re-projection transforms and the
//! §3.4 pushdown of a restriction region across a re-projection), so the
//! CRS is a first-class, comparable, serializable value.

use crate::coord::Coord;
use crate::error::{GeoError, Result};
use crate::projection::{
    Albers, Geostationary, LambertConformal, Mercator, PlateCarree, PolarStereographic, Projection,
    Sinusoidal, TransverseMercator,
};
use serde::{Deserialize, Serialize};

/// A coordinate reference system supported by the GeoStreams engine.
///
/// `forward` maps geographic degrees into this CRS's plane; `inverse` maps
/// back to geographic degrees. Conversion between any two CRSs composes
/// `inverse` then `forward` through the geographic intermediate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Crs {
    /// Geographic longitude/latitude in degrees (Plate Carrée plane).
    LatLon,
    /// Spherical Mercator about a central meridian (degrees).
    Mercator {
        /// Central meridian, degrees.
        lon0: f64,
    },
    /// Universal Transverse Mercator.
    Utm {
        /// Zone number, 1..=60.
        zone: u8,
        /// Northern hemisphere?
        north: bool,
    },
    /// Lambert conformal conic with two standard parallels.
    LambertConformal {
        /// First standard parallel, degrees.
        lat1: f64,
        /// Second standard parallel, degrees.
        lat2: f64,
        /// Latitude of origin, degrees.
        lat0: f64,
        /// Central meridian, degrees.
        lon0: f64,
    },
    /// Sinusoidal equal-area (MODIS-style).
    Sinusoidal {
        /// Central meridian, degrees.
        lon0: f64,
    },
    /// Albers equal-area conic with two standard parallels.
    Albers {
        /// First standard parallel, degrees.
        lat1: f64,
        /// Second standard parallel, degrees.
        lat2: f64,
        /// Latitude of origin, degrees.
        lat0: f64,
        /// Central meridian, degrees.
        lon0: f64,
    },
    /// Polar stereographic (north or south aspect).
    PolarStereographic {
        /// North-pole aspect?
        north: bool,
        /// Central meridian, degrees.
        lon0: f64,
    },
    /// Geostationary satellite view (GOES Variable Format analogue).
    Geostationary {
        /// Sub-satellite longitude, degrees.
        lon0: f64,
    },
}

impl Crs {
    /// Convenience constructor for a UTM CRS.
    pub fn utm(zone: u8, north: bool) -> Crs {
        Crs::Utm { zone, north }
    }

    /// Convenience constructor for the geostationary view.
    pub fn geostationary(lon0: f64) -> Crs {
        Crs::Geostationary { lon0 }
    }

    /// Instantiates the projection behind this CRS.
    pub fn projection(&self) -> Result<Box<dyn Projection>> {
        Ok(match *self {
            Crs::LatLon => Box::new(PlateCarree),
            Crs::Mercator { lon0 } => Box::new(Mercator::new(lon0)),
            Crs::Utm { zone, north } => Box::new(TransverseMercator::utm(zone, north)?),
            Crs::LambertConformal { lat1, lat2, lat0, lon0 } => {
                Box::new(LambertConformal::new(lat1, lat2, lat0, lon0))
            }
            Crs::Sinusoidal { lon0 } => Box::new(Sinusoidal::new(lon0)),
            Crs::Albers { lat1, lat2, lat0, lon0 } => Box::new(Albers::new(lat1, lat2, lat0, lon0)),
            Crs::PolarStereographic { north, lon0 } => {
                Box::new(PolarStereographic::new(north, lon0))
            }
            Crs::Geostationary { lon0 } => Box::new(Geostationary::new(lon0)),
        })
    }

    /// Projects geographic degrees into this CRS's plane.
    pub fn forward(&self, lonlat: Coord) -> Result<Coord> {
        self.projection()?.forward(lonlat)
    }

    /// Recovers geographic degrees from this CRS's plane.
    pub fn inverse(&self, xy: Coord) -> Result<Coord> {
        self.projection()?.inverse(xy)
    }

    /// Converts a coordinate from this CRS into another, going through
    /// geographic coordinates. Identity CRSs short-circuit.
    pub fn convert_to(&self, target: &Crs, xy: Coord) -> Result<Coord> {
        if self == target {
            return Ok(xy);
        }
        target.forward(self.inverse(xy)?)
    }

    /// Returns an error when `self != other`; used by binary operators that
    /// require matching lattices (§3.3).
    pub fn require_same(&self, other: &Crs) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(GeoError::CrsMismatch { expected: self.to_string(), found: other.to_string() })
        }
    }

    /// Rough nominal meters-per-unit of the planar space (1 for metric
    /// CRSs; ~111 km per degree for lat/lon). Used only for heuristics
    /// such as choosing densification steps.
    pub fn meters_per_unit(&self) -> f64 {
        match self {
            Crs::LatLon => 111_320.0,
            _ => 1.0,
        }
    }
}

impl std::fmt::Display for Crs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Crs::LatLon => write!(f, "latlon"),
            Crs::Mercator { lon0 } => write!(f, "mercator:{lon0}"),
            Crs::Utm { zone, north } => {
                write!(f, "utm:{zone}{}", if *north { "N" } else { "S" })
            }
            Crs::LambertConformal { lat1, lat2, lat0, lon0 } => {
                write!(f, "lcc:{lat1},{lat2},{lat0},{lon0}")
            }
            Crs::Sinusoidal { lon0 } => write!(f, "sinusoidal:{lon0}"),
            Crs::Albers { lat1, lat2, lat0, lon0 } => {
                write!(f, "albers:{lat1},{lat2},{lat0},{lon0}")
            }
            Crs::PolarStereographic { north, lon0 } => {
                write!(f, "stere:{}{lon0}", if *north { "N:" } else { "S:" })
            }
            Crs::Geostationary { lon0 } => write!(f, "geos:{lon0}"),
        }
    }
}

impl std::str::FromStr for Crs {
    type Err = String;

    /// Parses the compact textual CRS notation used by the query language:
    /// `latlon`, `utm:10N`, `mercator:-120`, `geos:-75`, `sinusoidal:0`,
    /// `lcc:33,45,39,-96`.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("latlon") || s.eq_ignore_ascii_case("lonlat") {
            return Ok(Crs::LatLon);
        }
        let (head, tail) = s.split_once(':').ok_or_else(|| format!("unknown CRS `{s}`"))?;
        match head.to_ascii_lowercase().as_str() {
            "utm" => {
                let tail = tail.trim();
                let (digits, hemi) = tail.split_at(tail.len().saturating_sub(1));
                let (zone_str, north) = match hemi {
                    "N" | "n" => (digits, true),
                    "S" | "s" => (digits, false),
                    _ => (tail, true),
                };
                let zone: u8 = zone_str.parse().map_err(|_| format!("bad UTM zone in `{s}`"))?;
                if zone == 0 || zone > 60 {
                    return Err(format!("UTM zone {zone} out of range 1..=60"));
                }
                Ok(Crs::Utm { zone, north })
            }
            "mercator" => {
                Ok(Crs::Mercator { lon0: tail.parse().map_err(|_| format!("bad lon0 in `{s}`"))? })
            }
            "sinusoidal" => Ok(Crs::Sinusoidal {
                lon0: tail.parse().map_err(|_| format!("bad lon0 in `{s}`"))?,
            }),
            "geos" => Ok(Crs::Geostationary {
                lon0: tail.parse().map_err(|_| format!("bad lon0 in `{s}`"))?,
            }),
            "albers" => {
                let parts: Vec<f64> = tail
                    .split(',')
                    .map(|p| p.trim().parse().map_err(|_| format!("bad albers params in `{s}`")))
                    .collect::<std::result::Result<_, _>>()?;
                if parts.len() != 4 {
                    return Err(format!("albers needs 4 params, got {}", parts.len()));
                }
                Ok(Crs::Albers { lat1: parts[0], lat2: parts[1], lat0: parts[2], lon0: parts[3] })
            }
            "stere" => {
                let (hemi, lon_s) =
                    tail.split_once(':').ok_or_else(|| format!("stere needs N:|S: in `{s}`"))?;
                let north = match hemi {
                    "N" | "n" => true,
                    "S" | "s" => false,
                    other => return Err(format!("bad hemisphere `{other}` in `{s}`")),
                };
                Ok(Crs::PolarStereographic {
                    north,
                    lon0: lon_s.parse().map_err(|_| format!("bad lon0 in `{s}`"))?,
                })
            }
            "lcc" => {
                let parts: Vec<f64> = tail
                    .split(',')
                    .map(|p| p.trim().parse().map_err(|_| format!("bad lcc params in `{s}`")))
                    .collect::<std::result::Result<_, _>>()?;
                if parts.len() != 4 {
                    return Err(format!("lcc needs 4 params, got {}", parts.len()));
                }
                Ok(Crs::LambertConformal {
                    lat1: parts[0],
                    lat2: parts[1],
                    lat0: parts[2],
                    lon0: parts[3],
                })
            }
            _ => Err(format!("unknown CRS `{s}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let crss = [
            Crs::LatLon,
            Crs::Mercator { lon0: -120.0 },
            Crs::Utm { zone: 10, north: true },
            Crs::Utm { zone: 56, north: false },
            Crs::Sinusoidal { lon0: 0.0 },
            Crs::Geostationary { lon0: -75.0 },
            Crs::LambertConformal { lat1: 33.0, lat2: 45.0, lat0: 39.0, lon0: -96.0 },
            Crs::Albers { lat1: 29.5, lat2: 45.5, lat0: 23.0, lon0: -96.0 },
            Crs::PolarStereographic { north: true, lon0: -45.0 },
            Crs::PolarStereographic { north: false, lon0: 0.0 },
        ];
        for crs in crss {
            let rendered = crs.to_string();
            let parsed: Crs = rendered.parse().unwrap_or_else(|e| panic!("{rendered}: {e}"));
            assert_eq!(parsed, crs, "{rendered}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("foo".parse::<Crs>().is_err());
        assert!("utm:0N".parse::<Crs>().is_err());
        assert!("utm:61N".parse::<Crs>().is_err());
        assert!("lcc:1,2,3".parse::<Crs>().is_err());
    }

    #[test]
    fn convert_between_crs_round_trips() {
        let geos = Crs::geostationary(-75.0);
        let utm = Crs::utm(10, true);
        let sf_geo = geos.forward(Coord::new(-122.42, 37.77)).unwrap();
        let sf_utm = geos.convert_to(&utm, sf_geo).unwrap();
        let back = utm.convert_to(&geos, sf_utm).unwrap();
        assert!((back.x - sf_geo.x).abs() < 1.0);
        assert!((back.y - sf_geo.y).abs() < 1.0);
    }

    #[test]
    fn require_same_detects_mismatch() {
        assert!(Crs::LatLon.require_same(&Crs::LatLon).is_ok());
        assert!(Crs::LatLon.require_same(&Crs::utm(10, true)).is_err());
    }

    #[test]
    fn identity_conversion_is_exact() {
        let utm = Crs::utm(10, true);
        let p = Coord::new(550_000.0, 4_200_000.0);
        assert_eq!(utm.convert_to(&utm, p).unwrap(), p);
    }
}
