//! Dumps a machine-readable observability summary (`BENCH_obs.json`).
//!
//! Runs the traced reference query of [`geostreams_bench::run_obs_bench`]
//! over a 256x256, 4-sector ramp stream and writes the resulting
//! [`geostreams_bench::ObsBenchReport`] — run-level and per-operator
//! pull-latency percentiles, buffer peaks, trace-event counts, and the
//! instrumentation-overhead measurement of
//! [`geostreams_bench::run_overhead_bench`] — as JSON to the path given
//! as the first argument (default `BENCH_obs.json`).
//!
//! Two extra modes feed `scripts/obs_gate.sh`:
//!
//! * `--digest` prints exactly one timing-free JSON line (point count,
//!   pixel FNV, span count) so the gate can run the binary twice and
//!   `diff` the outputs to prove the traced path is deterministic;
//! * `--exposition` prints a representative `/metrics` scrape —
//!   every `geostreams_*` family the server can export, including the
//!   per-query freshness series — for the HELP/TYPE lint.

use geostreams_bench::{run_obs_bench, run_overhead_bench};
use geostreams_dsms::ServerMetrics;
use geostreams_store::StoreMetrics;

/// A representative metrics scrape: every family the server registers,
/// plus the dynamically-labeled per-query/per-band series.
fn exposition() -> String {
    let metrics = ServerMetrics::new();
    let _store = StoreMetrics::register(metrics.registry());
    let _rec = metrics.register_query(0, "goes-sim.b4-ir");
    let _ = metrics.registry().gauge("geostreams_band_staleness_ns", &[("band", "goes-sim.b4-ir")]);
    metrics.render_prometheus()
}

fn main() {
    if std::env::args().any(|a| a == "--exposition") {
        print!("{}", exposition());
        return;
    }
    let overhead = run_overhead_bench(256, 96, 24, 7);
    if std::env::args().any(|a| a == "--digest") {
        println!(
            "{{\"bench\":\"obs\",\"points\":{},\"fnv\":\"{:016x}\",\"spans\":{}}}",
            overhead.points, overhead.fnv, overhead.spans
        );
        return;
    }
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let mut report = run_obs_bench(256, 256, 4);
    report.overhead = Some(overhead.clone());
    let json = serde_json::to_string(&report).expect("serialize obs report");
    std::fs::write(&path, json.as_bytes()).expect("write obs report");
    println!(
        "wrote {path}: {} points in {} µs, root pull p50={} ns p95={} ns p99={} ns, {} trace events",
        report.run.points_delivered,
        report.run.wall_us,
        report.run.pull_p50_ns,
        report.run.pull_p95_ns,
        report.run.pull_p99_ns,
        report.trace_events
    );
    println!(
        "tracing overhead: {:.0} pts/s untraced vs {:.0} pts/s traced \
         ({} permille, {} spans recorded)",
        overhead.untraced_pps,
        overhead.traced_pps,
        overhead.traced_throughput_permille,
        overhead.spans
    );
}
