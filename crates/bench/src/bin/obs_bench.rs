//! Dumps a machine-readable observability summary (`BENCH_obs.json`).
//!
//! Runs the traced reference query of [`geostreams_bench::run_obs_bench`]
//! over a 256x256, 4-sector ramp stream and writes the resulting
//! [`geostreams_bench::ObsBenchReport`] — run-level and per-operator
//! pull-latency percentiles, buffer peaks, and trace-event counts — as
//! JSON to the path given as the first argument (default
//! `BENCH_obs.json` in the current directory).

use geostreams_bench::run_obs_bench;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_obs.json".to_string());
    let report = run_obs_bench(256, 256, 4);
    let json = serde_json::to_string(&report).expect("serialize obs report");
    std::fs::write(&path, json.as_bytes()).expect("write obs report");
    println!(
        "wrote {path}: {} points in {} µs, root pull p50={} ns p95={} ns p99={} ns, {} trace events",
        report.run.points_delivered,
        report.run.wall_us,
        report.run.pull_p50_ns,
        report.run.pull_p95_ns,
        report.run.pull_p99_ns,
        report.trace_events
    );
}
