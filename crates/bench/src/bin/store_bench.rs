//! Tiled raster archive benchmark (`BENCH_store.json`).
//!
//! Ingests a seeded GOES-like visible band into a fresh archive,
//! replays it in full, and reports ingest/replay throughput (MB/s over
//! raw pixel bytes) plus the achieved compression ratio. The ISSUE 4
//! acceptance bar is a ratio >= 2x versus raw `f32` pixels.
//!
//! With `--digest` nothing timing-dependent is printed: one JSON line
//! with element counts, stored/raw byte totals, the compression ratio
//! in permille, and an FNV-1a hash over every replayed pixel value —
//! so `scripts/store_gate.sh` can run this binary twice and `diff` the
//! outputs to prove the whole persist/replay path is deterministic.

use geostreams_core::model::{Element, GeoStream};
use geostreams_satsim::goes_like;
use geostreams_store::{Archive, ArchiveConfig};
use std::time::Instant;

const SECTORS: u64 = 6;

fn fnv1a_u32(v: u32, mut hash: u64) -> u64 {
    for b in v.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn main() {
    let digest = std::env::args().any(|a| a == "--digest");
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_store.json".to_string());

    let dir = std::env::temp_dir().join(format!("gs-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Wide frames so the fixed per-tile record overhead is amortized,
    // as on a real instrument row (512 px at full resolution).
    let scanner = goes_like(512, 96, 7);
    let mut cfg = ArchiveConfig::new(&dir);
    cfg.tile_width = 256;
    let archive = Archive::create(cfg).expect("create bench archive");

    let mut stream = scanner.band_stream(0, SECTORS);
    let band = stream.schema().band;
    archive.bind_band(stream.schema()).expect("bind band");
    let t0 = Instant::now();
    while let Some(el) = stream.next_element() {
        archive.ingest(band, &el).expect("ingest element");
    }
    archive.flush().expect("flush archive");
    let ingest_s = t0.elapsed().as_secs_f64();

    let stats = archive.stats();
    let raw_mb = stats.raw_bytes as f64 / (1024.0 * 1024.0);
    let stored_mb = stats.bytes_written as f64 / (1024.0 * 1024.0);
    let ratio = stats.raw_bytes as f64 / stats.bytes_written.max(1) as f64;

    let t1 = Instant::now();
    let mut replay = archive.replay(band, None, None, None).expect("open replay");
    let mut replay_points = 0u64;
    let mut replay_frames = 0u64;
    let mut value_fnv = 0xcbf2_9ce4_8422_2325u64;
    while let Some(el) = replay.next_element() {
        match el {
            Element::Point(p) => {
                replay_points += 1;
                value_fnv = fnv1a_u32(p.value.to_bits(), value_fnv);
            }
            Element::FrameStart(_) => replay_frames += 1,
            _ => {}
        }
    }
    let replay_s = t1.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    if digest {
        println!(
            "{{\"bench\":\"store\",\"sectors\":{SECTORS},\"frames\":{},\"tiles\":{},\"raw_bytes\":{},\"bytes_written\":{},\"compression_permille\":{},\"replay_frames\":{replay_frames},\"replay_points\":{replay_points},\"value_fnv\":\"{value_fnv:016x}\"}}",
            stats.frames,
            stats.tiles,
            stats.raw_bytes,
            stats.bytes_written,
            stats.raw_bytes * 1000 / stats.bytes_written.max(1),
        );
        return;
    }

    let json = format!(
        "{{\"sectors\":{SECTORS},\"frames\":{},\"tiles\":{},\"raw_mb\":{raw_mb:.3},\"stored_mb\":{stored_mb:.3},\"compression_ratio\":{ratio:.3},\"ingest_mb_s\":{:.1},\"replay_mb_s\":{:.1},\"ingest_s\":{ingest_s:.4},\"replay_s\":{replay_s:.4},\"replay_points\":{replay_points}}}",
        stats.frames,
        stats.tiles,
        raw_mb / ingest_s.max(1e-9),
        raw_mb / replay_s.max(1e-9),
    );
    std::fs::write(&path, json.as_bytes()).expect("write store report");
    println!(
        "wrote {path}: {raw_mb:.1} MB raw -> {stored_mb:.1} MB stored ({ratio:.2}x), ingest {:.0} MB/s, replay {:.0} MB/s",
        raw_mb / ingest_s.max(1e-9),
        raw_mb / replay_s.max(1e-9),
    );
}
