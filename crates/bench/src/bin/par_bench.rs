//! Morsel-driven parallel execution benchmark (`BENCH_par.json`).
//!
//! Runs the restriction and value-transform kernels through the morsel
//! driver at worker counts {1, 4} plus the serial chunked driver as the
//! oracle, and reports points/s per configuration and the 4-worker
//! speedup over 1 worker in permille. Every configuration hashes every
//! delivered pixel (FNV-1a over the little-endian `f32` bit patterns)
//! and the hashes must agree — the merge stage restores exact serial
//! order, so parallelism must be invisible in the output.
//!
//! With `--digest` nothing timing-dependent is printed: one JSON line
//! with per-workload point counts and the pixel hash shared by the
//! serial oracle and every worker count, so `scripts/par_gate.sh` can
//! run this binary twice and `diff` the outputs to prove the parallel
//! driver is deterministic and byte-identical to serial execution.

use geostreams_core::exec::{self, compile_stages, run_morsels, StageSpec, WorkerPool};
use geostreams_core::model::{ChunkOrMarker, GeoStream, VecStream, DEFAULT_CHUNK_BUDGET};
use geostreams_core::obs::PipelineObs;
use geostreams_core::ops::{MapTransform, SpatialRestrict, ValueFunc};
use geostreams_geo::{Crs, LatticeGeoref, Rect, Region};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

const SECTORS: u64 = 6;
const RUNS: usize = 5;
const WIDTH: u32 = 512;
const HEIGHT: u32 = 96;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a_u32(v: u32, mut hash: u64) -> u64 {
    for b in v.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// One measured drain: wall seconds, points delivered, pixel hash.
struct Run {
    secs: f64,
    points: u64,
    fnv: u64,
}

/// A pre-materialized source, so the measurement isolates driver and
/// kernel overhead from the cost of synthesizing pixel values.
fn materialized(seed: u64) -> VecStream<f32> {
    let bounds = Rect::new(0.0, 0.0, f64::from(WIDTH), f64::from(HEIGHT));
    let lattice = LatticeGeoref::north_up(Crs::LatLon, bounds, WIDTH, HEIGHT);
    VecStream::sectors("par-src", lattice, SECTORS, move |s, x, y| {
        (((s ^ seed) % 7) as f64) * 0.1 + f64::from(x) * 0.001 + f64::from(y) * 0.0001
    })
}

/// The central quarter of the source's world footprint.
fn inner_rect() -> Rect {
    let (w, h) = (f64::from(WIDTH), f64::from(HEIGHT));
    Rect::new(w * 0.25, h * 0.25, w * 0.75, h * 0.75)
}

/// Serial oracle: the full chain on one thread via `run_chunked`.
fn run_serial<S: GeoStream<V = f32>>(stream: &mut S) -> Run {
    let mut fnv = FNV_OFFSET;
    let start = Instant::now();
    let report = exec::run_chunked(stream, &PipelineObs::default(), DEFAULT_CHUNK_BUDGET, |item| {
        if let ChunkOrMarker::Chunk(c) = item {
            for p in &c.points {
                fnv = fnv1a_u32(p.value.to_bits(), fnv);
            }
        }
    });
    Run { secs: start.elapsed().as_secs_f64(), points: report.points_delivered, fnv }
}

/// Morsel driver over `pool`: the same stage suffix, fanned out and
/// merged back in lattice order, hashing the merged delivery.
fn run_par(src: &VecStream<f32>, specs: &[StageSpec], pool: &WorkerPool) -> Run {
    let stages = Arc::new(compile_stages(specs, src.schema()).expect("stage suffix must compile"));
    let mut inner = src.clone();
    let mut fnv = FNV_OFFSET;
    let start = Instant::now();
    let report = run_morsels(
        &mut inner,
        &stages,
        pool,
        &PipelineObs::default(),
        DEFAULT_CHUNK_BUDGET,
        |item| {
            if let ChunkOrMarker::Chunk(c) = item {
                for p in &c.points {
                    fnv = fnv1a_u32(p.value.to_bits(), fnv);
                }
            }
        },
    );
    assert_eq!(report.run.protocol_violations, 0, "merge stage saw protocol violations");
    Run { secs: start.elapsed().as_secs_f64(), points: report.run.points_delivered, fnv }
}

/// Best-of-`RUNS`; counts and hashes must agree across repeats.
fn measure(run: impl Fn() -> Run) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..RUNS {
        let r = run();
        if let Some(b) = &best {
            assert_eq!(r.points, b.points, "nondeterministic point count");
            assert_eq!(r.fnv, b.fnv, "nondeterministic pixel hash");
        }
        if best.as_ref().is_none_or(|b| r.secs < b.secs) {
            best = Some(r);
        }
    }
    best.expect("at least one run")
}

struct Workload {
    name: &'static str,
    serial: Run,
    one: Run,
    four: Run,
}

impl Workload {
    fn speedup_permille(&self) -> u64 {
        (self.one.secs / self.four.secs.max(1e-9) * 1000.0) as u64
    }
    fn pps(r: &Run) -> f64 {
        r.points as f64 / r.secs.max(1e-9)
    }
}

fn main() {
    let digest = std::env::args().any(|a| a == "--digest");
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_par.json".to_string());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let src = materialized(7);
    let rect = inner_rect();
    let restrict_specs =
        [StageSpec::RestrictSpace { region: Region::Rect(rect), crs: Crs::LatLon }];
    // Gamma is deliberately powf-heavy: the kernel, not the inner
    // source pull, dominates — which is what the pool parallelizes.
    let transform_specs = [StageSpec::MapValue { func: ValueFunc::Gamma { g: 2.2 } }];

    let pool1 = WorkerPool::new(1);
    let pool4 = WorkerPool::new(4);
    let mut workloads = Vec::new();
    for (name, specs) in [("restrict", &restrict_specs[..]), ("transform", &transform_specs[..])] {
        let serial = measure(|| match name {
            "restrict" => {
                let mut chain = SpatialRestrict::new(src.clone(), Region::Rect(rect));
                run_serial(&mut chain)
            }
            _ => {
                let mut chain =
                    MapTransform::<_, f32>::new(src.clone(), ValueFunc::Gamma { g: 2.2 });
                run_serial(&mut chain)
            }
        });
        let one = measure(|| run_par(&src, specs, &pool1));
        let four = measure(|| run_par(&src, specs, &pool4));
        assert_eq!(serial.points, one.points, "{name}: serial vs 1-worker point counts");
        assert_eq!(serial.fnv, one.fnv, "{name}: serial vs 1-worker pixel hashes");
        assert_eq!(serial.points, four.points, "{name}: serial vs 4-worker point counts");
        assert_eq!(serial.fnv, four.fnv, "{name}: serial vs 4-worker pixel hashes");
        workloads.push(Workload { name, serial, one, four });
    }

    if digest {
        let fields: Vec<String> = workloads
            .iter()
            .map(|w| {
                format!(
                    "\"{0}_points\":{1},\"{0}_fnv\":\"{2:016x}\"",
                    w.name, w.serial.points, w.serial.fnv
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"par\",\"sectors\":{SECTORS},{},\"serial_matches_parallel\":true}}",
            fields.join(",")
        );
        return;
    }

    let fields: Vec<String> = workloads
        .iter()
        .map(|w| {
            format!(
                "\"{0}_points\":{1},\"{0}_fnv\":\"{2:016x}\",\
                 \"{0}_serial_pts_per_s\":{3:.0},\"{0}_w1_pts_per_s\":{4:.0},\
                 \"{0}_w4_pts_per_s\":{5:.0},\"{0}_speedup_permille\":{6}",
                w.name,
                w.serial.points,
                w.serial.fnv,
                Workload::pps(&w.serial),
                Workload::pps(&w.one),
                Workload::pps(&w.four),
                w.speedup_permille()
            )
        })
        .collect();
    let json = format!("{{\"bench\":\"par\",\"cores\":{cores},{}}}", fields.join(","));
    let mut f = std::fs::File::create(&path).expect("create report file");
    writeln!(f, "{json}").expect("write report");
    println!("{json}");
    for w in &workloads {
        eprintln!(
            "{}: serial {:.0} pts/s, 1w {:.0} pts/s, 4w {:.0} pts/s ({} permille)",
            w.name,
            Workload::pps(&w.serial),
            Workload::pps(&w.one),
            Workload::pps(&w.four),
            w.speedup_permille()
        );
    }
}
