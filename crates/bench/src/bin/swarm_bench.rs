//! Shared-plan multicast benchmark (`BENCH_swarm.json`).
//!
//! Registers a swarm of identical counting queries against the
//! supervised runtime twice — once with plan sharing enabled (ISSUE 9:
//! one evaluated pipeline, a subscription tree multicasting
//! `Arc`-shared chunks to every subscriber) and once over the legacy
//! one-pipeline-per-query path — and reports the per-subscriber cost
//! collapse. The unshared oracle runs a smaller swarm (running 1000
//! independent pipelines would prove nothing but patience); costs are
//! compared per subscriber.
//!
//! `--digest` prints exactly one timing-free JSON line (per-subscriber
//! delivery counts, distinct-plan count, payload-copy count, oracle
//! equality) so `scripts/swarm_gate.sh` can run the binary twice and
//! `diff` the outputs to prove shared evaluation is deterministic.

use geostreams_dsms::protocol::{ClientRequest, OutputFormat};
use geostreams_dsms::{run_supervised, FanoutPolicy, IngestStats, RuntimeConfig, ServerMetrics};
use geostreams_satsim::{goes_like, Scanner};
use std::sync::Arc;
use std::time::{Duration, Instant};

// A representative dashboard query: a focal aggregate is the kind of
// per-chunk work whose cost actually multiplies across an unshared
// swarm (cheap plans are dominated by per-subscriber bookkeeping
// either way).
const QUERY: &str =
    "focal(focal(focal(scale(goes-sim.b4-ir, 2, 0), \"mean\", 5), \"max\", 5), \"min\", 5)";
const SECTORS: u64 = 4;
const SHARED_SUBS: usize = 1000;
const ORACLE_SUBS: usize = 32;

fn scanner() -> Scanner {
    goes_like(512, 256, 11)
}

/// Runs `n` identical subscribers; returns per-query (points, sectors)
/// digests, the wall time, and the runtime stats.
fn run_swarm(share: bool, n: usize) -> (Vec<(u64, u64)>, Duration, IngestStats) {
    let requests: Vec<ClientRequest> = (0..n)
        .map(|_| ClientRequest {
            query: QUERY.to_string(),
            format: OutputFormat::Stats,
            sectors: 0,
        })
        .collect();
    let config = RuntimeConfig {
        share_plans: share,
        fanout: FanoutPolicy::Blocking,
        metrics: Some(Arc::new(ServerMetrics::new())),
        ..RuntimeConfig::default()
    };
    let started = Instant::now();
    let (results, stats) =
        run_supervised(&scanner(), SECTORS, &requests, &config).expect("swarm run");
    let wall = started.elapsed();
    let digests = results
        .iter()
        .map(|r| {
            let r = r.as_ref().expect("query result");
            let report = r.report.as_ref().expect("run report");
            (r.points, report.sectors)
        })
        .collect();
    (digests, wall, stats)
}

fn main() {
    let digest_mode = std::env::args().any(|a| a == "--digest");
    let (shared, shared_wall, shared_stats) = run_swarm(true, SHARED_SUBS);
    let (oracle, oracle_wall, oracle_stats) = run_swarm(false, ORACLE_SUBS);

    // Sharing must not change per-subscriber results: every shared
    // subscriber's delivery counts equal the unshared oracle's.
    let identical = !oracle.is_empty()
        && oracle.iter().all(|d| *d == oracle[0])
        && shared.iter().all(|d| *d == oracle[0]);
    let (points, sectors) = oracle.first().copied().unwrap_or((0, 0));

    if digest_mode {
        println!(
            "{{\"bench\":\"swarm\",\"subscribers\":{},\"distinct_plans\":{},\
             \"points_per_subscriber\":{},\"sectors_per_subscriber\":{},\
             \"chunks_multicast\":{},\"payload_copies\":{},\"identical\":{}}}",
            SHARED_SUBS,
            shared_stats.shared_plans,
            points,
            sectors,
            shared_stats.shared_chunks_multicast,
            shared_stats.payload_copies,
            identical
        );
        return;
    }

    let per_sub_shared_ns = shared_wall.as_nanos() / SHARED_SUBS as u128;
    let per_sub_unshared_ns = oracle_wall.as_nanos() / ORACLE_SUBS as u128;
    let collapse_permille =
        per_sub_unshared_ns.saturating_mul(1000).checked_div(per_sub_shared_ns.max(1)).unwrap_or(0);

    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_swarm.json".to_string());
    let json = format!(
        "{{\"bench\":\"swarm\",\"subscribers_shared\":{},\"subscribers_unshared\":{},\
         \"distinct_plans\":{},\"shared_wall_us\":{},\"unshared_wall_us\":{},\
         \"per_subscriber_shared_ns\":{},\"per_subscriber_unshared_ns\":{},\
         \"cost_collapse_permille\":{},\"points_per_subscriber\":{},\
         \"chunks_multicast\":{},\"payload_copies\":{},\"results_identical\":{},\
         \"oracle_shared_plans\":{}}}",
        SHARED_SUBS,
        ORACLE_SUBS,
        shared_stats.shared_plans,
        shared_wall.as_micros(),
        oracle_wall.as_micros(),
        per_sub_shared_ns,
        per_sub_unshared_ns,
        collapse_permille,
        points,
        shared_stats.shared_chunks_multicast,
        shared_stats.payload_copies,
        identical,
        oracle_stats.shared_plans
    );
    std::fs::write(&path, json.as_bytes()).expect("write swarm report");
    println!(
        "wrote {path}: {} shared subscribers over {} distinct plan(s) in {} ms \
         ({} ns/subscriber) vs {} unshared in {} ms ({} ns/subscriber): \
         {}x per-subscriber cost collapse, results identical: {}",
        SHARED_SUBS,
        shared_stats.shared_plans,
        shared_wall.as_millis(),
        per_sub_shared_ns,
        ORACLE_SUBS,
        oracle_wall.as_millis(),
        per_sub_unshared_ns,
        collapse_permille / 1000,
        identical
    );
}
