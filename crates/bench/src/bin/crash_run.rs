//! Crash-recovery kill-point sweep over the tiled raster archive.
//!
//! A clean seeded ingest establishes (a) the total number of bytes the
//! archive writes to disk and (b) a per-frame-prefix digest of the full
//! replay. The sweep then re-runs the same ingest once per kill point
//! under a `ChaosVfs` whose disk dies mid-write at byte `N`, reopens
//! the torn directory with the real filesystem, and checks the
//! durability contract at every point:
//!
//! * recovery restores every group-committed frame — at most one
//!   uncommitted group (`group_commit_frames`) is lost;
//! * the recovered replay is byte-identical to the clean run's prefix
//!   of the same length (no reordering, no phantom frames);
//! * the full recovered replay completes without serving a single
//!   corrupt tile.
//!
//! Output is one deterministic JSON line per kill point (including the
//! serialized `RecoveryReport`), so `scripts/crash_gate.sh` runs the
//! sweep twice and `diff`s the transcripts to prove recovery itself is
//! deterministic.

use geostreams_core::model::{Element, GeoStream};
use geostreams_satsim::goes_like;
use geostreams_store::{Archive, ArchiveConfig, ChaosVfs, DiskFaultPlan};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SECTORS: u64 = 4;
const GROUP: u32 = 4;
const KILL_POINTS: u64 = 12;

fn fnv1a_u32(v: u32, mut hash: u64) -> u64 {
    for b in v.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Small segments force several rolls (and therefore WAL rotations)
/// inside the sweep window; a small group keeps the loss bound tight.
fn config(dir: &Path) -> ArchiveConfig {
    let mut cfg = ArchiveConfig::new(dir);
    cfg.tile_width = 48;
    cfg.max_segment_bytes = 24 * 1024;
    cfg.group_commit_frames = GROUP;
    cfg
}

fn scanner() -> geostreams_satsim::Scanner {
    goes_like(96, 24, 3)
}

/// Ingests the seeded band until the disk dies (or the stream ends);
/// returns how many frames were fed with an `Ok` ingest result.
fn ingest_until_death(archive: &Archive) -> u64 {
    let scanner = scanner();
    let mut stream = scanner.band_stream(0, SECTORS);
    let band = stream.schema().band;
    if archive.bind_band(stream.schema()).is_err() {
        return 0;
    }
    let mut frames_ok = 0u64;
    while let Some(el) = stream.next_element() {
        let is_frame_end = matches!(el, Element::FrameEnd(_));
        match archive.ingest(band, &el) {
            Ok(()) => {
                if is_frame_end {
                    frames_ok += 1;
                }
            }
            Err(_) => return frames_ok,
        }
    }
    let _ = archive.flush();
    frames_ok
}

/// Replays band 0 in full: `(frames, per-frame-prefix digests, failed)`.
/// `digests[k]` hashes every point value of the first `k` frames.
fn replay_digests(archive: &Archive) -> (u64, Vec<u64>, bool) {
    let band = scanner().band_stream(0, 1).schema().band;
    let mut digests = vec![0xcbf2_9ce4_8422_2325u64];
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut frames = 0u64;
    let mut replay = match archive.replay(band, None, None, None) {
        Ok(r) => r,
        // A band that never reached disk replays as zero frames.
        Err(_) => return (0, digests, false),
    };
    while let Some(el) = replay.next_element() {
        match el {
            Element::Point(p) => hash = fnv1a_u32(p.value.to_bits(), hash),
            Element::FrameEnd(_) => {
                frames += 1;
                digests.push(hash);
            }
            _ => {}
        }
    }
    (frames, digests, replay.failed())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gs-crash-run-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    // Clean run: byte budget + reference prefix digests.
    let clean_dir = fresh_dir("clean");
    let chaos = ChaosVfs::new(DiskFaultPlan::seeded(7));
    let probe = chaos.probe();
    let mut cfg = config(&clean_dir);
    cfg.vfs = Arc::new(chaos);
    let archive = Archive::create(cfg).expect("create clean archive");
    let frames_fed = ingest_until_death(&archive);
    let (clean_frames, clean_digests, clean_failed) = replay_digests(&archive);
    drop(archive);
    let total_bytes = probe.stats().bytes_written;
    assert!(!clean_failed, "clean replay must not fail");
    assert_eq!(clean_frames, frames_fed, "clean run must persist every frame");
    let _ = std::fs::remove_dir_all(&clean_dir);
    println!(
        "{{\"run\":\"clean\",\"frames\":{clean_frames},\"bytes\":{total_bytes},\
         \"digest\":\"{:016x}\"}}",
        clean_digests[clean_frames as usize]
    );

    // Kill-point sweep: die at evenly spaced byte offsets.
    for i in 1..=KILL_POINTS {
        let kill_at = (total_bytes * i / (KILL_POINTS + 1)).max(1);
        let dir = fresh_dir(&format!("kill-{i}"));
        let mut cfg = config(&dir);
        cfg.vfs = Arc::new(ChaosVfs::new(DiskFaultPlan::seeded(7).with_crash_at(kill_at)));
        let fed = match Archive::create(cfg) {
            Ok(archive) => {
                let fed = ingest_until_death(&archive);
                drop(archive); // Drop flushes; on a dead disk that is a no-op.
                fed
            }
            Err(_) => 0, // died before the WAL was even born
        };

        // Reopen the torn directory on the real filesystem.
        let archive = Archive::open(config(&dir)).expect("recovery must succeed");
        let report = archive.recovery_report();
        let (recovered, digests, failed) = replay_digests(&archive);
        assert!(!failed, "kill@{kill_at}: recovered replay served a corrupt tile");
        assert!(
            recovered + u64::from(GROUP) >= fed,
            "kill@{kill_at}: lost more than one group ({recovered} of {fed} frames)"
        );
        assert!(recovered <= fed, "kill@{kill_at}: recovered phantom frames");
        assert_eq!(
            digests[recovered as usize], clean_digests[recovered as usize],
            "kill@{kill_at}: recovered replay diverges from the clean prefix"
        );

        // Recover twice: a second open of the repaired directory must be
        // clean and replay to the identical digest (idempotence).
        drop(archive);
        let archive = Archive::open(config(&dir)).expect("second recovery must succeed");
        let (again, digests2, failed2) = replay_digests(&archive);
        assert!(!failed2 && again == recovered, "kill@{kill_at}: recovery is not idempotent");
        assert_eq!(
            digests2[again as usize], digests[recovered as usize],
            "kill@{kill_at}: second recovery changed the replay digest"
        );
        drop(archive);
        let _ = std::fs::remove_dir_all(&dir);

        let report_json = serde_json::to_string(&report).unwrap_or_else(|_| "null".into());
        println!(
            "{{\"run\":\"kill\",\"kill_at\":{kill_at},\"frames_fed\":{fed},\
             \"frames_recovered\":{recovered},\"digest\":\"{:016x}\",\"report\":{report_json}}}",
            digests[recovered as usize]
        );
    }
}
