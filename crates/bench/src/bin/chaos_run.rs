//! Fixed-seed chaos suite with a deterministic digest on stdout.
//!
//! Runs the supervised DSMS runtime over three degraded GOES-like
//! downlinks — row loss + duplication + disorder, a mid-sector decoder
//! crash (supervised restart), and a heavily corrupted feed — and
//! prints one JSON line per scenario describing everything the run
//! produced: per-band element and fault counts, per-source repair
//! stats and sector completeness ratios, delivered point counts, and
//! an FNV-1a hash over every delivered PNG byte.
//!
//! The digest deliberately excludes anything timing-dependent (shed
//! counts, wall clock, watchdog state; channels are sized so shedding
//! cannot trigger), so `scripts/chaos.sh` can run this binary twice and
//! `diff` the outputs: any nondeterminism in fault injection, repair,
//! supervision, or delivery shows up as a diff and fails the gate.

use geostreams_dsms::protocol::{ClientRequest, OutputFormat};
use geostreams_dsms::{run_supervised, QueryResult, RuntimeConfig};
use geostreams_satsim::{goes_like, FaultPlan};
use std::time::Duration;

fn req(q: &str, format: OutputFormat) -> ClientRequest {
    ClientRequest { query: q.to_string(), format, sectors: 0 }
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Serializes one scenario's outcome with stable field order.
fn digest(
    name: &str,
    results: &[geostreams_core::Result<QueryResult>],
    bands: &[(u16, u64)],
    faults: &[(u16, geostreams_satsim::FaultStats)],
    restarts: u64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"scenario\":\"{name}\",\"restarts\":{restarts},\"bands\":["));
    for (i, (band, elements)) in bands.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"band\":{band},\"elements\":{elements}}}"));
    }
    out.push_str("],\"faults\":[");
    for (i, (band, f)) in faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"band\":{band},\"in\":{},\"points_dropped\":{},\"frames_dropped\":{},\"markers_dropped\":{},\"duplicated\":{},\"reordered\":{},\"corrupted\":{},\"died\":{}}}",
            f.elements_in,
            f.points_dropped,
            f.frames_dropped,
            f.end_markers_dropped,
            f.duplicated,
            f.reordered,
            f.corrupted,
            f.died,
        ));
    }
    out.push_str("],\"queries\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match r {
            Err(e) => out.push_str(&format!("{{\"id\":{i},\"error\":\"{e}\"}}")),
            Ok(r) => {
                let png_hash =
                    r.frames.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, f| fnv1a(&f.png, h));
                let points = r.report.as_ref().map_or(0, |rep| rep.points_delivered);
                out.push_str(&format!(
                    "{{\"id\":{},\"points\":{points},\"frames\":{},\"png_fnv\":\"{png_hash:016x}\",\"repair\":[",
                    r.id,
                    r.frames.len(),
                ));
                for (j, s) in r.repair.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"source\":\"{}\",\"gaps\":{},\"dup_frames\":{},\"dup_points\":{},\"disorder\":{},\"partial_frames\":{},\"expected\":{},\"received\":{},\"completeness\":\"{:.6}\",\"sectors\":[",
                        s.source,
                        s.stats.gaps,
                        s.stats.duplicate_frames,
                        s.stats.duplicate_points,
                        s.stats.disorder,
                        s.stats.partial_frames,
                        s.stats.expected_points,
                        s.stats.received_points,
                        s.stats.completeness(),
                    ));
                    for (k, sec) in s.sectors.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"sector\":{},\"ratio\":\"{:.6}\"}}",
                            sec.sector_id,
                            sec.ratio()
                        ));
                    }
                    out.push_str("]}");
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("]}");
    out
}

fn run_scenario(name: &str, plan: FaultPlan, requests: &[ClientRequest], sectors: u64) -> String {
    let scanner = goes_like(64, 32, 11);
    let config = RuntimeConfig {
        fault_plan: Some(plan),
        // Large enough that timing can never shed an element — the
        // digest must depend only on the seed.
        channel_cap: 1 << 16,
        watchdog: Some(Duration::from_secs(120)),
        backoff_base: Duration::from_millis(1),
        ..RuntimeConfig::default()
    };
    let (results, stats) =
        run_supervised(&scanner, sectors, requests, &config).expect("chaos scenario must register");
    digest(name, &results, &stats.elements_per_band, &stats.faults_per_band, stats.restarts)
}

fn main() {
    let requests = vec![
        req("goes-sim.b1-vis", OutputFormat::PngGray),
        req("stretch(goes-sim.b4-ir, \"linear\")", OutputFormat::Stats),
        req("goes-sim.b4-ir", OutputFormat::Stats),
    ];
    println!(
        "{}",
        run_scenario(
            "degraded-downlink",
            FaultPlan::seeded(4242)
                .with_dropped_rows(0.08)
                .with_dropped_points(0.04)
                .with_dropped_end_markers(0.06)
                .with_duplicates(0.05)
                .with_reordering(0.05),
            &requests,
            4,
        )
    );
    println!(
        "{}",
        run_scenario(
            "decoder-crash",
            FaultPlan::seeded(7)
                .with_dropped_rows(0.05)
                .with_duplicates(0.03)
                .with_death_after(700),
            &requests,
            4,
        )
    );
    println!(
        "{}",
        run_scenario(
            "corrupted-feed",
            FaultPlan::seeded(99)
                .with_corruption(0.10, 50.0)
                .with_dropped_points(0.05)
                .with_reordering(0.08),
            &requests,
            3,
        )
    );
}
