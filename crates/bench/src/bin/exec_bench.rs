//! Chunked-execution benchmark (`BENCH_exec.json`).
//!
//! Runs the same pipelines twice — once through the legacy scalar
//! executor loop (one `next_element` virtual call plus an `Instant`
//! pair and a histogram record per element, exactly what the driver
//! did before chunking) and once through the chunk-native
//! [`exec::run_chunked`] driver — and reports points/s for each plus
//! the speedup in permille. Workloads: spatial restriction, value
//! transform, two-stream composition, and a full DSMS shared-ingest
//! fan-out (chunked only; there is no scalar DSMS path anymore).
//!
//! With `--digest` nothing timing-dependent is printed: one JSON line
//! with per-workload point counts and an FNV-1a hash over every pixel
//! delivered by *both* the scalar and the chunked run — so
//! `scripts/exec_gate.sh` can run this binary twice and `diff` the
//! outputs to prove chunked execution is deterministic and
//! scalar-identical.

use geostreams_core::exec;
use geostreams_core::model::{ChunkOrMarker, Element, GeoStream, VecStream, DEFAULT_CHUNK_BUDGET};
use geostreams_core::obs::{Histogram, PipelineObs};
use geostreams_core::ops::{
    Compose, GammaOp, JoinStrategy, MapTransform, SpatialRestrict, ValueFunc,
};
use geostreams_dsms::{run_continuous, ClientRequest, OutputFormat};
use geostreams_geo::{Crs, LatticeGeoref, Rect, Region};
use geostreams_satsim::goes_like;
use std::time::Instant;

const SECTORS: u64 = 6;
const RUNS: usize = 5;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a_u32(v: u32, mut hash: u64) -> u64 {
    for b in v.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// One measured drain: wall seconds, points delivered, pixel hash.
struct Run {
    secs: f64,
    points: u64,
    fnv: u64,
}

/// The pre-chunking executor loop, reproduced verbatim: two
/// `Instant::now` calls, one histogram record, and one virtual
/// `next_element` dispatch per element.
fn run_scalar<S: GeoStream<V = f32>>(stream: &mut S) -> Run {
    let hist = Histogram::new();
    let start = Instant::now();
    let mut points = 0u64;
    let mut fnv = FNV_OFFSET;
    loop {
        let t0 = Instant::now();
        let Some(el) = stream.next_element() else { break };
        hist.record(t0.elapsed().as_nanos() as u64);
        if let Element::Point(p) = el {
            points += 1;
            fnv = fnv1a_u32(p.value.to_bits(), fnv);
        }
    }
    Run { secs: start.elapsed().as_secs_f64(), points, fnv }
}

/// The chunk-native driver with the same per-pixel hashing work.
fn run_chunked<S: GeoStream<V = f32>>(stream: &mut S) -> Run {
    let mut fnv = FNV_OFFSET;
    let start = Instant::now();
    let report = exec::run_chunked(stream, &PipelineObs::default(), DEFAULT_CHUNK_BUDGET, |item| {
        if let ChunkOrMarker::Chunk(c) = item {
            for p in &c.points {
                fnv = fnv1a_u32(p.value.to_bits(), fnv);
            }
        }
    });
    Run { secs: start.elapsed().as_secs_f64(), points: report.points_delivered, fnv }
}

/// Best-of-`RUNS` measurement of one side of a workload; counts and
/// hashes must agree across repeats (they are deterministic).
fn measure<S: GeoStream<V = f32>>(make: impl Fn() -> S, run: impl Fn(&mut S) -> Run) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..RUNS {
        let mut stream = make();
        let r = run(&mut stream);
        if let Some(b) = &best {
            assert_eq!(r.points, b.points, "nondeterministic point count");
            assert_eq!(r.fnv, b.fnv, "nondeterministic pixel hash");
        }
        if best.as_ref().is_none_or(|b| r.secs < b.secs) {
            best = Some(r);
        }
    }
    best.expect("at least one run")
}

const WIDTH: u32 = 512;
const HEIGHT: u32 = 96;

/// A pre-materialized source, so the measurement isolates pipeline
/// execution overhead (dispatch, timing, per-element accounting) from
/// the cost of synthesizing pixel values.
fn materialized(seed: u64) -> VecStream<f32> {
    let bounds = Rect::new(0.0, 0.0, f64::from(WIDTH), f64::from(HEIGHT));
    let lattice = LatticeGeoref::north_up(Crs::LatLon, bounds, WIDTH, HEIGHT);
    VecStream::sectors("bench-src", lattice, SECTORS, move |s, x, y| {
        ((s ^ seed) as f64) + f64::from(x) * 0.01 + f64::from(y) * 0.1
    })
}

/// The central quarter of the materialized source's world footprint.
fn inner_rect() -> Rect {
    let (w, h) = (f64::from(WIDTH), f64::from(HEIGHT));
    Rect::new(w * 0.25, h * 0.25, w * 0.75, h * 0.75)
}

struct Workload {
    name: &'static str,
    scalar: Run,
    chunked: Run,
}

impl Workload {
    fn speedup_permille(&self) -> u64 {
        (self.scalar.secs / self.chunked.secs.max(1e-9) * 1000.0) as u64
    }
    fn scalar_pps(&self) -> f64 {
        self.scalar.points as f64 / self.scalar.secs.max(1e-9)
    }
    fn chunked_pps(&self) -> f64 {
        self.chunked.points as f64 / self.chunked.secs.max(1e-9)
    }
}

fn main() {
    let digest = std::env::args().any(|a| a == "--digest");
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_exec.json".to_string());

    let src = materialized(7);
    let rhs = materialized(8);
    let rect = inner_rect();

    let restrict = || SpatialRestrict::new(src.clone(), Region::Rect(rect));
    let transform =
        || MapTransform::<_, f32>::new(src.clone(), ValueFunc::Linear { scale: 2.0, offset: 1.0 });
    let compose = || {
        Compose::new(src.clone(), rhs.clone(), GammaOp::Add, JoinStrategy::Hash)
            .expect("matching CRS")
    };

    let workloads = vec![
        Workload {
            name: "restrict",
            scalar: measure(restrict, run_scalar),
            chunked: measure(restrict, run_chunked),
        },
        Workload {
            name: "transform",
            scalar: measure(transform, run_scalar),
            chunked: measure(transform, run_chunked),
        },
        Workload {
            name: "compose",
            scalar: measure(compose, run_scalar),
            chunked: measure(compose, run_chunked),
        },
    ];

    for w in &workloads {
        assert_eq!(
            w.scalar.points, w.chunked.points,
            "{}: scalar and chunked point counts diverge",
            w.name
        );
        assert_eq!(
            w.scalar.fnv, w.chunked.fnv,
            "{}: scalar and chunked pixel hashes diverge",
            w.name
        );
    }

    if digest {
        let fields: Vec<String> = workloads
            .iter()
            .map(|w| {
                format!(
                    "\"{0}_points\":{1},\"{0}_fnv\":\"{2:016x}\"",
                    w.name, w.chunked.points, w.chunked.fnv
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"exec\",\"sectors\":{SECTORS},{},\"scalar_matches_chunked\":true}}",
            fields.join(",")
        );
        return;
    }

    // Full DSMS path: shared supervised ingest, two subscribers on one
    // band — chunks cross the fan-out channels end to end.
    let scanner = goes_like(WIDTH, HEIGHT, 7);
    let t0 = Instant::now();
    let requests = vec![
        ClientRequest {
            query: "goes-sim.b1-vis".to_string(),
            format: OutputFormat::Stats,
            sectors: 0,
        },
        ClientRequest {
            query: "scale(goes-sim.b1-vis, 2, 0)".to_string(),
            format: OutputFormat::Stats,
            sectors: 0,
        },
    ];
    let (results, ingest) =
        run_continuous(&scanner, SECTORS, &requests).expect("DSMS bench run failed");
    let dsms_secs = t0.elapsed().as_secs_f64();
    let dsms_points: u64 = results.iter().map(|r| r.as_ref().map(|q| q.points).unwrap_or(0)).sum();
    let dsms_pps = dsms_points as f64 / dsms_secs.max(1e-9);

    let per_workload: Vec<String> = workloads
        .iter()
        .map(|w| {
            format!(
                "\"{0}_points\":{1},\"{0}_scalar_pps\":{2:.0},\"{0}_chunked_pps\":{3:.0},\"{0}_speedup_permille\":{4}",
                w.name,
                w.chunked.points,
                w.scalar_pps(),
                w.chunked_pps(),
                w.speedup_permille()
            )
        })
        .collect();
    let json = format!(
        "{{\"sectors\":{SECTORS},\"chunk_budget\":{DEFAULT_CHUNK_BUDGET},{},\"dsms_points\":{dsms_points},\"dsms_points_per_s\":{dsms_pps:.0},\"dsms_ingest_elements\":{},\"dsms_shed_elements\":{}}}",
        per_workload.join(","),
        ingest.elements_per_band.iter().map(|(_, n)| n).sum::<u64>(),
        ingest.shed_elements,
    );
    std::fs::write(&path, json.as_bytes()).expect("write exec report");
    for w in &workloads {
        println!(
            "{:<10} {:>10.0} pts/s scalar  {:>11.0} pts/s chunked  ({:.2}x)",
            w.name,
            w.scalar_pps(),
            w.chunked_pps(),
            w.speedup_permille() as f64 / 1000.0
        );
    }
    println!(
        "dsms       {dsms_pps:>10.0} pts/s over shared ingest + fan-out ({dsms_points} points)"
    );
    println!("wrote {path}");
}
