//! Shared workload builders for the GeoStreams benchmark harness.
//!
//! Each bench target under `benches/` regenerates one experiment of
//! DESIGN.md §4 (and EXPERIMENTS.md) with criterion-grade timing; the
//! binary `examples/experiments.rs` produces the same tables in one fast
//! pass.

#![warn(missing_docs)]

use geostreams_core::exec::{run_observed, RunSummary};
use geostreams_core::model::{
    ChunkOrMarker, Element, GeoStream, StreamSchema, VecStream, DEFAULT_CHUNK_BUDGET,
};
use geostreams_core::obs::{FlightRecorder, PipelineObs, SpanStream, TraceLog};
use geostreams_core::query::{parse_query, Catalog, Planner};
use geostreams_geo::{Crs, LatticeGeoref, Rect};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A lat/lon test lattice over the U.S. west (keeps the source free of
/// projection math so operator costs dominate).
pub fn latlon_lattice(w: u32, h: u32) -> LatticeGeoref {
    LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 32.0, -114.0, 42.0), w, h)
}

/// Materializes a deterministic row-by-row ramp stream for replay.
pub fn ramp_elements(w: u32, h: u32, sectors: u64) -> (StreamSchema, Vec<Element<f32>>) {
    let mut s: VecStream<f32> =
        VecStream::sectors("ramp", latlon_lattice(w, h), sectors, |q, c, r| {
            f64::from(c) * 0.001 + f64::from(r) * 0.01 + q as f64 * 0.1
        })
        .with_value_range(0.0, 10.0);
    let schema = s.schema().clone();
    let elements = s.drain_elements();
    (schema, elements)
}

/// Replays previously materialized elements as a fresh stream.
pub fn replay(schema: &StreamSchema, elements: &[Element<f32>]) -> VecStream<f32> {
    VecStream::new(schema.clone(), elements.to_vec())
}

/// Interleaves two row-by-row element sequences frame by frame
/// (band-interleaved-by-line transmission).
pub fn interleave_rows(a: &[Element<f32>], b: &[Element<f32>]) -> Vec<(u8, Element<f32>)> {
    let groups = |els: &[Element<f32>]| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::FrameEnd(_));
            out.last_mut().expect("nonempty").push(el.clone());
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    let (ga, gb) = (groups(a), groups(b));
    let mut out = Vec::new();
    for (x, y) in ga.into_iter().zip(gb) {
        out.extend(x.into_iter().map(|e| (0u8, e)));
        out.extend(y.into_iter().map(|e| (1u8, e)));
    }
    out
}

/// Concatenates two element sequences band-sequentially per sector
/// (image-by-image transmission).
pub fn band_sequential(a: &[Element<f32>], b: &[Element<f32>]) -> Vec<(u8, Element<f32>)> {
    let sectors = |els: &[Element<f32>]| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::SectorEnd(_));
            out.last_mut().expect("nonempty").push(el.clone());
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    let (sa, sb) = (sectors(a), sectors(b));
    let mut out = Vec::new();
    for (x, y) in sa.into_iter().zip(sb) {
        out.extend(x.into_iter().map(|e| (0u8, e)));
        out.extend(y.into_iter().map(|e| (1u8, e)));
    }
    out
}

/// Deterministic pseudo-random rectangle generator for client regions.
pub struct RegionGen {
    state: u64,
    world: Rect,
}

impl RegionGen {
    /// Creates a generator over a world rectangle.
    pub fn new(seed: u64, world: Rect) -> Self {
        RegionGen { state: seed, world }
    }

    fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.state >> 33) as f64) / (1u64 << 31) as f64
    }

    /// Next pseudo-random region (1–11 % of the world per axis).
    pub fn next_region(&mut self) -> Rect {
        let w = self.world.width() * (0.01 + 0.1 * self.next_f64());
        let h = self.world.height() * (0.01 + 0.1 * self.next_f64());
        let x = self.world.x_min + self.next_f64() * (self.world.width() - w);
        let y = self.world.y_min + self.next_f64() * (self.world.height() - h);
        Rect::new(x, y, x + w, y + h)
    }
}

/// Pull-latency percentiles of one operator in a traced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpLatencySummary {
    /// Operator name as reported by `collect_stats`.
    pub op: String,
    /// Median per-pull latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile per-pull latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile per-pull latency in nanoseconds.
    pub p99_ns: u64,
    /// Number of pulls recorded for this operator.
    pub pulls: u64,
}

/// Machine-readable observability report for one traced benchmark run
/// (serialized to `BENCH_obs.json` by the `obs_bench` binary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsBenchReport {
    /// Query text executed through the planner.
    pub query: String,
    /// Source grid width in cells.
    pub width: u32,
    /// Source grid height in cells.
    pub height: u32,
    /// Number of sectors in the source stream.
    pub sectors: u64,
    /// Full run summary: wall time, element/point counts, buffer peaks,
    /// root pull-latency percentiles/histogram, and per-op stats.
    pub run: RunSummary,
    /// Per-operator pull-latency percentiles (pipeline order, upstream
    /// first), extracted from the traced per-op histograms.
    pub op_latency_ns: Vec<OpLatencySummary>,
    /// Structured trace events captured during the run.
    pub trace_events: u64,
    /// Trace events dropped by the bounded ring.
    pub trace_dropped: u64,
    /// Instrumentation-overhead measurement on the chunked hot path
    /// (absent in reports written before the tracing layer existed).
    #[serde(default)]
    pub overhead: Option<OverheadReport>,
}

/// Cost of full causal tracing (per-operator spans + flight recorder +
/// trace log + delivery span) on the chunked hot path, measured as
/// traced vs untraced throughput over the same pipeline and data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Points/s through the plain (untraced) chunked driver.
    pub untraced_pps: f64,
    /// Points/s with the full instrumentation stack attached.
    pub traced_pps: f64,
    /// `traced_pps * 1000 / untraced_pps` — the gate bar is >= 950
    /// (tracing costs at most 5%).
    pub traced_throughput_permille: u64,
    /// Points delivered per run (identical on both sides).
    pub points: u64,
    /// FNV-1a hash over every delivered pixel (identical on both sides).
    pub fnv: u64,
    /// Spans the flight recorder captured during one traced run.
    pub spans: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a_u32(v: u32, mut hash: u64) -> u64 {
    for b in v.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// One chunked drain with per-pixel hashing: wall seconds, points, FNV.
fn drain_chunked<S: GeoStream<V = f32>>(stream: &mut S, obs: &PipelineObs) -> (f64, u64, u64) {
    let mut fnv = FNV_OFFSET;
    let start = std::time::Instant::now();
    let report = geostreams_core::exec::run_chunked(stream, obs, DEFAULT_CHUNK_BUDGET, |item| {
        if let ChunkOrMarker::Chunk(c) = item {
            for p in &c.points {
                fnv = fnv1a_u32(p.value.to_bits(), fnv);
            }
        }
    });
    (start.elapsed().as_secs_f64(), report.points_delivered, fnv)
}

/// Measures the cost of the full tracing stack on the chunked hot path:
/// the same planner-built pipeline over the same materialized ramp is
/// drained untraced (plain `build`, default obs) and traced
/// (`build_traced` with a trace log, a flight recorder chaining one
/// span per operator, and a root delivery [`SpanStream`]); each side is
/// best-of-`runs` and both must deliver identical points and pixel
/// hashes.
pub fn run_overhead_bench(w: u32, h: u32, sectors: u64, runs: usize) -> OverheadReport {
    let query = "scale(ramp, 2, 0)";
    let (schema, elements) = ramp_elements(w, h, sectors);
    let mut catalog = Catalog::new();
    let factory_schema = schema.clone();
    catalog.register(schema, move || Box::new(replay(&factory_schema, &elements)));
    let planner = Planner::new(&catalog);
    let expr = parse_query(query).expect("overhead bench query parses");

    // Each iteration times the two sides back to back (alternating
    // which goes first, so frequency ramps and caches do not
    // systematically favor one side) and the reported overhead is the
    // pair with the MEDIAN traced/untraced ratio: on a shared vCPU,
    // background steal bursts hit single drains, so any single pair —
    // fastest, best-ratio, or worst — is an outlier sample, while the
    // median pair is robust to bursts landing on either side.
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    let mut reference: Option<(u64, u64)> = None;
    let mut spans = 0u64;
    for run in 0..runs.max(1) {
        let mut untraced_pipeline = planner.build(&expr).expect("overhead bench query plans");

        let trace = Arc::new(TraceLog::new(4096));
        let rec = Arc::new(FlightRecorder::for_query(1));
        let deliver_id = rec.alloc_span();
        let obs = PipelineObs::for_query(1)
            .with_trace(Arc::clone(&trace))
            .with_recorder(Arc::clone(&rec))
            .under(deliver_id);
        let built = planner.build_traced(&expr, &obs).expect("overhead bench query plans");
        let deliver = rec.begin_with_id(deliver_id, "deliver", 0);
        let mut traced_pipeline = SpanStream::new(built, deliver);

        let (u, t) = if run % 2 == 0 {
            let u = drain_chunked(&mut untraced_pipeline, &PipelineObs::default());
            let t = drain_chunked(&mut traced_pipeline, &obs);
            (u, t)
        } else {
            let t = drain_chunked(&mut traced_pipeline, &obs);
            let u = drain_chunked(&mut untraced_pipeline, &PipelineObs::default());
            (u, t)
        };
        drop(traced_pipeline);
        spans = rec.len() as u64;

        assert_eq!(u.1, t.1, "tracing changed the point count");
        assert_eq!(u.2, t.2, "tracing changed the pixel hash");
        if let Some(r) = &reference {
            assert_eq!((u.1, u.2), *r, "overhead bench run is nondeterministic");
        }
        reference = Some((u.1, u.2));
        pairs.push((u.0, t.0));
    }
    let (points, fnv) = reference.expect("at least one run pair");
    pairs
        .sort_by(|a, b| (a.1 / a.0).partial_cmp(&(b.1 / b.0)).unwrap_or(std::cmp::Ordering::Equal));
    let (untraced_secs, traced_secs) = pairs[pairs.len() / 2];

    let untraced_pps = points as f64 / untraced_secs.max(1e-9);
    let traced_pps = points as f64 / traced_secs.max(1e-9);
    OverheadReport {
        untraced_pps,
        traced_pps,
        traced_throughput_permille: (traced_pps * 1000.0 / untraced_pps.max(1e-9)) as u64,
        points,
        fnv,
        spans,
    }
}

/// Runs a representative traced query over a deterministic ramp source
/// and collects the latency/buffer statistics of every operator for
/// machine consumption (DESIGN.md "Observability").
pub fn run_obs_bench(w: u32, h: u32, sectors: u64) -> ObsBenchReport {
    let query = r#"focal(scale(ramp, 2, 0), "mean", 3)"#;
    let (schema, elements) = ramp_elements(w, h, sectors);
    let mut catalog = Catalog::new();
    let factory_schema = schema.clone();
    catalog.register(schema, move || Box::new(replay(&factory_schema, &elements)));
    let planner = Planner::new(&catalog);
    let expr = parse_query(query).expect("obs bench query parses");
    let trace = Arc::new(TraceLog::new(4096));
    let obs = PipelineObs::for_query(1).with_trace(Arc::clone(&trace));
    let mut pipeline = planner.build_traced(&expr, &obs).expect("obs bench query plans");
    let report = run_observed(&mut pipeline, &obs, |_| {});
    let op_latency_ns = report
        .per_op
        .iter()
        .map(|op| OpLatencySummary {
            op: op.name.clone(),
            p50_ns: op.pull_p50_ns(),
            p95_ns: op.pull_p95_ns(),
            p99_ns: op.pull_p99_ns(),
            pulls: op.pull_latency.as_ref().map_or(0, |h| h.count),
        })
        .collect();
    ObsBenchReport {
        query: query.to_string(),
        width: w,
        height: h,
        sectors,
        run: report.summary(),
        op_latency_ns,
        trace_events: trace.len() as u64,
        trace_dropped: trace.dropped(),
        overhead: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_elements_are_replayable() {
        let (schema, els) = ramp_elements(8, 8, 2);
        let mut a = replay(&schema, &els);
        use geostreams_core::model::GeoStream;
        assert_eq!(a.drain_points().len(), 128);
    }

    #[test]
    fn transports_preserve_all_elements() {
        let (_, a) = ramp_elements(8, 4, 1);
        let (_, b) = ramp_elements(8, 4, 1);
        let n = a.len() + b.len();
        assert_eq!(interleave_rows(&a, &b).len(), n);
        assert_eq!(band_sequential(&a, &b).len(), n);
    }

    #[test]
    fn obs_bench_report_has_latency_and_round_trips() {
        let report = run_obs_bench(32, 32, 2);
        assert!(report.run.points_delivered > 0);
        assert!(report.run.pull_p95_ns > 0, "root pull latency must be observed");
        assert!(
            report.op_latency_ns.iter().any(|o| o.pulls > 0 && o.p95_ns > 0),
            "per-op latency must be traced: {:?}",
            report.op_latency_ns
        );
        assert!(report.trace_events >= 2, "expect at least QueryStart/QueryEnd");
        let json = serde_json::to_string(&report).unwrap();
        let back: ObsBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn overhead_bench_is_deterministic_and_records_spans() {
        let a = run_overhead_bench(32, 32, 2, 2);
        let b = run_overhead_bench(32, 32, 2, 2);
        assert_eq!(a.points, b.points);
        assert_eq!(a.fnv, b.fnv);
        assert_eq!(a.spans, b.spans);
        assert!(a.points > 0);
        // scale(ramp) plans as two wrapped operators plus the delivery
        // span; all of them must have closed into the ring.
        assert!(a.spans >= 3, "expected source+op+deliver spans, got {}", a.spans);
        assert!(a.traced_throughput_permille > 0);
    }

    #[test]
    fn region_gen_is_deterministic_and_in_bounds() {
        let world = Rect::new(0.0, 0.0, 100.0, 50.0);
        let mut g1 = RegionGen::new(7, world);
        let mut g2 = RegionGen::new(7, world);
        for _ in 0..20 {
            let r1 = g1.next_region();
            let r2 = g2.next_region();
            assert_eq!(r1, r2);
            assert!(r1.x_min >= 0.0 && r1.x_max <= 100.0);
            assert!(r1.y_min >= 0.0 && r1.y_max <= 50.0);
        }
    }
}
