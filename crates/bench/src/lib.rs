//! Shared workload builders for the GeoStreams benchmark harness.
//!
//! Each bench target under `benches/` regenerates one experiment of
//! DESIGN.md §4 (and EXPERIMENTS.md) with criterion-grade timing; the
//! binary `examples/experiments.rs` produces the same tables in one fast
//! pass.

#![warn(missing_docs)]

use geostreams_core::model::{Element, GeoStream, StreamSchema, VecStream};
use geostreams_geo::{Crs, LatticeGeoref, Rect};

/// A lat/lon test lattice over the U.S. west (keeps the source free of
/// projection math so operator costs dominate).
pub fn latlon_lattice(w: u32, h: u32) -> LatticeGeoref {
    LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 32.0, -114.0, 42.0), w, h)
}

/// Materializes a deterministic row-by-row ramp stream for replay.
pub fn ramp_elements(w: u32, h: u32, sectors: u64) -> (StreamSchema, Vec<Element<f32>>) {
    let mut s: VecStream<f32> =
        VecStream::sectors("ramp", latlon_lattice(w, h), sectors, |q, c, r| {
            f64::from(c) * 0.001 + f64::from(r) * 0.01 + q as f64 * 0.1
        })
        .with_value_range(0.0, 10.0);
    let schema = s.schema().clone();
    let elements = s.drain_elements();
    (schema, elements)
}

/// Replays previously materialized elements as a fresh stream.
pub fn replay(schema: &StreamSchema, elements: &[Element<f32>]) -> VecStream<f32> {
    VecStream::new(schema.clone(), elements.to_vec())
}

/// Interleaves two row-by-row element sequences frame by frame
/// (band-interleaved-by-line transmission).
pub fn interleave_rows(a: &[Element<f32>], b: &[Element<f32>]) -> Vec<(u8, Element<f32>)> {
    let groups = |els: &[Element<f32>]| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::FrameEnd(_));
            out.last_mut().expect("nonempty").push(el.clone());
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    let (ga, gb) = (groups(a), groups(b));
    let mut out = Vec::new();
    for (x, y) in ga.into_iter().zip(gb) {
        out.extend(x.into_iter().map(|e| (0u8, e)));
        out.extend(y.into_iter().map(|e| (1u8, e)));
    }
    out
}

/// Concatenates two element sequences band-sequentially per sector
/// (image-by-image transmission).
pub fn band_sequential(a: &[Element<f32>], b: &[Element<f32>]) -> Vec<(u8, Element<f32>)> {
    let sectors = |els: &[Element<f32>]| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::SectorEnd(_));
            out.last_mut().expect("nonempty").push(el.clone());
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    let (sa, sb) = (sectors(a), sectors(b));
    let mut out = Vec::new();
    for (x, y) in sa.into_iter().zip(sb) {
        out.extend(x.into_iter().map(|e| (0u8, e)));
        out.extend(y.into_iter().map(|e| (1u8, e)));
    }
    out
}

/// Deterministic pseudo-random rectangle generator for client regions.
pub struct RegionGen {
    state: u64,
    world: Rect,
}

impl RegionGen {
    /// Creates a generator over a world rectangle.
    pub fn new(seed: u64, world: Rect) -> Self {
        RegionGen { state: seed, world }
    }

    fn next_f64(&mut self) -> f64 {
        self.state =
            self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.state >> 33) as f64) / (1u64 << 31) as f64
    }

    /// Next pseudo-random region (1–11 % of the world per axis).
    pub fn next_region(&mut self) -> Rect {
        let w = self.world.width() * (0.01 + 0.1 * self.next_f64());
        let h = self.world.height() * (0.01 + 0.1 * self.next_f64());
        let x = self.world.x_min + self.next_f64() * (self.world.width() - w);
        let y = self.world.y_min + self.next_f64() * (self.world.height() - h);
        Rect::new(x, y, x + w, y + h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_elements_are_replayable() {
        let (schema, els) = ramp_elements(8, 8, 2);
        let mut a = replay(&schema, &els);
        use geostreams_core::model::GeoStream;
        assert_eq!(a.drain_points().len(), 128);
    }

    #[test]
    fn transports_preserve_all_elements() {
        let (_, a) = ramp_elements(8, 4, 1);
        let (_, b) = ramp_elements(8, 4, 1);
        let n = a.len() + b.len();
        assert_eq!(interleave_rows(&a, &b).len(), n);
        assert_eq!(band_sequential(&a, &b).len(), n);
    }

    #[test]
    fn region_gen_is_deterministic_and_in_bounds() {
        let world = Rect::new(0.0, 0.0, 100.0, 50.0);
        let mut g1 = RegionGen::new(7, world);
        let mut g2 = RegionGen::new(7, world);
        for _ in 0..20 {
            let r1 = g1.next_region();
            let r2 = g2.next_region();
            assert_eq!(r1, r2);
            assert!(r1.x_min >= 0.0 && r1.x_max <= 100.0);
            assert!(r1.y_min >= 0.0 && r1.y_max <= 50.0);
        }
    }
}
