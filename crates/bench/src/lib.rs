//! Shared workload builders for the GeoStreams benchmark harness.
//!
//! Each bench target under `benches/` regenerates one experiment of
//! DESIGN.md §4 (and EXPERIMENTS.md) with criterion-grade timing; the
//! binary `examples/experiments.rs` produces the same tables in one fast
//! pass.

#![warn(missing_docs)]

use geostreams_core::exec::{run_observed, RunSummary};
use geostreams_core::model::{Element, GeoStream, StreamSchema, VecStream};
use geostreams_core::obs::{PipelineObs, TraceLog};
use geostreams_core::query::{parse_query, Catalog, Planner};
use geostreams_geo::{Crs, LatticeGeoref, Rect};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A lat/lon test lattice over the U.S. west (keeps the source free of
/// projection math so operator costs dominate).
pub fn latlon_lattice(w: u32, h: u32) -> LatticeGeoref {
    LatticeGeoref::north_up(Crs::LatLon, Rect::new(-124.0, 32.0, -114.0, 42.0), w, h)
}

/// Materializes a deterministic row-by-row ramp stream for replay.
pub fn ramp_elements(w: u32, h: u32, sectors: u64) -> (StreamSchema, Vec<Element<f32>>) {
    let mut s: VecStream<f32> =
        VecStream::sectors("ramp", latlon_lattice(w, h), sectors, |q, c, r| {
            f64::from(c) * 0.001 + f64::from(r) * 0.01 + q as f64 * 0.1
        })
        .with_value_range(0.0, 10.0);
    let schema = s.schema().clone();
    let elements = s.drain_elements();
    (schema, elements)
}

/// Replays previously materialized elements as a fresh stream.
pub fn replay(schema: &StreamSchema, elements: &[Element<f32>]) -> VecStream<f32> {
    VecStream::new(schema.clone(), elements.to_vec())
}

/// Interleaves two row-by-row element sequences frame by frame
/// (band-interleaved-by-line transmission).
pub fn interleave_rows(a: &[Element<f32>], b: &[Element<f32>]) -> Vec<(u8, Element<f32>)> {
    let groups = |els: &[Element<f32>]| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::FrameEnd(_));
            out.last_mut().expect("nonempty").push(el.clone());
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    let (ga, gb) = (groups(a), groups(b));
    let mut out = Vec::new();
    for (x, y) in ga.into_iter().zip(gb) {
        out.extend(x.into_iter().map(|e| (0u8, e)));
        out.extend(y.into_iter().map(|e| (1u8, e)));
    }
    out
}

/// Concatenates two element sequences band-sequentially per sector
/// (image-by-image transmission).
pub fn band_sequential(a: &[Element<f32>], b: &[Element<f32>]) -> Vec<(u8, Element<f32>)> {
    let sectors = |els: &[Element<f32>]| {
        let mut out: Vec<Vec<Element<f32>>> = vec![Vec::new()];
        for el in els {
            let boundary = matches!(el, Element::SectorEnd(_));
            out.last_mut().expect("nonempty").push(el.clone());
            if boundary {
                out.push(Vec::new());
            }
        }
        out.retain(|g| !g.is_empty());
        out
    };
    let (sa, sb) = (sectors(a), sectors(b));
    let mut out = Vec::new();
    for (x, y) in sa.into_iter().zip(sb) {
        out.extend(x.into_iter().map(|e| (0u8, e)));
        out.extend(y.into_iter().map(|e| (1u8, e)));
    }
    out
}

/// Deterministic pseudo-random rectangle generator for client regions.
pub struct RegionGen {
    state: u64,
    world: Rect,
}

impl RegionGen {
    /// Creates a generator over a world rectangle.
    pub fn new(seed: u64, world: Rect) -> Self {
        RegionGen { state: seed, world }
    }

    fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.state >> 33) as f64) / (1u64 << 31) as f64
    }

    /// Next pseudo-random region (1–11 % of the world per axis).
    pub fn next_region(&mut self) -> Rect {
        let w = self.world.width() * (0.01 + 0.1 * self.next_f64());
        let h = self.world.height() * (0.01 + 0.1 * self.next_f64());
        let x = self.world.x_min + self.next_f64() * (self.world.width() - w);
        let y = self.world.y_min + self.next_f64() * (self.world.height() - h);
        Rect::new(x, y, x + w, y + h)
    }
}

/// Pull-latency percentiles of one operator in a traced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpLatencySummary {
    /// Operator name as reported by `collect_stats`.
    pub op: String,
    /// Median per-pull latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile per-pull latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile per-pull latency in nanoseconds.
    pub p99_ns: u64,
    /// Number of pulls recorded for this operator.
    pub pulls: u64,
}

/// Machine-readable observability report for one traced benchmark run
/// (serialized to `BENCH_obs.json` by the `obs_bench` binary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsBenchReport {
    /// Query text executed through the planner.
    pub query: String,
    /// Source grid width in cells.
    pub width: u32,
    /// Source grid height in cells.
    pub height: u32,
    /// Number of sectors in the source stream.
    pub sectors: u64,
    /// Full run summary: wall time, element/point counts, buffer peaks,
    /// root pull-latency percentiles/histogram, and per-op stats.
    pub run: RunSummary,
    /// Per-operator pull-latency percentiles (pipeline order, upstream
    /// first), extracted from the traced per-op histograms.
    pub op_latency_ns: Vec<OpLatencySummary>,
    /// Structured trace events captured during the run.
    pub trace_events: u64,
    /// Trace events dropped by the bounded ring.
    pub trace_dropped: u64,
}

/// Runs a representative traced query over a deterministic ramp source
/// and collects the latency/buffer statistics of every operator for
/// machine consumption (DESIGN.md "Observability").
pub fn run_obs_bench(w: u32, h: u32, sectors: u64) -> ObsBenchReport {
    let query = r#"focal(scale(ramp, 2, 0), "mean", 3)"#;
    let (schema, elements) = ramp_elements(w, h, sectors);
    let mut catalog = Catalog::new();
    let factory_schema = schema.clone();
    catalog.register(schema, move || Box::new(replay(&factory_schema, &elements)));
    let planner = Planner::new(&catalog);
    let expr = parse_query(query).expect("obs bench query parses");
    let trace = Arc::new(TraceLog::new(4096));
    let obs = PipelineObs::for_query(1).with_trace(Arc::clone(&trace));
    let mut pipeline = planner.build_traced(&expr, &obs).expect("obs bench query plans");
    let report = run_observed(&mut pipeline, &obs, |_| {});
    let op_latency_ns = report
        .per_op
        .iter()
        .map(|op| OpLatencySummary {
            op: op.name.clone(),
            p50_ns: op.pull_p50_ns(),
            p95_ns: op.pull_p95_ns(),
            p99_ns: op.pull_p99_ns(),
            pulls: op.pull_latency.as_ref().map_or(0, |h| h.count),
        })
        .collect();
    ObsBenchReport {
        query: query.to_string(),
        width: w,
        height: h,
        sectors,
        run: report.summary(),
        op_latency_ns,
        trace_events: trace.len() as u64,
        trace_dropped: trace.dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_elements_are_replayable() {
        let (schema, els) = ramp_elements(8, 8, 2);
        let mut a = replay(&schema, &els);
        use geostreams_core::model::GeoStream;
        assert_eq!(a.drain_points().len(), 128);
    }

    #[test]
    fn transports_preserve_all_elements() {
        let (_, a) = ramp_elements(8, 4, 1);
        let (_, b) = ramp_elements(8, 4, 1);
        let n = a.len() + b.len();
        assert_eq!(interleave_rows(&a, &b).len(), n);
        assert_eq!(band_sequential(&a, &b).len(), n);
    }

    #[test]
    fn obs_bench_report_has_latency_and_round_trips() {
        let report = run_obs_bench(32, 32, 2);
        assert!(report.run.points_delivered > 0);
        assert!(report.run.pull_p95_ns > 0, "root pull latency must be observed");
        assert!(
            report.op_latency_ns.iter().any(|o| o.pulls > 0 && o.p95_ns > 0),
            "per-op latency must be traced: {:?}",
            report.op_latency_ns
        );
        assert!(report.trace_events >= 2, "expect at least QueryStart/QueryEnd");
        let json = serde_json::to_string(&report).unwrap();
        let back: ObsBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn region_gen_is_deterministic_and_in_bounds() {
        let world = Rect::new(0.0, 0.0, 100.0, 50.0);
        let mut g1 = RegionGen::new(7, world);
        let mut g2 = RegionGen::new(7, world);
        for _ in 0..20 {
            let r1 = g1.next_region();
            let r2 = g2.next_region();
            assert_eq!(r1, r2);
            assert!(r1.x_min >= 0.0 && r1.x_max <= 100.0);
            assert!(r1.y_min >= 0.0 && r1.y_max <= 50.0);
        }
    }
}
