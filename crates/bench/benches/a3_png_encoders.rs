//! A3 — ablation: PNG delivery encoder configurations (scanline filter ×
//! DEFLATE strategy), on a real simulated GOES sector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_core::ops::ImageAssembler;
use geostreams_raster::png::{self, Filter, PngOptions, Strategy};
use geostreams_raster::Grid2D;
use geostreams_satsim::goes_like;
use std::hint::black_box;

fn bench_png(c: &mut Criterion) {
    let scanner = goes_like(384, 192, 13);
    let mut assembler = ImageAssembler::new(scanner.band_stream(0, 1));
    let img = assembler.next_image().expect("image");
    let gray: Grid2D<u8> = img.grid.map(|v| (v.clamp(0.0, 1.0) * 255.0) as u8);

    let mut group = c.benchmark_group("a3_png_encode");
    group.sample_size(15);
    group.throughput(Throughput::Bytes(gray.len() as u64));
    for filter in [Filter::None, Filter::Sub] {
        for strategy in [Strategy::Stored, Strategy::FixedHuffman] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{filter:?}+{strategy:?}")),
                &(filter, strategy),
                |b, &(filter, strategy)| {
                    b.iter(|| {
                        black_box(png::encode_gray(&gray, PngOptions { filter, strategy }).len())
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("a3_png_decode");
    group.sample_size(15);
    let encoded = png::encode_gray(
        &gray,
        PngOptions { filter: Filter::Sub, strategy: Strategy::FixedHuffman },
    );
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("decode_sub_fixed", |b| {
        b.iter(|| black_box(png::decode(&encoded).expect("decodes")))
    });
    group.finish();

    // Size ordering: Sub+FixedHuffman must be the smallest on smooth
    // radiance imagery.
    let sizes: Vec<usize> = [
        (Filter::None, Strategy::Stored),
        (Filter::None, Strategy::FixedHuffman),
        (Filter::Sub, Strategy::FixedHuffman),
    ]
    .iter()
    .map(|&(filter, strategy)| png::encode_gray(&gray, PngOptions { filter, strategy }).len())
    .collect();
    assert!(sizes[2] < sizes[1] && sizes[1] < sizes[0], "{sizes:?}");
}

criterion_group!(benches, bench_png);
criterion_main!(benches);
