//! A1 — ablation: interpolation kernels of the re-projection operator
//! (nearest vs bilinear vs bicubic): §3.2's "linear interpolations or
//! higher-order fitting routines".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_core::model::GeoStream;
use geostreams_core::ops::{Reproject, ReprojectConfig};
use geostreams_geo::Crs;
use geostreams_raster::resample::Kernel;
use geostreams_satsim::goes_like;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let scanner = goes_like(160, 80, 5);
    let mut group = c.benchmark_group("a1_kernels");
    group.sample_size(10);
    group.throughput(Throughput::Elements(160 * 80));
    for kernel in [Kernel::Nearest, Kernel::Bilinear, Kernel::Bicubic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    let op = Reproject::new(
                        scanner.band_stream(0, 1),
                        ReprojectConfig::new(Crs::LatLon).kernel(kernel),
                    )
                    .expect("reproject");
                    let mut op = op;
                    let mut n = 0u64;
                    while let Some(el) = op.next_element() {
                        if el.is_point() {
                            n += 1;
                        }
                    }
                    black_box(n)
                })
            },
        );
    }
    group.finish();

    // Raw kernel sampling microbenchmark (isolated from projections).
    use geostreams_raster::resample::sample;
    use geostreams_raster::Grid2D;
    let grid = Grid2D::from_fn(256, 256, |c, r| (c * r) as f32);
    let mut group = c.benchmark_group("a1_sample_micro");
    for kernel in [Kernel::Nearest, Kernel::Bilinear, Kernel::Bicubic] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for i in 0..10_000 {
                        let fc = (i % 250) as f64 + 0.37;
                        let fr = (i / 40) as f64 * 0.99 + 0.21;
                        acc += sample(&grid, fc, fr, kernel);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
