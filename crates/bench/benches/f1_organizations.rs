//! F1 — Fig. 1: stream generation throughput for the three point
//! organizations (image-by-image, row-by-row, point-by-point).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geostreams_core::model::GeoStream;
use geostreams_geo::Rect;
use geostreams_satsim::{airborne::airborne_camera, goes_like, lidar::lidar_profiler};
use std::hint::black_box;

fn bench_organizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_generation");
    group.sample_size(15);

    let n = 128u32;
    let airborne = airborne_camera(Rect::new(-122.0, 37.0, -121.5, 37.4), n, n, 3);
    let goes = goes_like(n, n / 2, 3);
    let lidar = lidar_profiler(Rect::new(-120.0, 38.0, -119.0, 38.1), n * 2, 4, 3);

    let cases: Vec<(&str, &geostreams_satsim::Scanner, u64)> = vec![
        ("image_by_image", &airborne, u64::from(n) * u64::from(n)),
        ("row_by_row", &goes, u64::from(n) * u64::from(n / 2)),
        ("point_by_point", &lidar, u64::from(n * 2) * 4),
    ];
    for (name, scanner, points) in cases {
        group.throughput(Throughput::Elements(points));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = scanner.band_stream(0, 1);
                let mut count = 0u64;
                while let Some(el) = s.next_element() {
                    if el.is_point() {
                        count += 1;
                    }
                }
                black_box(count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_organizations);
criterion_main!(benches);
