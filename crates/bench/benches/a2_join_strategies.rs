//! A2 — ablation: composition join strategies (symmetric hash join vs
//! frame-at-a-time merge).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_bench::{ramp_elements, replay};
use geostreams_core::model::GeoStream;
use geostreams_core::ops::{Compose, GammaOp, JoinStrategy};
use std::hint::black_box;

fn bench_join_strategies(c: &mut Criterion) {
    let (w, h, sectors) = (192u32, 192u32, 2u64);
    let (schema, a) = ramp_elements(w, h, sectors);
    let (_, b_els) = ramp_elements(w, h, sectors);
    let points = u64::from(w) * u64::from(h) * sectors;

    let mut group = c.benchmark_group("a2_join");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points));
    for strategy in [JoinStrategy::Hash, JoinStrategy::FrameMerge] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |bch, &strategy| {
                bch.iter(|| {
                    let op = Compose::new(
                        replay(&schema, &a),
                        replay(&schema, &b_els),
                        GammaOp::Mul,
                        strategy,
                    )
                    .expect("compose");
                    let mut op = op;
                    let mut n = 0u64;
                    while let Some(el) = op.next_element() {
                        if el.is_point() {
                            n += 1;
                        }
                    }
                    black_box(n)
                })
            },
        );
    }
    group.finish();

    // Identical outputs across strategies.
    let run = |strategy| {
        let mut op =
            Compose::new(replay(&schema, &a), replay(&schema, &b_els), GammaOp::Mul, strategy)
                .expect("compose");
        let mut pts = op.drain_points();
        pts.sort_by_key(|p| (p.cell.row, p.cell.col));
        pts.iter().map(|p| p.value).collect::<Vec<f32>>()
    };
    assert_eq!(run(JoinStrategy::Hash), run(JoinStrategy::FrameMerge));
}

criterion_group!(benches, bench_join_strategies);
criterion_main!(benches);
