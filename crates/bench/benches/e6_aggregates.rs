//! E6 — §6 / [27]: spatio-temporal aggregate operator. Cost and buffer
//! scale with the sliding window length W (buffer = W images).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_bench::{ramp_elements, replay};
use geostreams_core::model::GeoStream;
use geostreams_core::ops::{AggFunc, SpatialAggregate, TemporalAggregate};
use geostreams_geo::{Rect, Region};
use std::hint::black_box;

fn drain<S: GeoStream>(mut s: S) -> u64 {
    let mut n = 0;
    while let Some(el) = s.next_element() {
        if el.is_point() {
            n += 1;
        }
    }
    n
}

fn bench_aggregates(c: &mut Criterion) {
    let (w, h, sectors) = (96u32, 96u32, 12u64);
    let (schema, elements) = ramp_elements(w, h, sectors);
    let points = u64::from(w) * u64::from(h) * sectors;

    let mut group = c.benchmark_group("e6_temporal_window");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points));
    for window in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("mean", window), &window, |b, &window| {
            b.iter(|| {
                let op = TemporalAggregate::new(replay(&schema, &elements), AggFunc::Mean, window);
                black_box(drain(op))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e6_spatial");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points));
    let region = Region::Rect(Rect::new(-122.0, 34.0, -117.0, 39.0));
    for func in [AggFunc::Mean, AggFunc::Max, AggFunc::Count] {
        group.bench_with_input(
            BenchmarkId::new("region", format!("{func:?}")),
            &func,
            |b, &func| {
                b.iter(|| {
                    let op =
                        SpatialAggregate::new(replay(&schema, &elements), func, region.clone());
                    black_box(drain(op))
                })
            },
        );
    }
    group.finish();

    // Buffer = W images, exactly.
    let op = TemporalAggregate::new(replay(&schema, &elements), AggFunc::Mean, 8);
    let mut op = op;
    let _ = drain(&mut op);
    assert_eq!(op.op_stats().buffered_points_peak, 8 * u64::from(w) * u64::from(h));
}

criterion_group!(benches, bench_aggregates);
criterion_main!(benches);
