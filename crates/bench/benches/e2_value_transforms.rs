//! E2 — §3.2 claims: point-wise value transforms are O(1) per point;
//! stretch transforms buffer the frame/image ("the cost of a stretch
//! transform operator is determined by the size of the largest frame").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_bench::{ramp_elements, replay};
use geostreams_core::model::GeoStream;
use geostreams_core::ops::{MapTransform, StretchMode, StretchScope, StretchTransform, ValueFunc};
use std::hint::black_box;

fn drain<S: GeoStream>(mut s: S) -> u64 {
    let mut n = 0;
    while let Some(el) = s.next_element() {
        if el.is_point() {
            n += 1;
        }
    }
    n
}

fn bench_value_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_value_transforms");
    group.sample_size(15);
    for mult in [1u32, 2] {
        let (w, h) = (256 * mult, 128 * mult);
        let points = u64::from(w) * u64::from(h);
        let (schema, elements) = ramp_elements(w, h, 1);
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(BenchmarkId::new("map_linear", points), &(), |b, ()| {
            b.iter(|| {
                let op: MapTransform<_, f32> = MapTransform::new(
                    replay(&schema, &elements),
                    ValueFunc::Linear { scale: 0.5, offset: 1.0 },
                );
                black_box(drain(op))
            })
        });
        group.bench_with_input(BenchmarkId::new("stretch_frame", points), &(), |b, ()| {
            b.iter(|| {
                let op = StretchTransform::new(
                    replay(&schema, &elements),
                    StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
                    StretchScope::Frame,
                );
                black_box(drain(op))
            })
        });
        group.bench_with_input(BenchmarkId::new("stretch_image", points), &(), |b, ()| {
            b.iter(|| {
                let op = StretchTransform::new(
                    replay(&schema, &elements),
                    StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
                    StretchScope::Image,
                );
                black_box(drain(op))
            })
        });
        group.bench_with_input(BenchmarkId::new("histeq_image", points), &(), |b, ()| {
            b.iter(|| {
                let op = StretchTransform::new(
                    replay(&schema, &elements),
                    StretchMode::HistEq { bins: 256 },
                    StretchScope::Image,
                );
                black_box(drain(op))
            })
        });
    }
    group.finish();

    // Buffer claim: image stretch buffers the whole image.
    let (schema, elements) = ramp_elements(128, 128, 1);
    let mut op = StretchTransform::new(
        replay(&schema, &elements),
        StretchMode::Linear { out_lo: 0.0, out_hi: 1.0 },
        StretchScope::Image,
    );
    let _ = drain(&mut op);
    assert_eq!(op.op_stats().buffered_points_peak, 128 * 128);
}

criterion_group!(benches, bench_value_transforms);
criterion_main!(benches);
