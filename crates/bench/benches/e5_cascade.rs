//! E5 — §4 / [10]: the dynamic cascade tree as a single shared spatial
//! restriction for many registered queries, vs the naive per-query scan.
//! The interesting output is the crossover point as the query count
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_bench::{latlon_lattice, RegionGen};
use geostreams_core::query::cascade::{CascadeTree, NaiveRegionIndex, RegionIndex};
use geostreams_geo::Cell;
use std::hint::black_box;

fn bench_cascade(c: &mut Criterion) {
    let lattice = latlon_lattice(256, 256);
    let world = lattice.world_bbox();
    let mut points = Vec::new();
    for row in 0..lattice.height {
        for col in 0..lattice.width {
            points.push(lattice.cell_to_world(Cell::new(col, row)));
        }
    }

    let mut group = c.benchmark_group("e5_routing");
    group.sample_size(12);
    group.throughput(Throughput::Elements(points.len() as u64));
    for n in [4usize, 64, 256, 1024] {
        let mut gen = RegionGen::new(0xDEADBEEF, world);
        let regions: Vec<_> = (0..n).map(|_| gen.next_region()).collect();

        let mut naive = NaiveRegionIndex::new();
        let mut cascade = CascadeTree::new(world, 10);
        for (i, r) in regions.iter().enumerate() {
            naive.insert(i as u32, *r);
            cascade.insert(i as u32, *r);
        }

        group.bench_with_input(BenchmarkId::new("naive", n), &(), |b, ()| {
            b.iter(|| {
                let mut hits = Vec::with_capacity(16);
                let mut total = 0u64;
                for p in &points {
                    hits.clear();
                    naive.query_point(*p, &mut hits);
                    total += hits.len() as u64;
                }
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("cascade", n), &(), |b, ()| {
            b.iter(|| {
                let mut hits = Vec::with_capacity(16);
                let mut total = 0u64;
                for p in &points {
                    hits.clear();
                    cascade.query_point(*p, &mut hits);
                    total += hits.len() as u64;
                }
                black_box(total)
            })
        });

        // Both must route identically.
        let mut a = Vec::new();
        let mut b = Vec::new();
        naive.query_point(points[points.len() / 2], &mut a);
        cascade.query_point(points[points.len() / 2], &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
    group.finish();

    // Dynamic maintenance: insert/remove churn.
    let mut group = c.benchmark_group("e5_maintenance");
    group.sample_size(12);
    group.bench_function("cascade_insert_remove_256", |b| {
        let mut gen = RegionGen::new(7, world);
        let regions: Vec<_> = (0..256).map(|_| gen.next_region()).collect();
        b.iter(|| {
            let mut tree = CascadeTree::new(world, 10);
            for (i, r) in regions.iter().enumerate() {
                tree.insert(i as u32, *r);
            }
            for i in 0..256u32 {
                tree.remove(i);
            }
            black_box(tree.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cascade);
criterion_main!(benches);
