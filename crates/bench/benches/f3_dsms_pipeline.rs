//! F3 — Fig. 3: end-to-end throughput of the prototype DSMS: ingest →
//! reprojection → per-client queries → PNG delivery, sequential and one
//! thread per query.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geostreams_dsms::{Dsms, OutputFormat};
use geostreams_satsim::goes_like;
use std::hint::black_box;
use std::sync::Arc;

fn queries() -> Vec<(&'static str, OutputFormat)> {
    vec![
        (
            "restrict_space(goes-sim.b1-vis, bbox(-105, 30, -95, 40), \"latlon\")",
            OutputFormat::PngGray,
        ),
        ("ndvi(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4))", OutputFormat::PngNdvi),
        ("stretch(goes-sim.b4-ir, \"linear\")", OutputFormat::PngThermal),
        ("sub(goes-sim.b4-ir, goes-sim.b5-ir)", OutputFormat::Stats),
    ]
}

fn bench_dsms(c: &mut Criterion) {
    let scanner = goes_like(128, 64, 9);
    let points_per_pass: u64 = (0..5).map(|i| scanner.instrument.band_points_per_sector(i)).sum();

    let mut group = c.benchmark_group("f3_dsms");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points_per_pass));

    group.bench_function("four_queries_sequential", |b| {
        b.iter(|| {
            let server = Arc::new(Dsms::over_scanner(&scanner, 1));
            let mut frames = 0usize;
            for (q, fmt) in queries() {
                let h = server.register_text(q, fmt, 1).expect("registers");
                let r = server.run_query(&h).expect("runs");
                frames += r.frames.len();
            }
            black_box(frames)
        })
    });

    group.bench_function("four_queries_parallel", |b| {
        b.iter(|| {
            let server = Arc::new(Dsms::over_scanner(&scanner, 1));
            for (q, fmt) in queries() {
                server.register_text(q, fmt, 1).expect("registers");
            }
            let results = server.run_all_parallel();
            black_box(results.len())
        })
    });

    group.bench_function("http_round_trip", |b| {
        let server = Arc::new(Dsms::over_scanner(&scanner, 1));
        b.iter(|| {
            let resp =
                server.handle_http("GET /query?q=goes-sim.b4-ir&format=png&sectors=1 HTTP/1.1");
            black_box(resp.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dsms);
criterion_main!(benches);
