//! X1 — extension operators: focal neighborhoods, exact orientations,
//! temporal delay (change detection), and load shedding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_bench::{ramp_elements, replay};
use geostreams_core::model::{tee2, GeoStream};
use geostreams_core::ops::{
    Compose, Delay, FocalFunc, FocalTransform, GammaOp, JoinStrategy, Orient, Orientation, Shed,
    ShedPolicy,
};
use std::hint::black_box;

fn drain<S: GeoStream>(mut s: S) -> u64 {
    let mut n = 0;
    while let Some(el) = s.next_element() {
        if el.is_point() {
            n += 1;
        }
    }
    n
}

fn bench_extensions(c: &mut Criterion) {
    let (w, h) = (192u32, 192u32);
    let points = u64::from(w) * u64::from(h);
    let (schema, elements) = ramp_elements(w, h, 1);

    let mut group = c.benchmark_group("x1_focal");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points));
    for (name, func, k) in [
        ("mean3", FocalFunc::Mean, 3u32),
        ("mean7", FocalFunc::Mean, 7),
        ("median3", FocalFunc::Median, 3),
        ("sobel", FocalFunc::Sobel, 3),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| black_box(drain(FocalTransform::new(replay(&schema, &elements), func, k))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("x1_orient_shed_delay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points));
    group.bench_function("orient_rot90", |b| {
        b.iter(|| black_box(drain(Orient::new(replay(&schema, &elements), Orientation::Rot90))))
    });
    group.bench_function("shed_rows_4", |b| {
        b.iter(|| black_box(drain(Shed::new(replay(&schema, &elements), ShedPolicy::Rows, 4))))
    });
    group.bench_function("shed_points_4", |b| {
        b.iter(|| black_box(drain(Shed::new(replay(&schema, &elements), ShedPolicy::Points, 4))))
    });
    // Change detection: G - delay(G, 1) over 4 sectors.
    let (schema4, elements4) = ramp_elements(96, 96, 4);
    group.bench_function("change_detection", |b| {
        b.iter(|| {
            let (live, past) = tee2(replay(&schema4, &elements4));
            let delayed = Delay::new(past, 1);
            let diff =
                Compose::new(live, delayed, GammaOp::Sub, JoinStrategy::Hash).expect("compose");
            black_box(drain(diff))
        })
    });
    group.finish();

    // Shape checks.
    let mut op = FocalTransform::new(replay(&schema, &elements), FocalFunc::Mean, 5);
    let _ = drain(&mut op);
    assert!(op.op_stats().buffered_points_peak <= u64::from(7 * w));
    let mut op = Orient::new(replay(&schema, &elements), Orientation::Rot180);
    let _ = drain(&mut op);
    assert_eq!(op.op_stats().buffered_points_peak, 0);
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
