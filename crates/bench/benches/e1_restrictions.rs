//! E1 — §3.1 claim: restriction operators are non-blocking with constant
//! per-point cost, independent of the input stream size.
//!
//! Regenerates: per-point restriction cost across stream sizes (flat
//! line) and selectivities, plus the zero-buffer check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_bench::{latlon_lattice, ramp_elements, replay};
use geostreams_core::model::{GeoStream, TimeSet};
use geostreams_core::ops::{SpatialRestrict, TemporalRestrict, ValueRestrict};
use geostreams_geo::{Rect, Region};
use std::hint::black_box;

fn drain<S: GeoStream>(mut s: S) -> u64 {
    let mut n = 0;
    while let Some(el) = s.next_element() {
        if el.is_point() {
            n += 1;
        }
    }
    n
}

fn bench_restrictions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_spatial_restrict_scaling");
    group.sample_size(20);
    // Sweep stream size; per-point cost must stay flat.
    for mult in [1u32, 2, 4] {
        let (w, h) = (256 * mult, 256);
        let (schema, elements) = ramp_elements(w, h, 1);
        let world = latlon_lattice(w, h).world_bbox();
        let region = Region::Rect(Rect::new(
            world.x_min,
            world.y_min,
            world.x_min + world.width() / 2.0,
            world.y_min + world.height() / 2.0,
        ));
        group.throughput(Throughput::Elements(u64::from(w) * u64::from(h)));
        group.bench_with_input(
            BenchmarkId::from_parameter((w as u64) * (h as u64)),
            &(),
            |b, ()| {
                b.iter(|| {
                    let op = SpatialRestrict::new(replay(&schema, &elements), region.clone());
                    black_box(drain(op))
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e1_selectivity");
    group.sample_size(20);
    let (w, h) = (256u32, 256u32);
    let (schema, elements) = ramp_elements(w, h, 1);
    let world = latlon_lattice(w, h).world_bbox();
    for pct in [1u32, 25, 100] {
        let frac = (f64::from(pct) / 100.0).sqrt();
        let region = Region::Rect(Rect::new(
            world.x_min,
            world.y_min,
            world.x_min + world.width() * frac,
            world.y_min + world.height() * frac,
        ));
        group.throughput(Throughput::Elements(u64::from(w) * u64::from(h)));
        group.bench_with_input(BenchmarkId::new("bbox", pct), &(), |b, ()| {
            b.iter(|| {
                let op = SpatialRestrict::new(replay(&schema, &elements), region.clone());
                black_box(drain(op))
            })
        });
    }
    // Temporal and value restrictions at the same scale.
    group.bench_function("temporal_interval", |b| {
        b.iter(|| {
            let op = TemporalRestrict::new(
                replay(&schema, &elements),
                TimeSet::Interval { lo: Some(0), hi: Some(1) },
            );
            black_box(drain(op))
        })
    });
    group.bench_function("value_range", |b| {
        b.iter(|| {
            let op = ValueRestrict::range(replay(&schema, &elements), 0.5, 1.5);
            black_box(drain(op))
        })
    });
    group.finish();

    // The zero-buffer claim, checked once per run.
    let region = Region::Rect(Rect::new(-122.0, 34.0, -118.0, 38.0));
    let mut op = SpatialRestrict::new(replay(&schema, &elements), region);
    let _ = drain(&mut op);
    assert_eq!(op.op_stats().buffered_points_peak, 0, "§3.1: restrictions never buffer");
}

criterion_group!(benches, bench_restrictions);
criterion_main!(benches);
