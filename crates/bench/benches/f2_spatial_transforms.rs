//! F2 — Fig. 2 / §3.2: spatial transforms. Magnification needs no
//! buffering; 1/k downsampling buffers ~k rows; re-projection's buffer
//! is bounded by scan-sector metadata (vs blocking without it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geostreams_bench::{ramp_elements, replay};
use geostreams_core::model::GeoStream;
use geostreams_core::ops::{Downsample, Magnify, Reproject, ReprojectConfig};
use geostreams_geo::Crs;
use geostreams_satsim::goes_like;
use std::hint::black_box;

fn drain<S: GeoStream>(mut s: S) -> u64 {
    let mut n = 0;
    while let Some(el) = s.next_element() {
        if el.is_point() {
            n += 1;
        }
    }
    n
}

fn bench_spatial_transforms(c: &mut Criterion) {
    let (w, h) = (256u32, 128u32);
    let points = u64::from(w) * u64::from(h);
    let (schema, elements) = ramp_elements(w, h, 1);

    let mut group = c.benchmark_group("f2_resolution");
    group.sample_size(15);
    group.throughput(Throughput::Elements(points));
    group.bench_function("magnify_x2", |b| {
        b.iter(|| black_box(drain(Magnify::new(replay(&schema, &elements), 2))))
    });
    for k in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::new("downsample", k), &k, |b, &k| {
            b.iter(|| black_box(drain(Downsample::new(replay(&schema, &elements), k))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("f2_reprojection");
    group.sample_size(10);
    let scanner = goes_like(192, 96, 5);
    group.throughput(Throughput::Elements(192 * 96));
    group.bench_function("geos_to_latlon_streaming", |b| {
        b.iter(|| {
            let op = Reproject::new(scanner.band_stream(0, 1), ReprojectConfig::new(Crs::LatLon))
                .expect("reproject");
            black_box(drain(op))
        })
    });
    group.bench_function("geos_to_latlon_blocking", |b| {
        b.iter(|| {
            let op = Reproject::new(
                scanner.band_stream(0, 1),
                ReprojectConfig::new(Crs::LatLon).blocking(),
            )
            .expect("reproject");
            black_box(drain(op))
        })
    });
    group.bench_function("geos_to_utm14", |b| {
        b.iter(|| {
            let op =
                Reproject::new(scanner.band_stream(0, 1), ReprojectConfig::new(Crs::utm(14, true)))
                    .expect("reproject");
            black_box(drain(op))
        })
    });
    group.finish();

    // Buffer-shape assertions (the figure's content).
    let mut op = Magnify::new(replay(&schema, &elements), 2);
    let _ = drain(&mut op);
    assert_eq!(op.op_stats().buffered_points_peak, 0);
    let mut op = Downsample::new(replay(&schema, &elements), 4);
    let _ = drain(&mut op);
    assert!(op.op_stats().buffered_points_peak <= u64::from(4 * w));
}

criterion_group!(benches, bench_spatial_transforms);
criterion_main!(benches);
