//! E4 — §3.4 claim: pushing the spatial restriction inward (mapping the
//! region across coordinate systems) yields "the most significant space
//! and time gains". Benchmarks the paper's running NDVI/UTM query with
//! and without the optimizer at several region selectivities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geostreams_core::exec::run_to_end;
use geostreams_core::query::{optimize, parse_query, Planner};
use geostreams_dsms::Dsms;
use geostreams_satsim::goes_like;
use std::hint::black_box;

fn query_text(frac: f64) -> String {
    let center = (450_000.0, 4_300_000.0);
    let half_w = 1_200_000.0 * frac / 2.0;
    let half_h = 900_000.0 * frac / 2.0;
    format!(
        "restrict_space(
           reproject(normalize(div(sub(goes-sim.b2-nir, downsample(goes-sim.b1-vis, 4)),
                                   add(downsample(goes-sim.b1-vis, 4), goes-sim.b2-nir)),
                               -1, 1),
                     \"utm:14N\"),
           bbox({}, {}, {}, {}), \"utm:14N\")",
        center.0 - half_w,
        center.1 - half_h,
        center.0 + half_w,
        center.1 + half_h
    )
}

fn bench_rewriting(c: &mut Criterion) {
    let scanner = goes_like(192, 96, 42);
    let server = Dsms::over_scanner(&scanner, 1);
    let catalog = server.catalog();
    let planner = Planner::new(catalog);

    let mut group = c.benchmark_group("e4_rewriting");
    group.sample_size(10);
    for pct in [100u32, 25, 10] {
        let q = query_text(f64::from(pct) / 100.0);
        let expr = parse_query(&q).expect("parses");
        let optimized = optimize(&expr, catalog);
        group.bench_with_input(BenchmarkId::new("naive", pct), &expr, |b, e| {
            b.iter(|| {
                let mut pipe = planner.build(e).expect("plan");
                black_box(run_to_end(&mut pipe).points_delivered)
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", pct), &optimized, |b, e| {
            b.iter(|| {
                let mut pipe = planner.build(e).expect("plan");
                black_box(run_to_end(&mut pipe).points_delivered)
            })
        });
        // Equivalence check per selectivity.
        let mut a = planner.build(&expr).expect("plan");
        let mut b = planner.build(&optimized).expect("plan");
        assert_eq!(
            run_to_end(&mut a).points_delivered,
            run_to_end(&mut b).points_delivered,
            "rewrites preserve cardinality at {pct}%"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rewriting);
criterion_main!(benches);
