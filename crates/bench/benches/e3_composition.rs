//! E3 — §3.3 claims: composition buffering depends on the transmission
//! organization (whole image for image-by-image vs one row for
//! row-by-row), and timestamps must match for any output.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geostreams_bench::{band_sequential, interleave_rows, ramp_elements};
use geostreams_core::model::{split2, GeoStream, StreamSchema};
use geostreams_core::ops::{Compose, GammaOp, JoinStrategy};
use geostreams_core::stats::OpReport;
use geostreams_geo::Crs;
use std::hint::black_box;

fn drain<S: GeoStream>(mut s: S) -> (u64, u64) {
    let mut n = 0;
    while let Some(el) = s.next_element() {
        if el.is_point() {
            n += 1;
        }
    }
    let mut ops: Vec<OpReport> = Vec::new();
    s.collect_stats(&mut ops);
    let peak = ops.iter().map(|o| o.stats.buffered_points_peak).max().unwrap_or(0);
    (n, peak)
}

fn bench_composition(c: &mut Criterion) {
    let (w, h) = (128u32, 128u32);
    let image = u64::from(w) * u64::from(h);
    let (_, a) = ramp_elements(w, h, 2);
    let (_, b) = ramp_elements(w, h, 2);
    let schema = StreamSchema::new("band", Crs::LatLon);

    let row_transport = interleave_rows(&a, &b);
    let seq_transport = band_sequential(&a, &b);

    let mut group = c.benchmark_group("e3_composition");
    group.sample_size(15);
    group.throughput(Throughput::Elements(image * 2));
    group.bench_function("row_by_row_transport", |b| {
        b.iter(|| {
            let (s0, s1) =
                split2(row_transport.clone().into_iter(), schema.renamed("a"), schema.renamed("b"));
            let op = Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).expect("compose");
            black_box(drain(op))
        })
    });
    group.bench_function("image_by_image_transport", |b| {
        b.iter(|| {
            let (s0, s1) =
                split2(seq_transport.clone().into_iter(), schema.renamed("a"), schema.renamed("b"));
            let op = Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).expect("compose");
            black_box(drain(op))
        })
    });
    group.finish();

    // Shape assertions recorded in EXPERIMENTS.md.
    let (s0, s1) = split2(row_transport.into_iter(), schema.renamed("a"), schema.renamed("b"));
    let (n, peak_row) =
        drain(Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).expect("compose"));
    assert_eq!(n, image * 2);
    let (s0, s1) = split2(seq_transport.into_iter(), schema.renamed("a"), schema.renamed("b"));
    let (n, peak_img) =
        drain(Compose::new(s0, s1, GammaOp::Add, JoinStrategy::Hash).expect("compose"));
    assert_eq!(n, image * 2);
    assert!(peak_row * 8 < peak_img, "row {peak_row} ≪ image {peak_img}");
}

criterion_group!(benches, bench_composition);
criterion_main!(benches);
