//! In-repo `serde_json` shim for offline builds.
//!
//! Renders and parses JSON text over the [`serde`] shim's [`Value`]
//! tree. The supported API is exactly what the workspace uses:
//! [`to_string`], [`to_vec`], [`from_str`], [`from_slice`], plus
//! [`Value`] itself.
//!
//! Numbers: integers round-trip exactly through `i64`/`u64`; floats
//! render with Rust's `Display`, which is shortest-round-trip (so the
//! `float_roundtrip` feature of real serde_json holds by construction).
//! Non-finite floats render as `null`, matching real serde_json.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Result alias matching real serde_json's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse(s)?)
}

/// Parses JSON bytes into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ------------------------------------------------------------- rendering

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let mut s = f.to_string();
                // "2" would parse back as an integer; keep it a float.
                if !s.contains('.') && !s.contains('e') {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(v, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (trailing whitespace allowed).
fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the full sequence through.
                b if b < 0x80 => out.push(b as char),
                _ => {
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice =
                        self.bytes.get(start..end).ok_or_else(|| Error::msg("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::msg("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::I64(-3)),
            ("b".to_string(), Value::U64(u64::MAX)),
            ("c".to_string(), Value::F64(1.5)),
            ("d".to_string(), Value::Str("he\"llo\nworld".to_string())),
            ("e".to_string(), Value::Array(vec![Value::Null, Value::Bool(true)])),
            ("f".to_string(), Value::Object(vec![])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn big_u64_round_trips_exactly() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(text, "18446744073709551615");
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn float_display_round_trips() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-8] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back, f, "{f}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(s, "aé😀b");
        let round: String = from_str(&to_string(&"héllo😀").unwrap()).unwrap();
        assert_eq!(round, "héllo😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
        assert!(from_str::<u8>("300").is_err());
    }
}
