//! In-repo `serde` shim for offline builds.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal replacement that keeps the familiar
//! surface the codebase actually uses: `#[derive(Serialize,
//! Deserialize)]` plus `serde_json::{to_string, to_vec, from_str,
//! from_slice}`.
//!
//! Unlike real serde there is no serializer/deserializer abstraction:
//! values convert to and from one in-memory [`Value`] tree, and
//! `serde_json` renders/parses that tree. The JSON produced is
//! self-consistent (and matches real serde's externally-tagged enum
//! layout), which is all the repo needs — every producer and consumer
//! of these documents lives in this workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An in-memory JSON-like document tree.
///
/// Integers keep their signedness ([`Value::I64`] vs [`Value::U64`]) so
/// `u64` counters (histogram sums, byte counts) round-trip exactly;
/// objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ primitives

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    Value::F64(f) if f.is_finite() && f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(Error::msg(format!(
                            concat!("expected integer for ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::msg(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN), // non-finite floats render as null
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected single-char string, got {other:?}"))),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items.try_into().map_err(|_| Error::msg(format!("expected {N}-element array, got {n}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let expected = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == expected => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected {expected}-element array, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------ derive-support helpers

/// Helpers called by derive-generated code; not part of the public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Required named field: missing key is an error.
    pub fn req_field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => T::from_value(fv),
                None => Err(Error::msg(format!("missing field `{name}` in {ty}"))),
            },
            other => Err(Error::msg(format!("expected object for {ty}, got {other:?}"))),
        }
    }

    /// `#[serde(default)]` field: missing or null falls back to `Default`.
    pub fn dfl_field<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, Value::Null)) | None => Ok(T::default()),
                Some((_, fv)) => T::from_value(fv),
            },
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }

    /// Element `idx` of a tuple-variant payload serialized as an array.
    pub fn tuple_elem<'v>(
        v: &'v Value,
        variant: &str,
        idx: usize,
        len: usize,
    ) -> Result<&'v Value, Error> {
        match v {
            Value::Array(items) if items.len() == len => Ok(&items[idx]),
            other => Err(Error::msg(format!(
                "expected {len}-element array for {variant}, got {other:?}"
            ))),
        }
    }
}
