//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-repo
//! `serde` shim.
//!
//! The build environment is offline, so this crate hand-parses the
//! `proc_macro::TokenStream` (no `syn`/`quote`) and emits impls of the
//! shim's value-tree traits (`to_value`/`from_value`). Supported input
//! shapes — everything this workspace derives on:
//!
//! - structs with named fields, optionally generic (`Grid2D<T>`)
//! - enums with unit, newtype, tuple, and struct variants, optionally
//!   generic (`Element<V>`)
//! - field attributes `#[serde(default)]` and
//!   `#[serde(default, skip_serializing_if = "...")]` (the predicate is
//!   interpreted as "skip when the field serializes to `Null`", which
//!   matches the only predicate used here, `Option::is_none`)
//!
//! Tuple structs, unions, lifetimes, and const generics are rejected
//! with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]`: missing/null on deserialize → `Default::default()`.
    dfl: bool,
    /// `#[serde(skip_serializing_if = ...)]`: omit when serialized `Null`.
    skip_null: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct(Vec<Field>),
    /// Tuple struct with this many fields; newtypes serialize
    /// transparently as the inner value, like real serde.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i, &mut false, &mut false);
    skip_visibility(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    let generics = parse_generics(&toks, &mut i);
    // Skip an optional `where` clause; the body group follows.
    let shape = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break match kind.as_str() {
                    "struct" => Shape::Struct(parse_named_fields(g.stream())),
                    "enum" => Shape::Enum(parse_variants(g.stream())),
                    other => panic!("serde shim: cannot derive for `{other}`"),
                };
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
            {
                break Shape::TupleStruct(count_tuple_fields(g.stream()));
            }
            Some(_) => i += 1,
            None => panic!("serde shim: no body found for `{name}`"),
        }
    };
    Input { name, generics, shape }
}

/// Skips `#[...]` attributes at `toks[*i]`, recording whether any
/// `#[serde(...)]` among them contains `default` / `skip_serializing_if`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize, dfl: &mut bool, skip_null: &mut bool) {
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            scan_serde_attr(g.stream(), dfl, skip_null);
        }
        *i += 2;
    }
}

fn scan_serde_attr(attr: TokenStream, dfl: &mut bool, skip_null: &mut bool) {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    if let Some(TokenTree::Group(g)) = toks.get(1) {
        for t in g.stream() {
            if let TokenTree::Ident(id) = t {
                match id.to_string().as_str() {
                    "default" => *dfl = true,
                    "skip_serializing_if" => *skip_null = true,
                    other => panic!("serde shim: unsupported serde attribute `{other}`"),
                }
            }
        }
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses `<A, B, ...>` at `toks[*i]` (if present) and returns the type
/// parameter names. Bounds are allowed and skipped; lifetimes and const
/// parameters are rejected.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return params,
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        match toks.get(*i).unwrap_or_else(|| panic!("serde shim: unclosed generics")) {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => expect_param = true,
                '\'' => panic!("serde shim: lifetime parameters are not supported"),
                ':' if depth == 1 => expect_param = false,
                _ => {}
            },
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                let s = id.to_string();
                if s == "const" {
                    panic!("serde shim: const generics are not supported");
                }
                params.push(s);
                expect_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut dfl = false;
        let mut skip_null = false;
        skip_attrs(&toks, &mut i, &mut dfl, &mut skip_null);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field `{name}`, found {other}"),
        }
        // Skip the type: everything up to a comma outside angle brackets.
        let mut angle = 0i64;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, dfl, skip_null });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i, &mut false, &mut false);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip anything (e.g. a discriminant) up to the separating comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Number of fields in a tuple-variant body (`(A, B<C, D>, E)` → 3).
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle = 0i64;
    let mut count = 1;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    count
}

// ------------------------------------------------------------- generation

/// `(impl generics, type path)` — e.g. `("<V: ::serde::Serialize>",
/// "Element<V>")`, or `("", "Rect")` for non-generic types.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        return (String::new(), input.name.clone());
    }
    let bounded: Vec<String> = input.generics.iter().map(|g| format!("{g}: {bound}")).collect();
    (format!("<{}>", bounded.join(", ")), format!("{}<{}>", input.name, input.generics.join(", ")))
}

/// Serialize one set of named fields into `__fields`, reading each field
/// through `accessor(name)` (an expression of type `&T`).
fn gen_ser_fields(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    out.push_str(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let expr = format!("::serde::Serialize::to_value({})", accessor(&f.name));
        if f.skip_null {
            out.push_str(&format!(
                "{{ let __v = {expr}; if !::core::matches!(__v, ::serde::Value::Null) {{ \
                 __fields.push((\"{n}\".to_string(), __v)); }} }}\n",
                n = f.name
            ));
        } else {
            out.push_str(&format!("__fields.push((\"{n}\".to_string(), {expr}));\n", n = f.name));
        }
    }
    out.push_str("::serde::Value::Object(__fields)\n");
    out
}

/// Deserialize one set of named fields as a struct-literal body,
/// reading from the object expression `src`.
fn gen_de_fields(fields: &[Field], ty: &str, src: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = if f.dfl {
            format!("::serde::__private::dfl_field({src}, \"{}\")?", f.name)
        } else {
            format!("::serde::__private::req_field({src}, \"{ty}\", \"{}\")?", f.name)
        };
        out.push_str(&format!("{}: {expr},\n", f.name));
    }
    out
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "::serde::Serialize");
    let body = match &input.shape {
        Shape::Struct(fields) => gen_ser_fields(fields, |n| format!("&self.{n}")),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)\n".to_string(),
        Shape::TupleStruct(k) => {
            let elems: Vec<String> =
                (0..*k).map(|j| format!("::serde::Serialize::to_value(&self.{j})")).collect();
            format!("::serde::Value::Array(vec![{}])\n", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let n = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{n} => ::serde::Value::Str(\"{n}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "Self::{n}(__f0) => ::serde::Value::Object(vec![(\"{n}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|j| format!("__f{j}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{n}({}) => ::serde::Value::Object(vec![(\"{n}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = gen_ser_fields(fields, |fname| fname.to_string());
                        arms.push_str(&format!(
                            "Self::{n} {{ {} }} => {{ let __inner = {{ {inner} }}; \
                             ::serde::Value::Object(vec![(\"{n}\".to_string(), __inner)]) }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => format!(
            "::std::result::Result::Ok(Self {{\n{}}})\n",
            gen_de_fields(fields, name, "__value")
        ),
        Shape::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__value)?))\n"
                .to_string()
        }
        Shape::TupleStruct(k) => {
            let elems: Vec<String> = (0..*k)
                .map(|j| {
                    format!(
                        "::serde::Deserialize::from_value(::serde::__private::tuple_elem(\
                         __value, \"{name}\", {j}, {k})?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self({}))\n", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let n = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{n}\" => ::std::result::Result::Ok(Self::{n}),\n")),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{n}\" => ::std::result::Result::Ok(Self::{n}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let elems: Vec<String> = (0..*k)
                            .map(|j| {
                                format!(
                                    "::serde::Deserialize::from_value(::serde::__private::\
                                     tuple_elem(__inner, \"{name}::{n}\", {j}, {k})?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{n}\" => ::std::result::Result::Ok(Self::{n}({})),\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let fields_src = gen_de_fields(fields, &format!("{name}::{n}"), "__inner");
                        data_arms.push_str(&format!(
                            "\"{n}\" => ::std::result::Result::Ok(Self::{n} {{\n{fields_src}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected string or single-key object for {name}\")),\n\
                 }}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}}}\n}}\n"
    )
}
