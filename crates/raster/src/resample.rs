//! Resampling kernels for spatial transforms.
//!
//! §3.2 of the paper: "for a point y ∈ Y, either the nearest point in the
//! original point lattice is chosen to supply the point value, or a
//! function is applied to a neighborhood of pixels … linear interpolations
//! or higher-order fitting routines." These kernels are used by the
//! re-projection operator and by resolution changes.

use crate::grid::Grid2D;
use crate::pixel::Pixel;
use serde::{Deserialize, Serialize};

/// Interpolation kernel choice for spatial transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Kernel {
    /// Nearest-neighbor: one source pixel per output pixel.
    #[default]
    Nearest,
    /// Bilinear: 2×2 neighborhood, linear interpolation.
    Bilinear,
    /// Bicubic (Catmull-Rom): 4×4 neighborhood.
    Bicubic,
}

impl Kernel {
    /// Half-width of the neighborhood in source pixels (how many rows the
    /// streaming operator must buffer around the current scanline).
    pub fn support(self) -> u32 {
        match self {
            Kernel::Nearest => 0,
            Kernel::Bilinear => 1,
            Kernel::Bicubic => 2,
        }
    }
}

/// Anything a kernel can sample from: a clamped `(col, row) → f64`
/// accessor. Implemented by [`Grid2D`] and by the re-projection
/// operator's streaming row window.
pub trait SampleSource {
    /// Value at the (clamped) integer cell.
    fn at(&self, col: i64, row: i64) -> f64;
}

impl<T: Pixel> SampleSource for Grid2D<T> {
    #[inline]
    fn at(&self, col: i64, row: i64) -> f64 {
        self.get_clamped(col, row).to_f64()
    }
}

/// Samples a source at fractional cell coordinates `(fc, fr)` using the
/// kernel; coordinates are clamped by the source.
pub fn sample_source<S: SampleSource + ?Sized>(src: &S, fc: f64, fr: f64, kernel: Kernel) -> f64 {
    match kernel {
        Kernel::Nearest => src.at(fc.round() as i64, fr.round() as i64),
        Kernel::Bilinear => {
            let c0 = fc.floor();
            let r0 = fr.floor();
            let tx = fc - c0;
            let ty = fr - r0;
            let (c0, r0) = (c0 as i64, r0 as i64);
            let v00 = src.at(c0, r0);
            let v10 = src.at(c0 + 1, r0);
            let v01 = src.at(c0, r0 + 1);
            let v11 = src.at(c0 + 1, r0 + 1);
            let top = v00 + (v10 - v00) * tx;
            let bot = v01 + (v11 - v01) * tx;
            top + (bot - top) * ty
        }
        Kernel::Bicubic => {
            let c0 = fc.floor() as i64;
            let r0 = fr.floor() as i64;
            let tx = fc - fc.floor();
            let ty = fr - fr.floor();
            let mut rows = [0.0; 4];
            for (j, row_acc) in rows.iter_mut().enumerate() {
                let r = r0 - 1 + j as i64;
                let p = [src.at(c0 - 1, r), src.at(c0, r), src.at(c0 + 1, r), src.at(c0 + 2, r)];
                *row_acc = catmull_rom(p, tx);
            }
            catmull_rom(rows, ty)
        }
    }
}

/// Samples the grid at fractional cell coordinates `(fc, fr)` using the
/// kernel; coordinates are clamped to the grid.
pub fn sample<T: Pixel>(grid: &Grid2D<T>, fc: f64, fr: f64, kernel: Kernel) -> f64 {
    sample_source(grid, fc, fr, kernel)
}

/// Catmull-Rom cubic interpolation of four samples at parameter `t∈[0,1]`.
#[inline]
fn catmull_rom(p: [f64; 4], t: f64) -> f64 {
    let [p0, p1, p2, p3] = p;
    let a = -0.5 * p0 + 1.5 * p1 - 1.5 * p2 + 0.5 * p3;
    let b = p0 - 2.5 * p1 + 2.0 * p2 - 0.5 * p3;
    let c = -0.5 * p0 + 0.5 * p2;
    let d = p1;
    ((a * t + b) * t + c) * t + d
}

/// Averages `k × k` blocks: the neighborhood function of a 1/k resolution
/// decrease (Fig. 2a of the paper). Trailing pixels that do not fill a
/// block are dropped, matching `LatticeGeoref::reduced`.
pub fn block_average<T: Pixel>(grid: &Grid2D<T>, k: u32) -> Grid2D<T> {
    assert!(k >= 1, "block size must be >= 1");
    let out_w = grid.width() / k;
    let out_h = grid.height() / k;
    Grid2D::from_fn(out_w, out_h, |c, r| {
        let mut acc = 0.0;
        for dr in 0..k {
            for dc in 0..k {
                acc += grid.get(c * k + dc, r * k + dr).to_f64();
            }
        }
        T::from_f64(acc / f64::from(k * k))
    })
}

/// Replicates each pixel into a `k × k` block: a k× magnification, which
/// per §3.2 "would take an incoming point x and produce a rectangular
/// lattice of k·k points in Y, all with the point value G(x)".
pub fn magnify<T: Pixel>(grid: &Grid2D<T>, k: u32) -> Grid2D<T> {
    assert!(k >= 1, "magnification must be >= 1");
    Grid2D::from_fn(grid.width() * k, grid.height() * k, |c, r| grid.get(c / k, r / k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Grid2D<f32> {
        Grid2D::from_fn(4, 4, |c, r| (r * 4 + c) as f32)
    }

    #[test]
    fn nearest_picks_closest() {
        let g = ramp();
        assert_eq!(sample(&g, 1.4, 0.4, Kernel::Nearest), 1.0);
        assert_eq!(sample(&g, 1.6, 0.6, Kernel::Nearest), 6.0);
    }

    #[test]
    fn bilinear_interpolates_midpoints() {
        let g = ramp();
        // Between cells (0,0)=0 and (1,0)=1.
        assert!((sample(&g, 0.5, 0.0, Kernel::Bilinear) - 0.5).abs() < 1e-9);
        // Center of the 2x2 block {0,1,4,5} -> 2.5.
        assert!((sample(&g, 0.5, 0.5, Kernel::Bilinear) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn bicubic_reproduces_linear_fields_exactly() {
        // Catmull-Rom has linear precision: a linear ramp is reproduced
        // wherever the full 4×4 support lies inside the grid.
        let g = Grid2D::from_fn(8, 8, |c, r| (r * 8 + c) as f32);
        for &(fc, fr) in &[(1.25, 1.5), (3.0, 2.75), (2.5, 4.5), (5.9, 1.1)] {
            let expect = fr * 8.0 + fc;
            let got = sample(&g, fc, fr, Kernel::Bicubic);
            assert!((got - expect).abs() < 1e-9, "({fc},{fr}) -> {got}, want {expect}");
        }
    }

    #[test]
    fn kernels_clamp_at_borders() {
        let g = ramp();
        assert_eq!(sample(&g, -5.0, -5.0, Kernel::Nearest), 0.0);
        let v = sample(&g, -0.5, 0.0, Kernel::Bilinear);
        assert!((v - 0.0).abs() < 1e-9);
    }

    #[test]
    fn block_average_2x2() {
        let g = Grid2D::from_fn(4, 2, |c, r| (r * 4 + c) as f32);
        let out = block_average(&g, 2);
        assert_eq!(out.width(), 2);
        assert_eq!(out.height(), 1);
        // Block {0,1,4,5} -> 2.5; block {2,3,6,7} -> 4.5.
        assert!((out.get(0, 0) - 2.5).abs() < 1e-6);
        assert!((out.get(1, 0) - 4.5).abs() < 1e-6);
    }

    #[test]
    fn block_average_drops_partial_blocks() {
        let g: Grid2D<u8> = Grid2D::new(5, 5);
        let out = block_average(&g, 2);
        assert_eq!((out.width(), out.height()), (2, 2));
    }

    #[test]
    fn magnify_replicates_values() {
        let g = Grid2D::from_fn(2, 1, |c, _| c as u8);
        let out = magnify(&g, 3);
        assert_eq!((out.width(), out.height()), (6, 3));
        assert_eq!(out.get(2, 2), 0);
        assert_eq!(out.get(3, 0), 1);
    }

    #[test]
    fn magnify_then_average_is_identity() {
        let g = Grid2D::from_fn(3, 3, |c, r| (r * 3 + c) as f32);
        let round = block_average(&magnify(&g, 4), 4);
        for (c, r, v) in g.iter_cells() {
            assert!((round.get(c, r) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn kernel_support_widths() {
        assert_eq!(Kernel::Nearest.support(), 0);
        assert_eq!(Kernel::Bilinear.support(), 1);
        assert_eq!(Kernel::Bicubic.support(), 2);
    }
}
