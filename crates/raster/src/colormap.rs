//! Color maps for delivered data products.
//!
//! The prototype DSMS delivers derived products (e.g. NDVI) to web
//! clients as PNG images (§4); a color map turns the scalar product
//! values into display colors.

use crate::pixel::Rgb8;
use serde::{Deserialize, Serialize};

/// A piecewise-linear color ramp over `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColorMap {
    /// Ramp stops: `(position in [0,1], color)`, sorted by position.
    stops: Vec<(f64, Rgb8)>,
}

impl ColorMap {
    /// Builds a color map from stops; positions are sorted and clamped.
    pub fn new(mut stops: Vec<(f64, Rgb8)>) -> Self {
        assert!(!stops.is_empty(), "color map needs at least one stop");
        stops.sort_by(|a, b| a.0.total_cmp(&b.0));
        for s in &mut stops {
            s.0 = s.0.clamp(0.0, 1.0);
        }
        ColorMap { stops }
    }

    /// Plain black→white grayscale.
    pub fn grayscale() -> Self {
        ColorMap::new(vec![(0.0, Rgb8::gray(0)), (1.0, Rgb8::gray(255))])
    }

    /// The classic NDVI ramp: barren browns through yellows to deep
    /// vegetation greens (input expected pre-normalized from [-1,1]).
    pub fn ndvi() -> Self {
        ColorMap::new(vec![
            (0.0, Rgb8::new(120, 69, 25)),
            (0.35, Rgb8::new(214, 178, 98)),
            (0.5, Rgb8::new(250, 250, 180)),
            (0.65, Rgb8::new(134, 190, 90)),
            (1.0, Rgb8::new(12, 98, 35)),
        ])
    }

    /// A thermal (black-red-yellow-white) ramp for IR bands.
    pub fn thermal() -> Self {
        ColorMap::new(vec![
            (0.0, Rgb8::new(0, 0, 0)),
            (0.4, Rgb8::new(180, 20, 10)),
            (0.75, Rgb8::new(250, 200, 30)),
            (1.0, Rgb8::new(255, 255, 255)),
        ])
    }

    /// Maps a normalized value in `[0, 1]` to a color (clamped).
    pub fn map(&self, t: f64) -> Rgb8 {
        let t = t.clamp(0.0, 1.0);
        match self.stops.iter().position(|(p, _)| *p >= t) {
            None => self.stops.last().expect("non-empty").1,
            Some(0) => self.stops[0].1,
            Some(i) => {
                let (p0, c0) = self.stops[i - 1];
                let (p1, c1) = self.stops[i];
                let f = if p1 > p0 { (t - p0) / (p1 - p0) } else { 0.0 };
                Rgb8::new(lerp_u8(c0.r, c1.r, f), lerp_u8(c0.g, c1.g, f), lerp_u8(c0.b, c1.b, f))
            }
        }
    }

    /// Maps a raw value given a display range (values are normalized
    /// through the range first).
    pub fn map_range(&self, v: f64, lo: f64, hi: f64) -> Rgb8 {
        let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
        self.map(t)
    }
}

#[inline]
fn lerp_u8(a: u8, b: u8, f: f64) -> u8 {
    (f64::from(a) + (f64::from(b) - f64::from(a)) * f).round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grayscale_endpoints() {
        let cm = ColorMap::grayscale();
        assert_eq!(cm.map(0.0), Rgb8::gray(0));
        assert_eq!(cm.map(1.0), Rgb8::gray(255));
        assert_eq!(cm.map(0.5), Rgb8::gray(128));
    }

    #[test]
    fn clamps_out_of_range() {
        let cm = ColorMap::grayscale();
        assert_eq!(cm.map(-3.0), Rgb8::gray(0));
        assert_eq!(cm.map(7.0), Rgb8::gray(255));
    }

    #[test]
    fn ndvi_green_end_is_greener() {
        let cm = ColorMap::ndvi();
        let barren = cm.map(0.1);
        let lush = cm.map(0.95);
        assert!(lush.g > lush.r, "vegetation should be green-dominant");
        assert!(barren.r > barren.g || barren.r > 100, "barren should be warm");
    }

    #[test]
    fn map_range_normalizes() {
        let cm = ColorMap::grayscale();
        assert_eq!(cm.map_range(-1.0, -1.0, 1.0), Rgb8::gray(0));
        assert_eq!(cm.map_range(1.0, -1.0, 1.0), Rgb8::gray(255));
        assert_eq!(cm.map_range(0.0, -1.0, 1.0), Rgb8::gray(128));
    }

    #[test]
    fn unsorted_stops_are_sorted() {
        let cm = ColorMap::new(vec![(1.0, Rgb8::gray(255)), (0.0, Rgb8::gray(0))]);
        assert_eq!(cm.map(0.0), Rgb8::gray(0));
    }

    #[test]
    fn degenerate_range_maps_midpoint() {
        let cm = ColorMap::grayscale();
        assert_eq!(cm.map_range(5.0, 5.0, 5.0), Rgb8::gray(128));
    }
}
