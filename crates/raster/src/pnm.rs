//! Minimal PGM/PPM (netpbm) writers for debugging and golden files.

use crate::grid::Grid2D;
use crate::pixel::Rgb8;

/// Serializes a grayscale grid as binary PGM (P5).
pub fn write_pgm(grid: &Grid2D<u8>) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", grid.width(), grid.height()).into_bytes();
    out.extend_from_slice(grid.data());
    out
}

/// Serializes an RGB grid as binary PPM (P6).
pub fn write_ppm(grid: &Grid2D<Rgb8>) -> Vec<u8> {
    let mut out = format!("P6\n{} {}\n255\n", grid.width(), grid.height()).into_bytes();
    for px in grid.data() {
        out.extend_from_slice(&[px.r, px.g, px.b]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_size() {
        let g = Grid2D::from_fn(3, 2, |c, r| (r * 3 + c) as u8);
        let bytes = write_pgm(&g);
        assert!(bytes.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(bytes.len(), b"P5\n3 2\n255\n".len() + 6);
        assert_eq!(&bytes[bytes.len() - 6..], &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn ppm_payload_is_interleaved_rgb() {
        let g = Grid2D::from_vec(1, 1, vec![Rgb8::new(9, 8, 7)]);
        let bytes = write_ppm(&g);
        assert_eq!(&bytes[bytes.len() - 3..], &[9, 8, 7]);
    }
}
