//! Pixel statistics for frame-scoped value transforms.
//!
//! §3.2 of the paper: "in order to fully utilize the complete range of
//! values in V, point values can be scaled. Typical approaches include
//! linear contrast stretch, histogram equalization, and Gaussian
//! stretch." All three need running statistics over a frame — the
//! min/max tracker for the linear stretch, the histogram for
//! equalization, and mean/variance for the Gaussian stretch.

use serde::{Deserialize, Serialize};

/// Running min/max/mean/variance of a value sequence (Welford's method).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeTracker {
    /// Number of values observed.
    pub count: u64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    mean: f64,
    m2: f64,
}

impl Default for RangeTracker {
    fn default() -> Self {
        RangeTracker { count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY, mean: 0.0, m2: 0.0 }
    }
}

impl RangeTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a value.
    #[inline]
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 when fewer than 2 values).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Width of the observed range (0 when empty).
    pub fn range(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Linearly rescales `v` from the observed range onto `[lo, hi]`
    /// (linear contrast stretch). Degenerate ranges map to the midpoint.
    pub fn stretch(&self, v: f64, lo: f64, hi: f64) -> f64 {
        let r = self.range();
        if r <= 0.0 {
            (lo + hi) / 2.0
        } else {
            lo + (v - self.min) / r * (hi - lo)
        }
    }

    /// Gaussian stretch: maps `v` by its z-score so that ±`n_sigma`
    /// standard deviations cover `[lo, hi]`, clamped.
    pub fn gaussian_stretch(&self, v: f64, lo: f64, hi: f64, n_sigma: f64) -> f64 {
        let sd = self.std_dev();
        if sd <= 0.0 {
            return (lo + hi) / 2.0;
        }
        let z = ((v - self.mean()) / (n_sigma * sd)).clamp(-1.0, 1.0);
        lo + (z + 1.0) / 2.0 * (hi - lo)
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &RangeTracker) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bin histogram over a value interval, with the cumulative
///-distribution lookup used by histogram equalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram of `n_bins` equal bins over `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-degenerate");
        assert!(n_bins >= 1, "histogram needs at least one bin");
        Histogram { lo, hi, bins: vec![0; n_bins], count: 0 }
    }

    /// Bin index for a value (clamped to the range).
    #[inline]
    fn bin_of(&self, v: f64) -> usize {
        let t = ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        ((t * self.bins.len() as f64) as usize).min(self.bins.len() - 1)
    }

    /// Observes a value.
    #[inline]
    pub fn push(&mut self, v: f64) {
        let b = self.bin_of(v);
        self.bins[b] += 1;
        self.count += 1;
    }

    /// Total number of observed values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Empirical CDF at `v`, in `[0, 1]`.
    pub fn cdf(&self, v: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let b = self.bin_of(v);
        let below: u64 = self.bins[..=b].iter().sum();
        below as f64 / self.count as f64
    }

    /// Builds the equalization lookup table: for each of `levels` output
    /// levels, the CDF value of the corresponding input level, scaled to
    /// `[0, 1]`. Applying `lut[level_of(v)]` equalizes the histogram.
    pub fn equalization_lut(&self, levels: usize) -> Vec<f64> {
        let mut lut = Vec::with_capacity(levels);
        let mut cumulative = 0u64;
        // Resample bins onto `levels` output positions.
        for i in 0..levels {
            let upto = ((i + 1) * self.bins.len()) / levels;
            let from = (i * self.bins.len()) / levels;
            cumulative += self.bins[from..upto].iter().sum::<u64>();
            lut.push(if self.count == 0 { 0.0 } else { cumulative as f64 / self.count as f64 });
        }
        lut
    }

    /// Equalized value of `v`, mapped onto `[lo_out, hi_out]`.
    pub fn equalize(&self, v: f64, lo_out: f64, hi_out: f64) -> f64 {
        lo_out + self.cdf(v) * (hi_out - lo_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_min_max_mean() {
        let mut t = RangeTracker::new();
        for v in [2.0, 4.0, 6.0, 8.0] {
            t.push(v);
        }
        assert_eq!(t.min, 2.0);
        assert_eq!(t.max, 8.0);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.std_dev() - 5.0f64.sqrt()).abs() < 1e-9); // pop var = 5
    }

    #[test]
    fn tracker_stretch_maps_extremes() {
        let mut t = RangeTracker::new();
        t.push(10.0);
        t.push(20.0);
        assert!((t.stretch(10.0, 0.0, 255.0) - 0.0).abs() < 1e-12);
        assert!((t.stretch(20.0, 0.0, 255.0) - 255.0).abs() < 1e-12);
        assert!((t.stretch(15.0, 0.0, 255.0) - 127.5).abs() < 1e-12);
    }

    #[test]
    fn tracker_degenerate_range() {
        let mut t = RangeTracker::new();
        t.push(7.0);
        t.push(7.0);
        assert_eq!(t.stretch(7.0, 0.0, 100.0), 50.0);
        assert_eq!(t.gaussian_stretch(7.0, 0.0, 100.0, 2.0), 50.0);
    }

    #[test]
    fn tracker_merge_matches_bulk() {
        let mut a = RangeTracker::new();
        let mut b = RangeTracker::new();
        let mut all = RangeTracker::new();
        for i in 0..50 {
            let v = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
            all.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count, all.count);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-9);
        assert_eq!(a.min, all.min);
        assert_eq!(a.max, all.max);
    }

    #[test]
    fn gaussian_stretch_is_monotone_and_clamped() {
        let mut t = RangeTracker::new();
        for i in 0..100 {
            t.push(f64::from(i));
        }
        let lo = t.gaussian_stretch(-1000.0, 0.0, 1.0, 2.0);
        let mid = t.gaussian_stretch(t.mean(), 0.0, 1.0, 2.0);
        let hi = t.gaussian_stretch(1000.0, 0.0, 1.0, 2.0);
        assert_eq!(lo, 0.0);
        assert!((mid - 0.5).abs() < 1e-9);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn histogram_cdf_uniform() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.push(f64::from(i));
        }
        assert_eq!(h.count(), 100);
        assert!((h.cdf(9.9) - 0.1).abs() < 1e-9);
        assert!((h.cdf(99.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_equalization_spreads_skewed_data() {
        let mut h = Histogram::new(0.0, 1.0, 256);
        // 90% of mass at low values, 10% at high.
        for i in 0..90 {
            h.push(f64::from(i) / 1000.0);
        }
        for i in 0..10 {
            h.push(0.9 + f64::from(i) / 100.0);
        }
        // After equalization the low cluster occupies ~90% of the range.
        let eq_low = h.equalize(0.09, 0.0, 1.0);
        assert!(eq_low > 0.85, "eq_low = {eq_low}");
    }

    #[test]
    fn equalization_lut_is_monotone() {
        let mut h = Histogram::new(0.0, 255.0, 64);
        for i in 0..1000 {
            h.push(f64::from(i % 256));
        }
        let lut = h.equalization_lut(256);
        assert_eq!(lut.len(), 256);
        for w in lut.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((lut[255] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
