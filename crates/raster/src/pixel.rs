//! Pixel value sets.
//!
//! Definition 2 of the paper: "A value set V is an instance of a
//! homogeneous algebra, that is, a set of values together with a set of
//! operands." The [`Pixel`] trait is that algebra's carrier: every pixel
//! type can round-trip through `f64` (the common arithmetic domain used
//! by compositions and value transforms) and exposes its displayable
//! range. Grey-scale streams use `u8`/`u16`/`f32`, color streams
//! [`Rgb8`] — mirroring the paper's `Z`, `Z³`, `Zⁿ` examples.

use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// A pixel value: member of a homogeneous value algebra.
///
/// The `f64` round-trip is the bridge used by generic arithmetic
/// (compositions `γ ∈ {+,−,×,÷,sup,inf}` and value transforms); concrete
/// kernels may specialize for speed.
pub trait Pixel: Copy + PartialOrd + Default + Debug + Send + Sync + 'static {
    /// Converts the pixel to the arithmetic domain.
    fn to_f64(self) -> f64;

    /// Converts back from the arithmetic domain, clamping to the type's
    /// representable range.
    fn from_f64(v: f64) -> Self;

    /// Smallest displayable value of the type's nominal range.
    const RANGE_MIN: f64;

    /// Largest displayable value of the type's nominal range.
    const RANGE_MAX: f64;

    /// Size of one pixel in bytes (used for buffer accounting, which the
    /// paper's space-complexity discussion is about).
    const BYTES: usize = std::mem::size_of::<Self>();
}

impl Pixel for u8 {
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v.round().clamp(0.0, 255.0) as u8
    }

    const RANGE_MIN: f64 = 0.0;
    const RANGE_MAX: f64 = 255.0;
}

impl Pixel for u16 {
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v.round().clamp(0.0, 65_535.0) as u16
    }

    const RANGE_MIN: f64 = 0.0;
    const RANGE_MAX: f64 = 65_535.0;
}

impl Pixel for f32 {
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    const RANGE_MIN: f64 = 0.0;
    const RANGE_MAX: f64 = 1.0;
}

impl Pixel for f64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    const RANGE_MIN: f64 = 0.0;
    const RANGE_MAX: f64 = 1.0;
}

/// A 24-bit RGB color pixel (the paper's `Z³` value set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Rgb8 {
    /// Red component.
    pub r: u8,
    /// Green component.
    pub g: u8,
    /// Blue component.
    pub b: u8,
}

impl Rgb8 {
    /// Creates an RGB pixel.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb8 { r, g, b }
    }

    /// Rec. 601 luma, the standard color→gray value transform.
    #[inline]
    pub fn luma(self) -> f64 {
        0.299 * f64::from(self.r) + 0.587 * f64::from(self.g) + 0.114 * f64::from(self.b)
    }

    /// A gray pixel with all components equal.
    pub const fn gray(v: u8) -> Self {
        Rgb8 { r: v, g: v, b: v }
    }
}

impl PartialOrd for Rgb8 {
    /// Ordered by luma, which makes `sup`/`inf` compositions meaningful
    /// on color streams.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.luma().partial_cmp(&other.luma())
    }
}

impl Pixel for Rgb8 {
    #[inline]
    fn to_f64(self) -> f64 {
        self.luma()
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        Rgb8::gray(v.round().clamp(0.0, 255.0) as u8)
    }

    const RANGE_MIN: f64 = 0.0;
    const RANGE_MAX: f64 = 255.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_round_trip_and_clamp() {
        assert_eq!(u8::from_f64(300.0), 255);
        assert_eq!(u8::from_f64(-5.0), 0);
        assert_eq!(u8::from_f64(127.4), 127);
        assert_eq!(200u8.to_f64(), 200.0);
    }

    #[test]
    fn u16_round_trip_and_clamp() {
        assert_eq!(u16::from_f64(70_000.0), 65_535);
        assert_eq!(u16::from_f64(1234.6), 1235);
    }

    #[test]
    fn f32_passes_through() {
        assert!((f32::from_f64(0.75).to_f64() - 0.75).abs() < 1e-7);
    }

    #[test]
    fn rgb_luma_weights() {
        assert!((Rgb8::new(255, 0, 0).luma() - 76.245).abs() < 1e-9);
        assert_eq!(Rgb8::gray(100).luma(), 100.0);
    }

    #[test]
    fn rgb_orders_by_luma() {
        assert!(Rgb8::new(0, 255, 0) > Rgb8::new(255, 0, 0)); // green is brighter
    }

    #[test]
    fn pixel_byte_sizes() {
        assert_eq!(u8::BYTES, 1);
        assert_eq!(u16::BYTES, 2);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(Rgb8::BYTES, 3);
    }
}
