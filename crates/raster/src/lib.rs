//! Raster substrate for the GeoStreams system.
//!
//! The paper's Definition 2 makes a *value set* "an instance of a
//! homogeneous algebra"; this crate supplies those value sets
//! ([`pixel::Pixel`]) together with dense grids, georeferenced raster
//! images (the "image of a stream" of Definition 4 once assembled),
//! statistics used by frame-scoped value transforms (histogram
//! equalization, contrast stretch), resampling kernels for spatial
//! transforms, and a from-scratch PNG encoder used by the delivery
//! operator of the prototype DSMS (§4: "ships stream results back to
//! clients using the PNG image format").

#![warn(missing_docs)]

pub mod colormap;
pub mod grid;
pub mod image;
pub mod metrics;
pub mod pixel;
pub mod png;
pub mod pnm;
pub mod resample;
pub mod stats;

pub use grid::Grid2D;
pub use image::RasterImage;
pub use pixel::{Pixel, Rgb8};
pub use stats::{Histogram, RangeTracker};
