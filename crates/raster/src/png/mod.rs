//! From-scratch PNG encoding (and a minimal decoder for round trips).
//!
//! The prototype DSMS of §4 "ships stream results back to clients using
//! the PNG image format"; this module is that delivery codec. Gray-8 and
//! RGB-8 images are supported with `None` or `Sub` scanline filters and
//! either stored or fixed-Huffman DEFLATE (see [`zlib`]); the A3 ablation
//! bench compares the encoder configurations.

pub mod crc;
pub mod zlib;

use crate::grid::Grid2D;
use crate::pixel::Rgb8;
use crc::Crc32;
pub use zlib::Strategy;

/// PNG scanline filter applied before compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Filter {
    /// No filtering (filter byte 0).
    None,
    /// Sub filter (filter byte 1): delta against the previous pixel,
    /// which turns smooth gradients into highly compressible runs.
    #[default]
    Sub,
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PngOptions {
    /// Scanline filter.
    pub filter: Filter,
    /// DEFLATE strategy.
    pub strategy: Strategy,
}

const SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A];

fn write_chunk(out: &mut Vec<u8>, kind: &[u8; 4], data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(data);
    let mut crc = Crc32::new();
    crc.update(kind);
    crc.update(data);
    out.extend_from_slice(&crc.finish().to_be_bytes());
}

fn encode_impl(
    width: u32,
    height: u32,
    color_type: u8,
    bytes_per_pixel: usize,
    raw: &[u8],
    opts: PngOptions,
) -> Vec<u8> {
    assert_eq!(raw.len(), width as usize * height as usize * bytes_per_pixel);
    let stride = width as usize * bytes_per_pixel;
    let mut filtered = Vec::with_capacity(raw.len() + height as usize);
    for row in 0..height as usize {
        let line = &raw[row * stride..(row + 1) * stride];
        match opts.filter {
            Filter::None => {
                filtered.push(0);
                filtered.extend_from_slice(line);
            }
            Filter::Sub => {
                filtered.push(1);
                for (i, &b) in line.iter().enumerate() {
                    let left = if i >= bytes_per_pixel { line[i - bytes_per_pixel] } else { 0 };
                    filtered.push(b.wrapping_sub(left));
                }
            }
        }
    }
    let idat = zlib::compress(&filtered, opts.strategy);

    let mut out = Vec::with_capacity(idat.len() + 64);
    out.extend_from_slice(&SIGNATURE);
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&width.to_be_bytes());
    ihdr.extend_from_slice(&height.to_be_bytes());
    ihdr.push(8); // bit depth
    ihdr.push(color_type);
    ihdr.push(0); // compression
    ihdr.push(0); // filter method
    ihdr.push(0); // no interlace
    write_chunk(&mut out, b"IHDR", &ihdr);
    write_chunk(&mut out, b"IDAT", &idat);
    write_chunk(&mut out, b"IEND", &[]);
    out
}

/// Encodes an 8-bit grayscale grid as a PNG.
pub fn encode_gray(grid: &Grid2D<u8>, opts: PngOptions) -> Vec<u8> {
    encode_impl(grid.width(), grid.height(), 0, 1, grid.data(), opts)
}

/// Encodes an RGB-8 grid as a PNG.
pub fn encode_rgb(grid: &Grid2D<Rgb8>, opts: PngOptions) -> Vec<u8> {
    let mut raw = Vec::with_capacity(grid.len() * 3);
    for &px in grid.data() {
        raw.extend_from_slice(&[px.r, px.g, px.b]);
    }
    encode_impl(grid.width(), grid.height(), 2, 3, &raw, opts)
}

/// A decoded PNG (only the subset this crate encodes).
#[derive(Debug, Clone, PartialEq)]
pub enum Decoded {
    /// 8-bit grayscale image.
    Gray(Grid2D<u8>),
    /// 8-bit RGB image.
    Rgb(Grid2D<Rgb8>),
}

/// Decodes a PNG produced by this module (gray8/rgb8, filters None/Sub,
/// stored or fixed-Huffman DEFLATE). Used by tests and examples to close
/// the delivery loop.
pub fn decode(png: &[u8]) -> Result<Decoded, String> {
    if png.len() < 8 || png[..8] != SIGNATURE {
        return Err("not a PNG".into());
    }
    let mut pos = 8usize;
    let mut width = 0u32;
    let mut height = 0u32;
    let mut color_type = 0u8;
    let mut idat = Vec::new();
    let mut seen_ihdr = false;
    while pos + 12 <= png.len() {
        let len = u32::from_be_bytes(png[pos..pos + 4].try_into().unwrap()) as usize;
        let kind = &png[pos + 4..pos + 8];
        if pos + 12 + len > png.len() {
            return Err("truncated chunk".into());
        }
        let data = &png[pos + 8..pos + 8 + len];
        let crc_stored = u32::from_be_bytes(png[pos + 8 + len..pos + 12 + len].try_into().unwrap());
        let mut crc = Crc32::new();
        crc.update(kind);
        crc.update(data);
        if crc.finish() != crc_stored {
            return Err(format!("bad CRC in chunk {:?}", std::str::from_utf8(kind)));
        }
        match kind {
            b"IHDR" => {
                if data.len() != 13 {
                    return Err("bad IHDR".into());
                }
                width = u32::from_be_bytes(data[0..4].try_into().unwrap());
                height = u32::from_be_bytes(data[4..8].try_into().unwrap());
                if data[8] != 8 {
                    return Err("unsupported bit depth".into());
                }
                color_type = data[9];
                if data[12] != 0 {
                    return Err("interlacing unsupported".into());
                }
                seen_ihdr = true;
            }
            b"IDAT" => idat.extend_from_slice(data),
            b"IEND" => break,
            _ => {} // ancillary chunks ignored
        }
        pos += 12 + len;
    }
    if !seen_ihdr {
        return Err("missing IHDR".into());
    }
    let bpp: usize = match color_type {
        0 => 1,
        2 => 3,
        other => return Err(format!("unsupported color type {other}")),
    };
    let raw = zlib::inflate(&idat)?;
    let stride = width as usize * bpp;
    if raw.len() != (stride + 1) * height as usize {
        return Err("decoded size mismatch".into());
    }
    let mut pixels = Vec::with_capacity(stride * height as usize);
    for row in 0..height as usize {
        let line = &raw[row * (stride + 1)..(row + 1) * (stride + 1)];
        let filter = line[0];
        let body = &line[1..];
        match filter {
            0 => pixels.extend_from_slice(body),
            1 => {
                let start = pixels.len();
                for (i, &b) in body.iter().enumerate() {
                    let left = if i >= bpp { pixels[start + i - bpp] } else { 0 };
                    pixels.push(b.wrapping_add(left));
                }
            }
            other => return Err(format!("unsupported filter {other}")),
        }
    }
    Ok(match color_type {
        0 => Decoded::Gray(Grid2D::from_vec(width, height, pixels)),
        _ => {
            let rgb: Vec<Rgb8> =
                pixels.chunks_exact(3).map(|c| Rgb8::new(c[0], c[1], c[2])).collect();
            Decoded::Rgb(Grid2D::from_vec(width, height, rgb))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Grid2D<u8> {
        Grid2D::from_fn(w, h, |c, r| ((c + r) % 256) as u8)
    }

    #[test]
    fn signature_and_chunk_layout() {
        let png = encode_gray(&gradient(4, 4), PngOptions::default());
        assert_eq!(&png[..8], &SIGNATURE);
        assert_eq!(&png[12..16], b"IHDR");
        // Last 12 bytes are the IEND chunk.
        assert_eq!(&png[png.len() - 8..png.len() - 4], b"IEND");
    }

    #[test]
    fn gray_round_trip_all_configs() {
        let img = gradient(33, 17);
        for filter in [Filter::None, Filter::Sub] {
            for strategy in [Strategy::Stored, Strategy::FixedHuffman] {
                let png = encode_gray(&img, PngOptions { filter, strategy });
                match decode(&png).unwrap() {
                    Decoded::Gray(g) => assert_eq!(g, img, "{filter:?}/{strategy:?}"),
                    _ => panic!("expected gray"),
                }
            }
        }
    }

    #[test]
    fn rgb_round_trip() {
        let img = Grid2D::from_fn(16, 9, |c, r| Rgb8::new(c as u8 * 10, r as u8 * 20, 7));
        let png = encode_rgb(&img, PngOptions::default());
        match decode(&png).unwrap() {
            Decoded::Rgb(g) => assert_eq!(g, img),
            _ => panic!("expected rgb"),
        }
    }

    #[test]
    fn sub_filter_plus_huffman_compresses_gradients() {
        let img = gradient(256, 256);
        let none_stored =
            encode_gray(&img, PngOptions { filter: Filter::None, strategy: Strategy::Stored });
        let sub_fixed =
            encode_gray(&img, PngOptions { filter: Filter::Sub, strategy: Strategy::FixedHuffman });
        assert!(
            sub_fixed.len() * 10 < none_stored.len(),
            "sub+fixed {} vs none+stored {}",
            sub_fixed.len(),
            none_stored.len()
        );
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut png = encode_gray(&gradient(8, 8), PngOptions::default());
        png[20] ^= 0xFF; // corrupt IHDR payload -> CRC fails
        assert!(decode(&png).is_err());
        assert!(decode(b"not a png").is_err());
    }

    #[test]
    fn one_pixel_image() {
        let img = Grid2D::from_vec(1, 1, vec![200u8]);
        let png = encode_gray(&img, PngOptions::default());
        match decode(&png).unwrap() {
            Decoded::Gray(g) => {
                assert_eq!(g.get(0, 0), 200);
            }
            _ => panic!(),
        }
    }
}
