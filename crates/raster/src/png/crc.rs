//! CRC-32 (ISO 3309 / ITU-T V.42), as required for PNG chunk checksums.

/// Lazily built CRC table for polynomial 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (n, entry) in t.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a new CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the CRC.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalizes and returns the CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        // The PNG spec's own example: CRC of "IEND" chunk type.
        assert_eq!(crc32(b"IEND"), 0xAE42_6082);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }
}
