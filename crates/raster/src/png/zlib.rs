//! zlib (RFC 1950) and DEFLATE (RFC 1951), from scratch.
//!
//! Two compressors are provided:
//!
//! * [`Strategy::Stored`] — uncompressed DEFLATE blocks: cheapest CPU,
//!   no size reduction; and
//! * [`Strategy::FixedHuffman`] — LZ77 (greedy hash-chain matching) with
//!   the fixed Huffman alphabet: a real compressor that wins on the
//!   smooth synthetic imagery the simulator produces.
//!
//! The ablation bench `a3_png_encoders` compares the two, and the
//! [`inflate`] decoder (stored + fixed Huffman) closes the loop for
//! round-trip tests.

/// Compression strategy for [`compress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Uncompressed stored blocks.
    Stored,
    /// LZ77 + fixed Huffman codes.
    #[default]
    FixedHuffman,
}

/// Computes the Adler-32 checksum of a byte slice (RFC 1950 §8).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    // Process in chunks small enough to defer the modulo.
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Compresses `data` into a zlib stream.
pub fn compress(data: &[u8], strategy: Strategy) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    // CMF: deflate, 32K window. FLG chosen so (CMF<<8 | FLG) % 31 == 0.
    out.push(0x78);
    out.push(0x01);
    match strategy {
        Strategy::Stored => deflate_stored(data, &mut out),
        Strategy::FixedHuffman => deflate_fixed(data, &mut out),
    }
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Emits uncompressed stored blocks (max 65 535 bytes each).
fn deflate_stored(data: &[u8], out: &mut Vec<u8>) {
    let mut chunks = data.chunks(65_535).peekable();
    if chunks.peek().is_none() {
        // Empty input still needs one final (empty) stored block.
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xFF, 0xFF]);
        return;
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = u8::from(chunks.peek().is_none());
        out.push(bfinal); // BTYPE=00 stored, bit-aligned at byte boundary
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
}

/// LSB-first bit writer used by the fixed-Huffman encoder.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter { out, bit_buf: 0, bit_count: 0 }
    }

    /// Writes `n` bits, LSB first (for extra bits and headers).
    #[inline]
    fn write_bits(&mut self, value: u32, n: u32) {
        self.bit_buf |= u64::from(value) << self.bit_count;
        self.bit_count += n;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes a Huffman code (MSB of the code first, per RFC 1951 §3.1.1).
    #[inline]
    fn write_code(&mut self, code: u32, len: u32) {
        // Reverse the code's bits, then emit LSB-first.
        let rev = code.reverse_bits() >> (32 - len);
        self.write_bits(rev, len);
    }

    fn flush(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }
}

/// Fixed-Huffman literal/length code for a symbol (RFC 1951 §3.2.6).
#[inline]
fn fixed_litlen_code(sym: u32) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym, 8),
        144..=255 => (0x190 + (sym - 144), 9),
        256..=279 => (sym - 256, 7),
        _ => (0xC0 + (sym - 280), 8),
    }
}

/// Length symbol table: `(base_length, extra_bits)` for codes 257..=285.
const LENGTH_TABLE: [(u32, u32); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// Distance symbol table: `(base_distance, extra_bits)` for codes 0..=29.
const DIST_TABLE: [(u32, u32); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Finds the length symbol for a match length in 3..=258.
#[inline]
fn length_symbol(len: u32) -> usize {
    debug_assert!((3..=258).contains(&len));
    // Linear scan is fine: table is tiny and access patterns favor low codes.
    let mut sym = 0;
    for (i, &(base, _)) in LENGTH_TABLE.iter().enumerate() {
        if base <= len {
            sym = i;
        } else {
            break;
        }
    }
    sym
}

/// Finds the distance symbol for a distance in 1..=32768.
#[inline]
fn dist_symbol(dist: u32) -> usize {
    debug_assert!((1..=32_768).contains(&dist));
    let mut sym = 0;
    for (i, &(base, _)) in DIST_TABLE.iter().enumerate() {
        if base <= dist {
            sym = i;
        } else {
            break;
        }
    }
    sym
}

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const WINDOW: usize = 32_768;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (u32::from(data[i]) << 16) | (u32::from(data[i + 1]) << 8) | u32::from(data[i + 2]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// LZ77 + fixed-Huffman DEFLATE (single final block).
fn deflate_fixed(data: &[u8], out: &mut Vec<u8>) {
    let mut bw = BitWriter::new(out);
    bw.write_bits(1, 1); // BFINAL
    bw.write_bits(1, 2); // BTYPE=01 fixed Huffman

    let n = data.len();
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n.max(1)];
    let mut i = 0;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                // Measure the match length.
                let max_len = (n - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l >= max_len {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            let len = best_len as u32;
            let dist = best_dist as u32;
            let ls = length_symbol(len);
            let (lbase, lextra) = LENGTH_TABLE[ls];
            let (code, bits) = fixed_litlen_code(257 + ls as u32);
            bw.write_code(code, bits);
            if lextra > 0 {
                bw.write_bits(len - lbase, lextra);
            }
            let ds = dist_symbol(dist);
            let (dbase, dextra) = DIST_TABLE[ds];
            bw.write_code(ds as u32, 5);
            if dextra > 0 {
                bw.write_bits(dist - dbase, dextra);
            }
            // Insert the skipped positions into the hash chains.
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= n {
                let h = hash3(data, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
        } else {
            let (code, bits) = fixed_litlen_code(u32::from(data[i]));
            bw.write_code(code, bits);
            i += 1;
        }
    }
    // End-of-block symbol 256.
    let (code, bits) = fixed_litlen_code(256);
    bw.write_code(code, bits);
    bw.flush();
}

/// LSB-first bit reader for [`inflate`].
struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, bit_buf: 0, bit_count: 0 }
    }

    fn fill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buf |= u64::from(self.data[self.pos]) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    fn read_bits(&mut self, n: u32) -> Result<u32, String> {
        self.fill();
        if self.bit_count < n {
            return Err("unexpected end of deflate stream".into());
        }
        let v = (self.bit_buf & ((1u64 << n) - 1)) as u32;
        self.bit_buf >>= n;
        self.bit_count -= n;
        Ok(v)
    }

    fn align_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    fn read_bytes(&mut self, n: usize, out: &mut Vec<u8>) -> Result<(), String> {
        for _ in 0..n {
            let b = self.read_bits(8)?;
            out.push(b as u8);
        }
        Ok(())
    }
}

/// Reads one fixed-Huffman literal/length symbol (MSB-first code).
fn read_fixed_litlen(r: &mut BitReader<'_>) -> Result<u32, String> {
    // Codes are 7-9 bits; read 7 MSB-first bits then extend as needed.
    let mut code = 0u32;
    for _ in 0..7 {
        code = (code << 1) | r.read_bits(1)?;
    }
    if code <= 0x17 {
        return Ok(256 + code); // 7-bit codes 0000000-0010111
    }
    code = (code << 1) | r.read_bits(1)?;
    if (0x30..=0xBF).contains(&code) {
        return Ok(code - 0x30); // literals 0-143
    }
    if (0xC0..=0xC7).contains(&code) {
        return Ok(280 + (code - 0xC0));
    }
    code = (code << 1) | r.read_bits(1)?;
    if (0x190..=0x1FF).contains(&code) {
        return Ok(144 + (code - 0x190));
    }
    Err(format!("invalid fixed huffman code {code:#x}"))
}

/// Decompresses a zlib stream produced by [`compress`] (stored and fixed
/// Huffman blocks; dynamic Huffman is not needed to decode our own
/// output and is rejected).
pub fn inflate(zdata: &[u8]) -> Result<Vec<u8>, String> {
    if zdata.len() < 6 {
        return Err("zlib stream too short".into());
    }
    let cmf = zdata[0];
    let flg = zdata[1];
    if cmf & 0x0F != 8 {
        return Err("not a deflate stream".into());
    }
    if (u32::from(cmf) * 256 + u32::from(flg)) % 31 != 0 {
        return Err("bad zlib header check".into());
    }
    let body = &zdata[2..zdata.len() - 4];
    let mut r = BitReader::new(body);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bits(1)?;
        let btype = r.read_bits(2)?;
        match btype {
            0 => {
                r.align_byte();
                let len = r.read_bits(16)? as usize;
                let nlen = r.read_bits(16)? as usize;
                if len != (!nlen & 0xFFFF) {
                    return Err("stored block LEN/NLEN mismatch".into());
                }
                r.read_bytes(len, &mut out)?;
            }
            1 => loop {
                let sym = read_fixed_litlen(&mut r)?;
                match sym {
                    0..=255 => out.push(sym as u8),
                    256 => break,
                    257..=285 => {
                        let (lbase, lextra) = LENGTH_TABLE[(sym - 257) as usize];
                        let len = lbase + r.read_bits(lextra)?;
                        let mut dcode = 0u32;
                        for _ in 0..5 {
                            dcode = (dcode << 1) | r.read_bits(1)?;
                        }
                        if dcode > 29 {
                            return Err(format!("invalid distance code {dcode}"));
                        }
                        let (dbase, dextra) = DIST_TABLE[dcode as usize];
                        let dist = (dbase + r.read_bits(dextra)?) as usize;
                        if dist == 0 || dist > out.len() {
                            return Err("distance exceeds output".into());
                        }
                        let start = out.len() - dist;
                        for k in 0..len as usize {
                            let b = out[start + k];
                            out.push(b);
                        }
                    }
                    _ => return Err(format!("invalid literal/length symbol {sym}")),
                }
            },
            2 => return Err("dynamic huffman blocks not supported".into()),
            _ => return Err("invalid block type".into()),
        }
        if bfinal == 1 {
            break;
        }
    }
    let expect = u32::from_be_bytes([
        zdata[zdata.len() - 4],
        zdata[zdata.len() - 3],
        zdata[zdata.len() - 2],
        zdata[zdata.len() - 1],
    ]);
    let got = adler32(&out);
    if expect != got {
        return Err(format!("adler32 mismatch: stream {expect:#x}, data {got:#x}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn stored_round_trip() {
        for data in [b"".as_slice(), b"hello world", &[0u8; 100_000], b"a"] {
            let z = compress(data, Strategy::Stored);
            assert_eq!(inflate(&z).unwrap(), data, "len {}", data.len());
        }
    }

    #[test]
    fn fixed_huffman_round_trip_text() {
        let data = b"the quick brown fox jumps over the lazy dog, the quick brown fox";
        let z = compress(data, Strategy::FixedHuffman);
        assert_eq!(inflate(&z).unwrap(), data);
    }

    #[test]
    fn fixed_huffman_round_trip_binary() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let z = compress(&data, Strategy::FixedHuffman);
        assert_eq!(inflate(&z).unwrap(), data);
    }

    #[test]
    fn fixed_huffman_round_trip_repetitive() {
        let mut data = Vec::new();
        for i in 0..500 {
            data.extend_from_slice(format!("row {} of synthetic image\n", i % 7).as_bytes());
        }
        let z = compress(&data, Strategy::FixedHuffman);
        assert_eq!(inflate(&z).unwrap(), data);
        // Repetitive data must actually compress.
        assert!(z.len() < data.len() / 2, "compressed {} of {}", z.len(), data.len());
    }

    #[test]
    fn fixed_huffman_round_trip_empty_and_tiny() {
        for data in [b"".as_slice(), b"x", b"ab", b"abc"] {
            let z = compress(data, Strategy::FixedHuffman);
            assert_eq!(inflate(&z).unwrap(), data);
        }
    }

    #[test]
    fn fixed_beats_stored_on_smooth_data() {
        // Smooth gradient, like synthetic radiance rows.
        let data: Vec<u8> = (0..50_000).map(|i| ((i / 200) % 256) as u8).collect();
        let zs = compress(&data, Strategy::Stored);
        let zf = compress(&data, Strategy::FixedHuffman);
        assert!(zf.len() < zs.len() / 4, "fixed {} vs stored {}", zf.len(), zs.len());
    }

    #[test]
    fn inflate_rejects_corruption() {
        let mut z = compress(b"hello hello hello", Strategy::FixedHuffman);
        let last = z.len() - 1;
        z[last] ^= 0xFF; // break the adler checksum
        assert!(inflate(&z).is_err());
        assert!(inflate(&[0x78]).is_err());
        assert!(inflate(&[0x00, 0x01, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn length_and_distance_symbols() {
        assert_eq!(length_symbol(3), 0);
        assert_eq!(length_symbol(10), 7);
        assert_eq!(length_symbol(11), 8);
        assert_eq!(length_symbol(258), 28);
        assert_eq!(dist_symbol(1), 0);
        assert_eq!(dist_symbol(4), 3);
        assert_eq!(dist_symbol(5), 4);
        assert_eq!(dist_symbol(24577), 29);
        assert_eq!(dist_symbol(32768), 29);
    }
}
