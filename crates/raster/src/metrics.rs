//! Image-quality metrics.
//!
//! The resampling/re-projection ablations (A1) and lossy operators
//! (shedding, downsampling) need quantitative quality measures:
//! mean-absolute error, root-mean-square error, and peak signal-to-noise
//! ratio between two grids of the same shape.

use crate::grid::Grid2D;
use crate::pixel::Pixel;

/// Mean absolute error between two equally-sized grids.
pub fn mae<T: Pixel>(a: &Grid2D<T>, b: &Grid2D<T>) -> f64 {
    assert_same_shape(a, b);
    if a.is_empty() {
        return 0.0;
    }
    a.data().iter().zip(b.data()).map(|(x, y)| (x.to_f64() - y.to_f64()).abs()).sum::<f64>()
        / a.len() as f64
}

/// Root-mean-square error between two equally-sized grids.
pub fn rmse<T: Pixel>(a: &Grid2D<T>, b: &Grid2D<T>) -> f64 {
    assert_same_shape(a, b);
    if a.is_empty() {
        return 0.0;
    }
    let mse = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| {
            let d = x.to_f64() - y.to_f64();
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    mse.sqrt()
}

/// Peak signal-to-noise ratio in dB over the given peak value
/// (`+∞` for identical grids).
pub fn psnr<T: Pixel>(a: &Grid2D<T>, b: &Grid2D<T>, peak: f64) -> f64 {
    let e = rmse(a, b);
    if e <= 0.0 {
        f64::INFINITY
    } else {
        20.0 * (peak / e).log10()
    }
}

fn assert_same_shape<T: Pixel>(a: &Grid2D<T>, b: &Grid2D<T>) {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "metric operands must share dimensions"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(bias: f32) -> Grid2D<f32> {
        Grid2D::from_fn(8, 8, move |c, r| (r * 8 + c) as f32 + bias)
    }

    #[test]
    fn identical_grids_have_zero_error() {
        let a = ramp(0.0);
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert!(psnr(&a, &a, 255.0).is_infinite());
    }

    #[test]
    fn constant_bias_is_measured_exactly() {
        let a = ramp(0.0);
        let b = ramp(2.5);
        assert!((mae(&a, &b) - 2.5).abs() < 1e-9);
        assert!((rmse(&a, &b) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn rmse_dominates_mae_for_uneven_errors() {
        let a = Grid2D::from_vec(2, 1, vec![0.0f32, 0.0]);
        let b = Grid2D::from_vec(2, 1, vec![0.0f32, 2.0]);
        assert!((mae(&a, &b) - 1.0).abs() < 1e-9);
        assert!((rmse(&a, &b) - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn psnr_scales_with_peak() {
        let a = Grid2D::from_vec(1, 1, vec![0.0f32]);
        let b = Grid2D::from_vec(1, 1, vec![1.0f32]);
        assert!((psnr(&a, &b, 255.0) - 20.0 * 255.0f64.log10()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn shape_mismatch_panics() {
        let a: Grid2D<f32> = Grid2D::new(2, 2);
        let b: Grid2D<f32> = Grid2D::new(3, 2);
        let _ = rmse(&a, &b);
    }
}
