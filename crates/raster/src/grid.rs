//! Dense row-major 2-D grids.

use crate::pixel::Pixel;
use serde::{Deserialize, Serialize};

/// A dense `width × height` grid stored row-major.
///
/// This is the in-memory form of a raster image's pixels and of every
/// operator buffer whose size the paper's evaluation reasons about (frame
/// buffers of stretch transforms, row buffers of compositions, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2D<T> {
    width: u32,
    height: u32,
    data: Vec<T>,
}

impl<T: Copy + Default> Grid2D<T> {
    /// Creates a grid filled with `T::default()`.
    pub fn new(width: u32, height: u32) -> Self {
        Grid2D { width, height, data: vec![T::default(); (width as usize) * (height as usize)] }
    }

    /// Creates a grid filled with a value.
    pub fn filled(width: u32, height: u32, value: T) -> Self {
        Grid2D { width, height, data: vec![value; (width as usize) * (height as usize)] }
    }

    /// Builds a grid from row-major data; `data.len()` must equal
    /// `width * height`.
    pub fn from_vec(width: u32, height: u32, data: Vec<T>) -> Self {
        assert_eq!(data.len(), (width as usize) * (height as usize), "grid data length mismatch");
        Grid2D { width, height, data }
    }

    /// Builds a grid by evaluating `f(col, row)` for every cell.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> T) -> Self {
        let mut data = Vec::with_capacity((width as usize) * (height as usize));
        for row in 0..height {
            for col in 0..width {
                data.push(f(col, row));
            }
        }
        Grid2D { width, height, data }
    }

    /// Grid width in cells.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn idx(&self, col: u32, row: u32) -> usize {
        debug_assert!(col < self.width && row < self.height, "({col},{row}) out of bounds");
        (row as usize) * (self.width as usize) + (col as usize)
    }

    /// Returns the value at `(col, row)`; panics out of bounds in debug.
    #[inline]
    pub fn get(&self, col: u32, row: u32) -> T {
        self.data[self.idx(col, row)]
    }

    /// Checked accessor.
    #[inline]
    pub fn try_get(&self, col: u32, row: u32) -> Option<T> {
        if col < self.width && row < self.height {
            Some(self.data[(row as usize) * (self.width as usize) + (col as usize)])
        } else {
            None
        }
    }

    /// Sets the value at `(col, row)`.
    #[inline]
    pub fn set(&mut self, col: u32, row: u32, value: T) {
        let i = self.idx(col, row);
        self.data[i] = value;
    }

    /// Clamped accessor: coordinates outside the grid are clamped to the
    /// border (used by neighborhood kernels at image edges).
    #[inline]
    pub fn get_clamped(&self, col: i64, row: i64) -> T {
        let c = col.clamp(0, i64::from(self.width) - 1) as u32;
        let r = row.clamp(0, i64::from(self.height) - 1) as u32;
        self.get(c, r)
    }

    /// Immutable view of one row.
    pub fn row(&self, row: u32) -> &[T] {
        let start = (row as usize) * (self.width as usize);
        &self.data[start..start + self.width as usize]
    }

    /// Mutable view of one row.
    pub fn row_mut(&mut self, row: u32) -> &mut [T] {
        let start = (row as usize) * (self.width as usize);
        let w = self.width as usize;
        &mut self.data[start..start + w]
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Consumes the grid and returns the raw data.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Iterates `(col, row, value)` in row-major order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        let w = self.width;
        self.data.iter().enumerate().map(move |(i, &v)| {
            let row = (i as u32) / w;
            let col = (i as u32) % w;
            (col, row, v)
        })
    }

    /// Maps every value into a new grid.
    pub fn map<U: Copy + Default>(&self, f: impl Fn(T) -> U) -> Grid2D<U> {
        Grid2D {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl<T: Pixel> Grid2D<T> {
    /// Heap bytes used by the pixel data (buffer accounting).
    pub fn byte_size(&self) -> usize {
        self.data.len() * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_default_filled() {
        let g: Grid2D<u8> = Grid2D::new(3, 2);
        assert_eq!(g.len(), 6);
        assert!(g.iter_cells().all(|(_, _, v)| v == 0));
    }

    #[test]
    fn from_fn_row_major_order() {
        let g = Grid2D::from_fn(3, 2, |c, r| (r * 10 + c) as u16);
        assert_eq!(g.data(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(g.get(2, 1), 12);
    }

    #[test]
    fn set_get_round_trip() {
        let mut g: Grid2D<f32> = Grid2D::new(4, 4);
        g.set(3, 2, 7.5);
        assert_eq!(g.get(3, 2), 7.5);
        assert_eq!(g.try_get(4, 0), None);
        assert_eq!(g.try_get(3, 2), Some(7.5));
    }

    #[test]
    fn clamped_access_extends_borders() {
        let g = Grid2D::from_fn(2, 2, |c, r| (r * 2 + c) as u8);
        assert_eq!(g.get_clamped(-5, 0), 0);
        assert_eq!(g.get_clamped(10, 10), 3);
    }

    #[test]
    fn rows_are_contiguous() {
        let g = Grid2D::from_fn(3, 2, |c, r| (r * 3 + c) as u8);
        assert_eq!(g.row(0), &[0, 1, 2]);
        assert_eq!(g.row(1), &[3, 4, 5]);
    }

    #[test]
    fn map_changes_type() {
        let g = Grid2D::from_fn(2, 2, |c, _| c as u8);
        let f: Grid2D<f32> = g.map(|v| f32::from(v) * 0.5);
        assert_eq!(f.get(1, 1), 0.5);
    }

    #[test]
    fn byte_size_counts_pixels() {
        let g: Grid2D<u16> = Grid2D::new(10, 10);
        assert_eq!(g.byte_size(), 200);
    }

    #[test]
    #[should_panic(expected = "grid data length mismatch")]
    fn from_vec_checks_length() {
        let _ = Grid2D::from_vec(2, 2, vec![0u8; 3]);
    }
}
