//! Georeferenced raster images.
//!
//! Definition 4 of the paper: "An image of a stream G is a subset i ⊆ G
//! whose points all have the same timestamp." Once the delivery operator
//! (or a test) assembles the points of one timestamp, the result is a
//! [`RasterImage`]: a dense grid plus the lattice georeference and the
//! shared timestamp.

use crate::grid::Grid2D;
use crate::pixel::Pixel;
use geostreams_geo::{Cell, Coord, LatticeGeoref};
use serde::{Deserialize, Serialize};

/// A dense, georeferenced, single-band raster image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RasterImage<T> {
    /// Pixel data; dimensions must match `georef`.
    pub grid: Grid2D<T>,
    /// Lattice georeference (CRS, origin, steps).
    pub georef: LatticeGeoref,
    /// Shared timestamp (scan-sector id or measurement time).
    pub timestamp: i64,
    /// Spectral band identifier.
    pub band: u16,
}

impl<T: Pixel> RasterImage<T> {
    /// Creates an image; the grid dimensions must match the georeference.
    pub fn new(grid: Grid2D<T>, georef: LatticeGeoref, timestamp: i64, band: u16) -> Self {
        assert_eq!(grid.width(), georef.width, "image/georef width mismatch");
        assert_eq!(grid.height(), georef.height, "image/georef height mismatch");
        RasterImage { grid, georef, timestamp, band }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.grid.width()
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.grid.height()
    }

    /// Value at a world coordinate (nearest cell), if inside the image.
    pub fn sample_world(&self, w: Coord) -> Option<T> {
        let cell = self.georef.world_to_cell(w)?;
        self.grid.try_get(cell.col, cell.row)
    }

    /// Value at a lattice cell.
    pub fn get(&self, cell: Cell) -> Option<T> {
        self.grid.try_get(cell.col, cell.row)
    }

    /// Mean pixel value in the arithmetic domain (test/debug helper).
    pub fn mean(&self) -> f64 {
        if self.grid.is_empty() {
            return 0.0;
        }
        self.grid.data().iter().map(|v| v.to_f64()).sum::<f64>() / self.grid.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostreams_geo::{Crs, Rect};

    fn image() -> RasterImage<u8> {
        let georef =
            LatticeGeoref::north_up(Crs::LatLon, Rect::new(-125.0, 30.0, -115.0, 40.0), 10, 10);
        let grid = Grid2D::from_fn(10, 10, |c, r| (r * 10 + c) as u8);
        RasterImage::new(grid, georef, 42, 1)
    }

    #[test]
    fn world_sampling_hits_expected_cell() {
        let img = image();
        // Center of the NW-most cell.
        let w = img.georef.cell_to_world(Cell::new(0, 0));
        assert_eq!(img.sample_world(w), Some(0));
        let w2 = img.georef.cell_to_world(Cell::new(9, 9));
        assert_eq!(img.sample_world(w2), Some(99));
        assert_eq!(img.sample_world(Coord::new(0.0, 0.0)), None);
    }

    #[test]
    fn mean_of_ramp() {
        let img = image();
        assert!((img.mean() - 49.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn dimension_mismatch_panics() {
        let georef = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 1.0, 1.0), 5, 5);
        let _ = RasterImage::new(Grid2D::<u8>::new(4, 5), georef, 0, 0);
    }
}
