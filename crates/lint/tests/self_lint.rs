//! Self-lint: the committed tree must be clean under the committed
//! allowlist, with zero drift — the same gate `scripts/lint_gate.sh`
//! applies in CI, run here so `cargo test` alone catches regressions.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use geostreams_lint::{collect_workspace_sources, lint_files, render_json, Allowlist};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_is_clean_under_the_committed_allowlist() {
    let root = repo_root();
    let files = collect_workspace_sources(&root).expect("collect sources");
    assert!(files.len() > 20, "expected the whole workspace, got {} files", files.len());
    let allow_text =
        std::fs::read_to_string(root.join("geolint.allow")).expect("read geolint.allow");
    let allow = Allowlist::parse(&allow_text).expect("parse geolint.allow");
    let screened = allow.screen(lint_files(&files));
    assert!(
        screened.kept.is_empty(),
        "unallowlisted geolint findings:\n{}",
        screened.kept.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(
        screened.unused.is_empty(),
        "stale geolint.allow entries (drift): {:?}",
        screened.unused
    );
    assert!(screened.allowed > 0, "the committed allowlist should be exercised");
}

#[test]
fn self_lint_json_is_byte_stable() {
    let root = repo_root();
    let files = collect_workspace_sources(&root).expect("collect sources");
    let a = render_json(&Allowlist::default().screen(lint_files(&files)));
    let b = render_json(&Allowlist::default().screen(lint_files(&files)));
    assert_eq!(a, b);
}
