//! Fixture for `unbounded-growth`: a hot-path push with no drain in
//! the file (flagged) versus pushes bounded by `clear`, `mem::take`,
//! or reassignment (not flagged).

pub struct Queue {
    backlog: Vec<u32>,
    staged: Vec<u32>,
    held: Vec<u32>,
    rebuilt: Vec<u32>,
    delivered: Vec<u32>,
}

impl Queue {
    pub fn pump(&mut self, item: u32) {
        self.backlog.push(item); // flagged: nothing ever shrinks backlog
    }

    pub fn multicast(&mut self, item: u32) {
        self.delivered.push(item); // flagged: the tree never sheds delivered
    }

    pub fn shed_try_sub(&mut self, item: u32) {
        self.staged.push(item); // fine: flush() clears staged
    }

    pub fn next_chunk(&mut self, item: u32) {
        self.staged.push(item); // fine: flush() clears staged
        self.held.push(item); // fine: flush() mem::takes held
        self.rebuilt.push(item); // fine: flush() reassigns rebuilt
    }

    pub fn flush(&mut self) -> Vec<u32> {
        self.staged.clear();
        self.rebuilt = Vec::new();
        std::mem::take(&mut self.held)
    }

    pub fn cold_path(&mut self, item: u32) {
        // Not a hot-path function name: growth here is out of scope.
        self.backlog.push(item);
    }
}
