//! Fixture for `lock-across-blocking`: blocking calls under a live
//! guard, guard release via `drop`, block-scoped guards, in-statement
//! guard consumption, and transitive blocking through a free function.

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Mutex;

pub struct Pump {
    subs: Mutex<Vec<SyncSender<u32>>>,
    slot: Mutex<Option<Receiver<u32>>>,
}

impl Pump {
    pub fn bad_send_under_guard(&self, item: u32) {
        let guard = self.subs.lock().unwrap();
        for tx in guard.iter() {
            let _ = tx.send(item); // flagged: guard is live
        }
    }

    pub fn good_drop_before_send(&self, item: u32, tx: &SyncSender<u32>) {
        let guard = self.subs.lock().unwrap();
        let n = guard.len();
        drop(guard);
        for _ in 0..n {
            let _ = tx.send(item); // fine: guard dropped
        }
    }

    pub fn good_block_scoped_snapshot(&self, item: u32) {
        let live: Vec<SyncSender<u32>> = {
            let guard = self.subs.lock().unwrap();
            guard.iter().cloned().collect()
        };
        for tx in live {
            let _ = tx.send(item); // fine: guard died with the block
        }
    }

    pub fn good_take_consumes_guard(&self) -> Option<u32> {
        let rx_opt = self.slot.lock().unwrap().take();
        let rx = rx_opt.as_ref()?;
        rx.recv().ok() // fine: the binding is the receiver, not a guard
    }

    pub fn bad_transitive_block(&self) {
        let guard = self.subs.lock().unwrap();
        nap(); // flagged: nap() sleeps
        let _ = guard.len();
    }
}

fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
