//! Fixture for `lock-order-cycle`: two functions taking the same two
//! locks in opposite orders (a classic ABBA deadlock).

use std::sync::Mutex;

pub struct Registry {
    catalog: Mutex<Vec<u32>>,
    metrics: Mutex<Vec<u32>>,
}

impl Registry {
    pub fn ab(&self) -> usize {
        let catalog = self.catalog.lock().unwrap();
        let metrics = self.metrics.lock().unwrap();
        catalog.len() + metrics.len()
    }

    pub fn ba(&self) -> usize {
        let metrics = self.metrics.lock().unwrap();
        let catalog = self.catalog.lock().unwrap();
        metrics.len() + catalog.len()
    }
}
