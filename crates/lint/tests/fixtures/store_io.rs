//! Fixture for `raw-file-io-in-store`: raw filesystem calls in store
//! library code must be flagged; the same calls under `#[cfg(test)]`
//! (or routed through the `Vfs` trait) must not.

pub fn bad_std_fs(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

pub fn bad_file_open(path: &std::path::Path) -> std::io::Result<()> {
    let _f = File::open(path)?;
    Ok(())
}

pub fn bad_open_options(path: &std::path::Path) -> std::io::Result<()> {
    let _f = OpenOptions::new().append(true).open(path)?;
    Ok(())
}

pub fn good_vfs_read(vfs: &dyn Vfs, path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    vfs.read(path)
}

pub fn good_vfs_file(file: &mut dyn VfsFile, data: &[u8]) -> std::io::Result<()> {
    file.append(data)
}

#[cfg(test)]
mod tests {
    use std::fs;

    #[test]
    fn tests_may_touch_the_real_filesystem() {
        let _ = fs::read("fixture");
        let _ = std::fs::write("fixture", b"x");
    }
}
