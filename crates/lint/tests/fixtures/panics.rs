//! Fixture for `panic-in-lib`: bad sites in library code, plus the
//! shapes that must NOT be flagged (tests, comments, strings).

pub fn bad_panic() {
    panic!("boom");
}

pub fn bad_todo() -> u32 {
    todo!()
}

pub fn bad_unimplemented() {
    unimplemented!()
}

pub fn bad_exit() {
    std::process::exit(2);
}

pub fn good_commented() {
    // panic!("only a comment")
    /* unimplemented!() inside a block comment */
    let _msg = "panic!(\"only a string\")";
    let _raw = r#"todo!() in a raw string"#;
}

#[test]
fn good_test_fn_may_panic() {
    panic!("tests are allowed to panic");
}

#[cfg(test)]
mod tests {
    pub fn helper_in_test_mod() {
        panic!("test-module helpers may panic too");
    }

    #[test]
    fn asserts() {
        helper_in_test_mod();
    }
}
