//! Fixture for `detached-thread-spawn`: statement-position spawns that
//! drop the `JoinHandle` versus every owned-handle shape the runtime
//! actually uses. Not compiled — lexed by the engine tests.

use std::collections::HashMap;
use std::thread;
use std::thread::JoinHandle;

/// Bad: the handle hits the floor — first statement of the body.
pub fn bad_fire_and_forget() {
    thread::spawn(|| background_work());
}

/// Bad: same shape through the fully qualified path, mid-body after a
/// semicolon-terminated statement.
pub fn bad_std_path() {
    let work = prepare();
    std::thread::spawn(move || consume(work));
}

/// Bad: statement position right after a closing brace.
pub fn bad_after_block(restart: bool) {
    if restart {
        reset();
    }
    thread::spawn(|| background_work());
}

/// Good: the handle is bound and joined.
pub fn good_bound_and_joined() {
    let handle = thread::spawn(|| background_work());
    handle.join().ok();
}

/// Good: handles are collected for shutdown.
pub fn good_collected(n: usize) -> Vec<JoinHandle<()>> {
    let mut handles = Vec::new();
    for _ in 0..n {
        handles.push(thread::spawn(|| background_work()));
    }
    handles
}

/// Good: the handle is stored in a registry keyed by name.
pub fn good_registered(registry: &mut HashMap<String, JoinHandle<()>>) {
    registry.insert("ingest".to_string(), std::thread::spawn(|| background_work()));
}

/// Good: `thread::Builder` names the thread and the handle is kept.
pub fn good_builder() -> std::io::Result<JoinHandle<()>> {
    thread::Builder::new().name("worker".to_string()).spawn(|| background_work())
}

/// Good: the handle is the return value.
pub fn good_returned() -> JoinHandle<()> {
    thread::spawn(|| background_work())
}

fn prepare() -> u32 {
    7
}

fn consume(_v: u32) {}

fn reset() {}

fn background_work() {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test code may fire and forget; the process dies with the test.
    #[test]
    fn spawn_in_test_is_fine() {
        thread::spawn(|| background_work());
    }
}
