//! Fixture for `relaxed-strong-mix`: one atomic field accessed with
//! both `Relaxed` and acquire/release orderings (Relaxed sites are
//! flagged), one pure-Relaxed statistic (not flagged), and a
//! Relaxed/SeqCst pair (not flagged: SeqCst is not in the strong set).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct State {
    ready: AtomicBool,
    hits: AtomicU64,
    seen: AtomicU64,
}

impl State {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    pub fn peek(&self) -> bool {
        self.ready.load(Ordering::Relaxed) // flagged: breaks the handoff
    }

    pub fn count(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed); // fine: pure statistic
    }

    pub fn snapshot(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // fine: pure statistic
    }

    pub fn note(&self) {
        self.seen.fetch_add(1, Ordering::Relaxed); // fine: SeqCst reader
    }

    pub fn dump(&self) -> u64 {
        self.seen.load(Ordering::SeqCst)
    }
}
