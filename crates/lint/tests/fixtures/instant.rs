//! Fixture for `instant-in-chunk-loop`: a per-chunk `Instant::now()`
//! inside a chunk-pulling loop (flagged) versus timing outside the
//! loop or in a non-chunk loop (not flagged).

use std::time::Instant;

pub trait Source {
    fn next_chunk(&mut self, budget: usize) -> Option<Vec<u32>>;
}

pub fn bad_clock_per_chunk(src: &mut dyn Source) -> u128 {
    let mut total = 0u128;
    while let Some(chunk) = src.next_chunk(64) {
        let t0 = Instant::now(); // flagged: syscall per chunk
        total += chunk.len() as u128 + t0.elapsed().as_nanos();
    }
    total
}

pub fn good_clock_outside_loop(src: &mut dyn Source) -> u128 {
    let t0 = Instant::now();
    let mut n = 0u128;
    while let Some(chunk) = src.next_chunk(64) {
        n += chunk.len() as u128;
    }
    n + t0.elapsed().as_nanos()
}

pub fn good_non_chunk_loop() -> u128 {
    let mut total = 0u128;
    for _ in 0..4 {
        let t0 = Instant::now(); // fine: not a chunk loop
        total += t0.elapsed().as_nanos();
    }
    total
}
