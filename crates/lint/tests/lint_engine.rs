//! Engine acceptance tests: every rule against its fixture, asserting
//! both the bad sites it must catch and the good shapes it must not
//! flag. Fixtures live in `tests/fixtures/` (not compiled as tests).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use geostreams_lint::{lint_files, Finding};

fn lint_fixture(name: &str, src: &str) -> Vec<Finding> {
    // Fixtures pose as core library sources so path-scoped rules apply.
    lint_files(&[(format!("crates/core/src/{name}"), src.to_string())])
}

fn rules_hit<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn panic_rule_catches_lib_sites_only() {
    let findings = lint_fixture("panics.rs", include_str!("fixtures/panics.rs"));
    let hits = rules_hit(&findings, "panic-in-lib");
    let fns: Vec<&str> = hits.iter().map(|f| f.function.as_str()).collect();
    assert_eq!(fns, vec!["bad_panic", "bad_todo", "bad_unimplemented", "bad_exit"]);
}

#[test]
fn panic_rule_skips_bin_sources() {
    let findings = lint_files(&[(
        "crates/core/src/bin/tool.rs".to_string(),
        "fn main() { std::process::exit(1); }".to_string(),
    )]);
    assert!(rules_hit(&findings, "panic-in-lib").is_empty());
}

#[test]
fn lock_rule_separates_guarded_sends_from_safe_shapes() {
    let findings = lint_fixture("locks.rs", include_str!("fixtures/locks.rs"));
    let hits = rules_hit(&findings, "lock-across-blocking");
    let fns: Vec<&str> = hits.iter().map(|f| f.function.as_str()).collect();
    assert_eq!(fns, vec!["bad_send_under_guard", "bad_transitive_block"]);
    // The transitive hit comes through the may-block fixpoint on nap().
    assert!(hits[1].message.contains("nap"));
}

#[test]
fn lock_order_rule_finds_the_abba_cycle() {
    let findings = lint_fixture("lock_order.rs", include_str!("fixtures/lock_order.rs"));
    let hits = rules_hit(&findings, "lock-order-cycle");
    assert_eq!(hits.len(), 1, "one canonical report per cycle: {hits:?}");
    assert!(hits[0].message.contains("catalog") && hits[0].message.contains("metrics"));
}

#[test]
fn lock_order_rule_ignores_non_runtime_crates() {
    let findings = lint_files(&[(
        "crates/satsim/src/lock_order.rs".to_string(),
        include_str!("fixtures/lock_order.rs").to_string(),
    )]);
    assert!(rules_hit(&findings, "lock-order-cycle").is_empty());
}

#[test]
fn growth_rule_requires_a_drain_somewhere_in_the_file() {
    let findings = lint_fixture("growth.rs", include_str!("fixtures/growth.rs"));
    let hits = rules_hit(&findings, "unbounded-growth");
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert_eq!(hits[0].function, "pump");
    assert!(hits[0].message.contains("backlog"));
    // Subscription-tree hot paths are covered too; `shed_try_sub`'s
    // push is bounded by flush() and stays clean.
    assert_eq!(hits[1].function, "multicast");
    assert!(hits[1].message.contains("delivered"));
}

#[test]
fn instant_rule_only_fires_inside_chunk_loops() {
    let findings = lint_fixture("instant.rs", include_str!("fixtures/instant.rs"));
    let hits = rules_hit(&findings, "instant-in-chunk-loop");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].function, "bad_clock_per_chunk");
}

#[test]
fn atomics_rule_flags_relaxed_sites_of_mixed_fields() {
    let findings = lint_fixture("atomics.rs", include_str!("fixtures/atomics.rs"));
    let hits = rules_hit(&findings, "relaxed-strong-mix");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].function, "peek");
    assert!(hits[0].message.contains("ready"));
}

#[test]
fn findings_are_sorted_and_stable() {
    let files = vec![
        ("crates/core/src/b.rs".to_string(), "pub fn f() { panic!() }".to_string()),
        ("crates/core/src/a.rs".to_string(), "pub fn g() { todo!() }".to_string()),
    ];
    let a = lint_files(&files);
    let b = lint_files(&files);
    assert_eq!(a, b);
    assert_eq!(a[0].file, "crates/core/src/a.rs");
    assert_eq!(a[1].file, "crates/core/src/b.rs");
}

#[test]
fn thread_rule_flags_only_discarded_handles() {
    let findings = lint_fixture("threads.rs", include_str!("fixtures/threads.rs"));
    let hits = rules_hit(&findings, "detached-thread-spawn");
    let fns: Vec<&str> = hits.iter().map(|f| f.function.as_str()).collect();
    assert_eq!(fns, vec!["bad_fire_and_forget", "bad_std_path", "bad_after_block"], "{hits:?}");
    assert!(hits[0].message.contains("JoinHandle"));
}

#[test]
fn thread_rule_ignores_non_runtime_crates() {
    // The simulator deliberately runs detached fault-injection threads;
    // the ownership discipline only binds core, dsms, and store.
    let findings = lint_files(&[(
        "crates/satsim/src/threads.rs".to_string(),
        include_str!("fixtures/threads.rs").to_string(),
    )]);
    assert!(rules_hit(&findings, "detached-thread-spawn").is_empty());
}

#[test]
fn raw_io_rule_guards_the_store_behind_vfs() {
    let src = include_str!("fixtures/store_io.rs").to_string();
    // Posed as store library code, the raw calls are violations.
    let findings = lint_files(&[("crates/store/src/store_io.rs".to_string(), src.clone())]);
    let hits = rules_hit(&findings, "raw-file-io-in-store");
    let fns: Vec<&str> = hits.iter().map(|f| f.function.as_str()).collect();
    assert_eq!(fns, vec!["bad_std_fs", "bad_file_open", "bad_open_options"], "{hits:?}");
    // vfs.rs itself is the one allowed home for raw filesystem calls.
    let as_vfs = lint_files(&[("crates/store/src/vfs.rs".to_string(), src.clone())]);
    assert!(rules_hit(&as_vfs, "raw-file-io-in-store").is_empty());
    // Other crates are out of scope for this rule.
    let as_core = lint_files(&[("crates/core/src/store_io.rs".to_string(), src)]);
    assert!(rules_hit(&as_core, "raw-file-io-in-store").is_empty());
}
