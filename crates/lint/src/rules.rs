//! The geolint rule catalog.
//!
//! Every rule works on the token stream of [`crate::lexer`] plus a
//! lightweight function map — no full AST. The rules are deliberately
//! conservative heuristics tuned to this workspace's idioms (DESIGN.md
//! §14 documents each one, its known blind spots, and why a first-party
//! allowlist is the escape hatch rather than rule-level cleverness).

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::lexer::{lex, Tok, TokKind};
use crate::Finding;

/// One function (or method) extracted from a token stream.
#[derive(Debug, Clone)]
pub struct FnUnit {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// True for `#[test]` functions, functions inside `#[cfg(test)]`
    /// modules, and functions nested inside either.
    pub is_test: bool,
    /// Token range of the body (between, not including, the braces).
    pub body: Range<usize>,
}

/// A tokenized source file with its extracted functions.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Extracted functions, outermost first.
    pub fns: Vec<FnUnit>,
}

impl SourceFile {
    /// Lexes and indexes one source file.
    pub fn parse(path: &str, src: &str) -> Self {
        let toks = lex(src);
        let fns = extract_fns(&toks);
        SourceFile { path: path.to_string(), toks, fns }
    }
}

/// Extracts every function in the token stream, including nested ones,
/// tracking `#[test]` attributes and `#[cfg(test)]` module scopes.
pub fn extract_fns(toks: &[Tok]) -> Vec<FnUnit> {
    let n = toks.len();
    let mut fns: Vec<FnUnit> = Vec::new();
    let mut depth = 0usize;
    // Depths at which a `#[cfg(test)] mod { ... }` body is open.
    let mut test_mods: Vec<usize> = Vec::new();
    let mut pending_cfg_test = false;
    let mut pending_test_attr = false;
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        if t.is_punct('#') && i + 1 < n && toks[i + 1].is_punct('[') {
            let mut j = i + 2;
            let mut bd = 1usize;
            let mut ids: Vec<&str> = Vec::new();
            while j < n && bd > 0 {
                if toks[j].is_punct('[') {
                    bd += 1;
                } else if toks[j].is_punct(']') {
                    bd -= 1;
                } else if toks[j].kind == TokKind::Ident {
                    ids.push(toks[j].text.as_str());
                }
                j += 1;
            }
            match ids.first() {
                Some(&"cfg") if ids.contains(&"test") => pending_cfg_test = true,
                Some(&"test") => pending_test_attr = true,
                _ => {}
            }
            i = j;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            pending_cfg_test = false;
            pending_test_attr = false;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while test_mods.last().is_some_and(|d| *d > depth) {
                test_mods.pop();
            }
        } else if t.is_punct(';') {
            pending_cfg_test = false;
            pending_test_attr = false;
        } else if t.is_ident("mod") && pending_cfg_test {
            // Scan to the module body (or `;` for out-of-line modules).
            let mut j = i + 1;
            while j < n && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < n && toks[j].is_punct('{') {
                depth += 1;
                test_mods.push(depth);
            }
            pending_cfg_test = false;
            pending_test_attr = false;
            i = j + 1;
            continue;
        } else if t.is_ident("fn") && i + 1 < n && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            // Find the body brace (or `;` for bodyless trait methods),
            // skipping over the parenthesized parameter list.
            let mut j = i + 2;
            let mut pd = 0isize;
            while j < n {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') {
                    pd += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    pd -= 1;
                } else if pd == 0 && (u.is_punct('{') || u.is_punct(';')) {
                    break;
                }
                j += 1;
            }
            if j < n && toks[j].is_punct('{') {
                let mut k = j + 1;
                let mut bd = 1usize;
                while k < n && bd > 0 {
                    if toks[k].is_punct('{') {
                        bd += 1;
                    } else if toks[k].is_punct('}') {
                        bd -= 1;
                    }
                    k += 1;
                }
                let body = (j + 1)..(k.saturating_sub(1));
                fns.push(FnUnit {
                    name,
                    line: t.line,
                    is_test: pending_test_attr || !test_mods.is_empty(),
                    body,
                });
            }
            pending_test_attr = false;
            // Keep scanning inside the body so nested fns are found too.
            i += 2;
            continue;
        }
        i += 1;
    }
    // A fn nested inside a test fn is test code as well.
    let test_ranges: Vec<Range<usize>> =
        fns.iter().filter(|f| f.is_test).map(|f| f.body.clone()).collect();
    for f in &mut fns {
        if !f.is_test && test_ranges.iter().any(|r| r.start <= f.body.start && f.body.end <= r.end)
        {
            f.is_test = true;
        }
    }
    fns
}

/// Index of the innermost function whose body contains token `idx`.
fn innermost(fns: &[FnUnit], idx: usize) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.body.contains(&idx))
        .min_by_key(|(_, f)| f.body.end - f.body.start)
        .map(|(i, _)| i)
}

fn fn_name_at(fns: &[FnUnit], idx: usize) -> String {
    innermost(fns, idx).map(|i| fns[i].name.clone()).unwrap_or_default()
}

fn is_call(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == TokKind::Ident && i + 1 < toks.len() && toks[i + 1].is_punct('(')
}

fn prev_is_dot(toks: &[Tok], i: usize) -> bool {
    i > 0 && toks[i - 1].is_punct('.')
}

/// Runs every rule over the parsed files and appends findings.
pub fn run_all(files: &[SourceFile], out: &mut Vec<Finding>) {
    rule_panic_in_lib(files, out);
    rule_lock_across_blocking(files, out);
    rule_lock_order_cycle(files, out);
    rule_unbounded_growth(files, out);
    rule_instant_in_chunk_loop(files, out);
    rule_relaxed_strong_mix(files, out);
    rule_raw_file_io_in_store(files, out);
    rule_detached_thread_spawn(files, out);
}

/// True for library source files (skips `src/bin/` entry points, which
/// are allowed to exit and panic on unrecoverable CLI errors).
fn is_lib_file(path: &str) -> bool {
    path.contains("/src/") && !path.contains("/src/bin/")
}

/// `panic-in-lib`: panic-family macros and `process::exit` in non-test
/// library code. The DSMS runs continuous queries in worker threads; a
/// panicking operator takes the whole pipeline down, so library code
/// must surface failures as typed errors instead.
fn rule_panic_in_lib(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files.iter().filter(|f| is_lib_file(&f.path)) {
        let toks = &f.toks;
        for i in 0..toks.len() {
            let hit = if is_macro(toks, i, "panic")
                || is_macro(toks, i, "todo")
                || is_macro(toks, i, "unimplemented")
            {
                Some(format!("`{}!` in non-test library code", toks[i].text))
            } else if toks[i].is_ident("exit")
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("process")
                && is_call(toks, i)
            {
                Some("`process::exit` in non-test library code".to_string())
            } else {
                None
            };
            if let Some(msg) = hit {
                match innermost(&f.fns, i) {
                    Some(fi) if f.fns[fi].is_test => {}
                    located => out.push(Finding {
                        rule: "panic-in-lib",
                        file: f.path.clone(),
                        line: toks[i].line,
                        function: located.map(|fi| f.fns[fi].name.clone()).unwrap_or_default(),
                        message: format!(
                            "{msg}; return a typed error instead (operators must not take the \
                             pipeline down)"
                        ),
                    }),
                }
            }
        }
    }
}

fn is_macro(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_ident(name) && i + 1 < toks.len() && toks[i + 1].is_punct('!')
}

/// Methods that can block the calling thread indefinitely. `join` is
/// deliberately absent: `Path::join` and `[str]::join` are pervasive
/// and name-collide with `JoinHandle::join` under a token-level lexer.
const BLOCKING_METHODS: &[&str] =
    &["send", "recv", "recv_timeout", "sleep", "wait", "wait_timeout"];

/// Identifiers that acquire a lock guard.
const LOCK_CALLS: &[&str] = &["lock", "lock_opt", "try_lock"];

/// A let-bound lock guard currently in scope.
struct Guard {
    var: String,
    lock: String,
    depth: usize,
    line: u32,
}

/// Parses `let [mut] g = ...lock...;` starting at the `let` token.
/// Returns `(guard_var, lock_name, statement_end)` when the statement
/// acquires a lock; `statement_end` is the index just past the `;`.
fn parse_let_guard(toks: &[Tok], i: usize) -> (Option<(String, String)>, usize) {
    let n = toks.len();
    let mut j = i + 1;
    if j < n && toks[j].is_ident("mut") {
        j += 1;
    }
    // Accept `let g`, `let Some(g)`, `let Ok(g)` shapes.
    let var = if j < n && toks[j].kind == TokKind::Ident {
        if (toks[j].is_ident("Some") || toks[j].is_ident("Ok"))
            && j + 1 < n
            && toks[j + 1].is_punct('(')
        {
            let mut k = j + 2;
            if k < n && toks[k].is_ident("mut") {
                k += 1;
            }
            (k < n && toks[k].kind == TokKind::Ident).then(|| toks[k].text.clone())
        } else {
            Some(toks[j].text.clone())
        }
    } else {
        None
    };
    // Scan to the end of the statement, tracking nesting so `;` inside
    // block expressions and closures doesn't end it early. A lock call
    // inside nested braces is scoped to that block, not to the binding
    // (`let snapshot = { let g = x.lock(); g.clone() };`), so only
    // brace-depth-0 lock calls make the binding a guard.
    let mut end = j;
    let mut bd = 0isize;
    let mut brace = 0isize;
    let mut lock_at = None;
    while end < n {
        let t = &toks[end];
        if t.is_punct('{') {
            bd += 1;
            brace += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            bd += 1;
        } else if t.is_punct('}') {
            bd -= 1;
            brace -= 1;
            if bd < 0 {
                break;
            }
        } else if t.is_punct(')') || t.is_punct(']') {
            bd -= 1;
            if bd < 0 {
                break;
            }
        } else if t.is_punct(';') && bd == 0 {
            end += 1;
            break;
        } else if brace == 0 && lock_at.is_none() {
            if let Some(name) = lock_name_at(toks, end, n) {
                lock_at = Some((end, name));
            }
        }
        end += 1;
    }
    // A method chained after the lock (past poison handling) consumes
    // the guard within the statement — `slot.lock().unwrap().take()`
    // binds the *taken value*, not the guard.
    let lock = lock_at.filter(|(k, _)| guard_survives_chain(toks, *k, end)).map(|(_, n)| n);
    match (var, lock) {
        (Some(v), Some(l)) => (Some((v, l)), end),
        _ => (None, end),
    }
}

/// True when the method chain following the lock call at `k` leaves the
/// guard itself bound: only poison-handling adapters may follow.
fn guard_survives_chain(toks: &[Tok], k: usize, end: usize) -> bool {
    const KEEPS_GUARD: &[&str] = &["unwrap", "expect", "unwrap_or_else"];
    let mut j = k + 1; // opening paren of the lock call
    loop {
        // Skip the call's argument list.
        if j >= end || !toks[j].is_punct('(') {
            return true;
        }
        let mut pd = 1isize;
        j += 1;
        while j < end && pd > 0 {
            if toks[j].is_punct('(') {
                pd += 1;
            } else if toks[j].is_punct(')') {
                pd -= 1;
            }
            j += 1;
        }
        if j >= end || !toks[j].is_punct('.') {
            return true;
        }
        let m = j + 1;
        if m >= end || toks[m].kind != TokKind::Ident {
            return true;
        }
        if !KEEPS_GUARD.contains(&toks[m].text.as_str()) {
            return false;
        }
        j = m + 1;
    }
}

/// When token `k` is a lock-acquiring call, names the lock: the field
/// receiver for `x.subs.lock()` shapes, or the last identifier of the
/// argument for `lock_opt(&self.subs)` shapes.
fn lock_name_at(toks: &[Tok], k: usize, limit: usize) -> Option<String> {
    if !LOCK_CALLS.contains(&toks[k].text.as_str()) || !is_call(toks, k) {
        return None;
    }
    if prev_is_dot(toks, k) {
        return (k >= 2 && toks[k - 2].kind == TokKind::Ident).then(|| toks[k - 2].text.clone());
    }
    // Free helper: take the last identifier inside the argument list.
    let mut j = k + 2;
    let mut pd = 1isize;
    let mut last = None;
    while j < limit && pd > 0 {
        if toks[j].is_punct('(') {
            pd += 1;
        } else if toks[j].is_punct(')') {
            pd -= 1;
        } else if toks[j].kind == TokKind::Ident && !toks[j].is_ident("self") {
            last = Some(toks[j].text.clone());
        }
        j += 1;
    }
    last
}

/// `lock-across-blocking`: a potentially-blocking call (`send`, `recv`,
/// `sleep`, `join`, ...) while a let-bound lock guard is live. This is
/// the exact shape of the fan-out deadlock fixed in the DSMS pump: a
/// guard held across `SyncSender::send` stalls every subscriber when
/// one queue is full.
fn rule_lock_across_blocking(files: &[SourceFile], out: &mut Vec<Finding>) {
    // Fixpoint over free functions: a free fn "may block" when its body
    // contains a direct blocking call or a call to a may-block free fn.
    let mut may_block: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut grew = false;
        for f in files {
            for fun in &f.fns {
                if may_block.contains(&fun.name) {
                    continue;
                }
                let blocks = fun.body.clone().any(|i| {
                    is_call(&f.toks, i)
                        && (BLOCKING_METHODS.contains(&f.toks[i].text.as_str())
                            || (!prev_is_dot(&f.toks, i) && may_block.contains(&f.toks[i].text)))
                });
                if blocks {
                    may_block.insert(fun.name.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    for f in files.iter().filter(|f| f.path.contains("/src/")) {
        for fun in f.fns.iter().filter(|fun| !fun.is_test) {
            scan_guard_region(f, fun, &may_block, out);
        }
    }
}

/// Walks one function body tracking live guards and reporting blocking
/// calls made while any guard is held.
fn scan_guard_region(
    f: &SourceFile,
    fun: &FnUnit,
    may_block: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let toks = &f.toks;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = fun.body.start;
    while i < fun.body.end {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t.is_ident("let") {
            let (guard, end) = parse_let_guard(toks, i);
            if let Some((var, lock)) = guard {
                guards.push(Guard { var, lock, depth, line: t.line });
            }
            // Step past the binding itself, but NOT past the rest of
            // the statement: the initializer may itself block.
            let _ = end;
            i += 1;
            continue;
        } else if t.is_ident("drop") && is_call(toks, i) && !prev_is_dot(toks, i) {
            // `drop(g)` / `drop(&g)` releases the guard early.
            let mut j = i + 2;
            while j < fun.body.end && !toks[j].is_punct(')') {
                if toks[j].kind == TokKind::Ident {
                    let name = toks[j].text.clone();
                    guards.retain(|g| g.var != name);
                }
                j += 1;
            }
        } else if !guards.is_empty() && is_call(toks, i) {
            let name = toks[i].text.as_str();
            let method = prev_is_dot(toks, i);
            let direct = BLOCKING_METHODS.contains(&name);
            let transitive = !method && may_block.contains(name) && !LOCK_CALLS.contains(&name);
            if let (true, Some(g)) = (direct || transitive, guards.last()) {
                let verb = if direct { "blocking call" } else { "call into blocking fn" };
                out.push(Finding {
                    rule: "lock-across-blocking",
                    file: f.path.clone(),
                    line: toks[i].line,
                    function: fun.name.clone(),
                    message: format!(
                        "{verb} `{name}` while guard `{}` of lock `{}` (taken line {}) is held; \
                         drop the guard or move the call outside the critical section",
                        g.var, g.lock, g.line
                    ),
                });
            }
        }
        i += 1;
    }
}

/// `lock-order-cycle`: builds the global lock acquisition-order graph
/// (edge A→B when lock B is taken while a guard of lock A is live) for
/// the runtime crates and reports any cycle — two threads taking the
/// locks in opposite orders can deadlock.
fn rule_lock_order_cycle(files: &[SourceFile], out: &mut Vec<Finding>) {
    struct Edge {
        to: String,
        file: String,
        line: u32,
        function: String,
    }
    let runtime = |p: &str| {
        p.starts_with("crates/core/")
            || p.starts_with("crates/dsms/")
            || p.starts_with("crates/store/")
    };
    let mut graph: BTreeMap<String, Vec<Edge>> = BTreeMap::new();
    for f in files.iter().filter(|f| runtime(&f.path) && f.path.contains("/src/")) {
        let toks = &f.toks;
        for fun in f.fns.iter().filter(|fun| !fun.is_test) {
            let mut guards: Vec<Guard> = Vec::new();
            let mut depth = 0usize;
            let mut i = fun.body.start;
            while i < fun.body.end {
                let t = &toks[i];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                } else if t.is_ident("drop") && is_call(toks, i) && !prev_is_dot(toks, i) {
                    let mut j = i + 2;
                    while j < fun.body.end && !toks[j].is_punct(')') {
                        if toks[j].kind == TokKind::Ident {
                            let name = toks[j].text.clone();
                            guards.retain(|g| g.var != name);
                        }
                        j += 1;
                    }
                } else if let Some(lock) = lock_name_at(toks, i, fun.body.end) {
                    for held in &guards {
                        if held.lock != lock {
                            graph.entry(held.lock.clone()).or_default().push(Edge {
                                to: lock.clone(),
                                file: f.path.clone(),
                                line: t.line,
                                function: fun.name.clone(),
                            });
                        }
                    }
                }
                if t.is_ident("let") {
                    let (guard, _end) = parse_let_guard(toks, i);
                    if let Some((var, lock)) = guard {
                        guards.push(Guard { var, lock, depth, line: t.line });
                    }
                }
                i += 1;
            }
        }
    }
    // Each cycle is reported once, rooted at its lexicographically
    // smallest lock.
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let starts: Vec<String> = graph.keys().cloned().collect();
    for start in &starts {
        let mut path = vec![start.clone()];
        walk_cycles(&graph, start, start, &mut path, &mut seen, out);
    }

    fn walk_cycles(
        graph: &BTreeMap<String, Vec<Edge>>,
        start: &str,
        cur: &str,
        path: &mut Vec<String>,
        seen: &mut BTreeSet<Vec<String>>,
        out: &mut Vec<Finding>,
    ) {
        let Some(edges) = graph.get(cur) else { return };
        for e in edges {
            if e.to == start {
                if seen.insert(path.clone()) {
                    let chain = path.join(" -> ");
                    out.push(Finding {
                        rule: "lock-order-cycle",
                        file: e.file.clone(),
                        line: e.line,
                        function: e.function.clone(),
                        message: format!(
                            "lock acquisition-order cycle: {chain} -> {start}; threads taking \
                             these locks in different orders can deadlock"
                        ),
                    });
                }
            } else if e.to.as_str() > start && !path.contains(&e.to) {
                path.push(e.to.clone());
                walk_cycles(graph, start, &e.to, path, seen, out);
                path.pop();
            }
        }
    }
}

/// Functions on the chunked hot path: called once per chunk (or more),
/// so unbounded collection growth there is a memory leak under a
/// continuous stream.
const HOT_FNS: &[&str] = &[
    "next_chunk",
    "next_element",
    "next_frame",
    "pack_queue",
    "drain_chunked",
    "run_chunked",
    "ingest_chunk",
    "pump",
    "fanout_all",
    "multicast",
    "shed_try_sub",
    // Morsel driver and worker pool (DESIGN.md §17): called once per
    // morsel, per delivered unit, or per pool job.
    "run_morsels",
    "run_kernel",
    "deliver_unit",
    "worker_loop",
    "submit",
    "wait_next",
];

/// Methods that bound a collection again.
const DRAIN_METHODS: &[&str] = &[
    "pop",
    "pop_front",
    "pop_back",
    "clear",
    "drain",
    "truncate",
    "split_off",
    "remove",
    "swap_remove",
    "take",
];

/// `unbounded-growth`: `push`/`push_back` onto a receiver inside a
/// hot-path function when nothing in the same file ever shrinks that
/// receiver. Streams are infinite; any collection that only grows on
/// the per-chunk path eventually exhausts memory.
fn rule_unbounded_growth(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files.iter().filter(|f| is_lib_file(&f.path)) {
        let toks = &f.toks;
        let mut drained: BTreeSet<String> = BTreeSet::new();
        for i in 0..toks.len() {
            if DRAIN_METHODS.contains(&toks[i].text.as_str())
                && is_call(toks, i)
                && prev_is_dot(toks, i)
                && i >= 2
                && toks[i - 2].kind == TokKind::Ident
            {
                drained.insert(toks[i - 2].text.clone());
            }
            // `mem::take(&mut self.held)` empties the collection too.
            if toks[i].is_ident("take") && is_call(toks, i) && !prev_is_dot(toks, i) {
                let mut j = i + 2;
                let mut last = None;
                while j < toks.len() && !toks[j].is_punct(')') {
                    if toks[j].kind == TokKind::Ident && !toks[j].is_ident("mut") {
                        last = Some(toks[j].text.clone());
                    }
                    j += 1;
                }
                if let Some(name) = last {
                    drained.insert(name);
                }
            }
            // Plain reassignment (`self.tracker = RangeTracker::new()`)
            // drops the old contents and bounds growth as well.
            if toks[i].kind == TokKind::Ident
                && i + 2 < toks.len()
                && toks[i + 1].is_punct('=')
                && !toks[i + 2].is_punct('=')
                && (i == 0 || !toks[i - 1].is_punct('='))
            {
                drained.insert(toks[i].text.clone());
            }
        }
        for fun in f.fns.iter().filter(|fun| !fun.is_test && HOT_FNS.contains(&fun.name.as_str())) {
            for i in fun.body.clone() {
                let is_push = (toks[i].is_ident("push") || toks[i].is_ident("push_back"))
                    && is_call(toks, i)
                    && prev_is_dot(toks, i)
                    && i >= 2
                    && toks[i - 2].kind == TokKind::Ident;
                if is_push {
                    let recv = toks[i - 2].text.clone();
                    if !drained.contains(&recv) {
                        out.push(Finding {
                            rule: "unbounded-growth",
                            file: f.path.clone(),
                            line: toks[i].line,
                            function: fun.name.clone(),
                            message: format!(
                                "`{recv}.{}(..)` on the chunk hot path with no pop/clear/drain/\
                                 truncate of `{recv}` anywhere in this file; a continuous stream \
                                 will grow it without bound",
                                toks[i].text
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `instant-in-chunk-loop`: `Instant::now()` inside a loop that pulls
/// chunks. PR 6 established the 1-in-16 sampled-clock discipline for
/// per-chunk timing (`PULL_SAMPLE_EVERY`); a syscall per chunk undoes
/// the vectorization win.
fn rule_instant_in_chunk_loop(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files.iter().filter(|f| is_lib_file(&f.path)) {
        let toks = &f.toks;
        for fun in f.fns.iter().filter(|fun| !fun.is_test) {
            let mut i = fun.body.start;
            while i < fun.body.end {
                if toks[i].is_ident("loop") || toks[i].is_ident("while") || toks[i].is_ident("for")
                {
                    if let Some(close) = loop_extent(toks, i, fun.body.end) {
                        let pulls =
                            (i..close).any(|k| toks[k].is_ident("next_chunk") && is_call(toks, k));
                        if pulls {
                            for k in i..close {
                                if toks[k].is_ident("Instant")
                                    && k + 3 < close
                                    && toks[k + 1].is_punct(':')
                                    && toks[k + 2].is_punct(':')
                                    && toks[k + 3].is_ident("now")
                                {
                                    out.push(Finding {
                                        rule: "instant-in-chunk-loop",
                                        file: f.path.clone(),
                                        line: toks[k].line,
                                        function: fun.name.clone(),
                                        message: "`Instant::now()` inside a chunk-pulling loop; \
                                                  use the 1-in-16 sampled clock (PULL_SAMPLE_EVERY \
                                                  discipline) instead of a syscall per chunk"
                                            .to_string(),
                                    });
                                }
                            }
                            i = close;
                            continue;
                        }
                    }
                }
                i += 1;
            }
        }
    }
}

/// Given a `loop`/`while`/`for` keyword at `i`, returns the token index
/// just past the closing brace of the loop body.
fn loop_extent(toks: &[Tok], i: usize, limit: usize) -> Option<usize> {
    let mut j = i + 1;
    let mut pd = 0isize;
    while j < limit {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            pd += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            pd -= 1;
        } else if pd == 0 && t.is_punct('{') {
            break;
        } else if pd == 0 && t.is_punct(';') {
            return None;
        }
        j += 1;
    }
    if j >= limit {
        return None;
    }
    let mut bd = 1usize;
    j += 1;
    while j < limit && bd > 0 {
        if toks[j].is_punct('{') {
            bd += 1;
        } else if toks[j].is_punct('}') {
            bd -= 1;
        }
        j += 1;
    }
    Some(j)
}

/// Atomic accessor methods whose call sites carry an `Ordering`.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// `relaxed-strong-mix`: one atomic field accessed with `Relaxed` at
/// some sites and acquire/release orderings at others, anywhere in the
/// workspace. Mixing the two on one field usually means the field is
/// doing double duty as a statistic *and* a handoff flag — the Relaxed
/// sites silently break the handoff. (`SeqCst` alone is not flagged:
/// a Relaxed counter read by a SeqCst diagnostic dump is fine.)
fn rule_relaxed_strong_mix(files: &[SourceFile], out: &mut Vec<Finding>) {
    struct Site {
        file: String,
        line: u32,
        function: String,
        ordering: String,
    }
    let mut by_field: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    for f in files.iter().filter(|f| f.path.contains("/src/")) {
        let toks = &f.toks;
        for i in 0..toks.len() {
            if !(ATOMIC_METHODS.contains(&toks[i].text.as_str())
                && is_call(toks, i)
                && prev_is_dot(toks, i)
                && i >= 2)
            {
                continue;
            }
            let field = receiver_path(toks, i - 2);
            if field.is_empty() {
                continue;
            }
            // Scan the argument list for Ordering::X mentions.
            let mut j = i + 2;
            let mut pd = 1isize;
            while j < toks.len() && pd > 0 {
                if toks[j].is_punct('(') {
                    pd += 1;
                } else if toks[j].is_punct(')') {
                    pd -= 1;
                } else if toks[j].is_ident("Ordering")
                    && j + 3 < toks.len()
                    && toks[j + 1].is_punct(':')
                    && toks[j + 2].is_punct(':')
                {
                    by_field.entry(field.clone()).or_default().push(Site {
                        file: f.path.clone(),
                        line: toks[j].line,
                        function: fn_name_at(&f.fns, i),
                        ordering: toks[j + 3].text.clone(),
                    });
                    j += 3;
                }
                j += 1;
            }
        }
    }
    for (field, sites) in &by_field {
        let strong =
            sites.iter().any(|s| matches!(s.ordering.as_str(), "Acquire" | "Release" | "AcqRel"));
        let relaxed = sites.iter().any(|s| s.ordering == "Relaxed");
        if strong && relaxed {
            for s in sites.iter().filter(|s| s.ordering == "Relaxed") {
                out.push(Finding {
                    rule: "relaxed-strong-mix",
                    file: s.file.clone(),
                    line: s.line,
                    function: s.function.clone(),
                    message: format!(
                        "atomic field `{field}` mixes Relaxed (here) with acquire/release \
                         orderings elsewhere in the workspace; split the statistic from the \
                         handoff flag or upgrade this site"
                    ),
                });
            }
        }
    }
}

/// Builds the dotted receiver path ending at token `i` (an ident or
/// tuple index), e.g. `self.inner.hits` → `"inner.hits"`.
fn receiver_path(toks: &[Tok], i: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = i as isize;
    while j >= 0 {
        let t = &toks[j as usize];
        if t.kind == TokKind::Ident || t.kind == TokKind::Num {
            if !t.is_ident("self") {
                parts.push(t.text.clone());
            }
        } else {
            break;
        }
        if j >= 2 && toks[(j - 1) as usize].is_punct('.') {
            j -= 2;
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join(".")
}

/// Token index ranges of `#[cfg(test)] mod { ... }` bodies.
fn cfg_test_mod_ranges(toks: &[Tok]) -> Vec<Range<usize>> {
    let n = toks.len();
    let mut ranges = Vec::new();
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        if t.is_punct('#') && i + 1 < n && toks[i + 1].is_punct('[') {
            let mut j = i + 2;
            let mut bd = 1usize;
            let mut ids: Vec<&str> = Vec::new();
            while j < n && bd > 0 {
                if toks[j].is_punct('[') {
                    bd += 1;
                } else if toks[j].is_punct(']') {
                    bd -= 1;
                } else if toks[j].kind == TokKind::Ident {
                    ids.push(toks[j].text.as_str());
                }
                j += 1;
            }
            if ids.first() == Some(&"cfg") && ids.contains(&"test") {
                pending_cfg_test = true;
            }
            i = j;
            continue;
        }
        if t.is_ident("mod") && pending_cfg_test {
            let mut j = i + 1;
            while j < n && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < n && toks[j].is_punct('{') {
                let start = j + 1;
                let mut bd = 1usize;
                let mut k = start;
                while k < n && bd > 0 {
                    if toks[k].is_punct('{') {
                        bd += 1;
                    } else if toks[k].is_punct('}') {
                        bd -= 1;
                    }
                    k += 1;
                }
                ranges.push(start..k);
                pending_cfg_test = false;
                i = k;
                continue;
            }
            pending_cfg_test = false;
        } else if t.is_punct('{') || t.is_punct(';') {
            pending_cfg_test = false;
        }
        i += 1;
    }
    ranges
}

/// `raw-file-io-in-store`: direct `std::fs` / `File::` / `OpenOptions`
/// use in `crates/store` library code outside `vfs.rs`. Every byte the
/// archive touches must flow through the `Vfs` trait — a raw
/// filesystem call is invisible to the crash harness's fault injection
/// (torn writes, fsync failures, bit flips) and to the recovery
/// accounting, so the durability contract it participates in is
/// untested. Test code may use `std::fs` freely to set up and corrupt
/// fixtures.
fn rule_raw_file_io_in_store(files: &[SourceFile], out: &mut Vec<Finding>) {
    let in_scope = |p: &str| p.contains("crates/store/src/") && !p.ends_with("vfs.rs");
    for f in files.iter().filter(|f| in_scope(&f.path)) {
        let toks = &f.toks;
        let test_ranges = cfg_test_mod_ranges(toks);
        for i in 0..toks.len() {
            if test_ranges.iter().any(|r| r.contains(&i)) {
                continue;
            }
            let hit = if toks[i].is_ident("fs")
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("std")
            {
                Some("`std::fs`")
            } else if toks[i].is_ident("File")
                && i + 2 < toks.len()
                && toks[i + 1].is_punct(':')
                && toks[i + 2].is_punct(':')
            {
                Some("`File::`")
            } else if toks[i].is_ident("OpenOptions") {
                Some("`OpenOptions`")
            } else {
                None
            };
            if let Some(what) = hit {
                match innermost(&f.fns, i) {
                    Some(fi) if f.fns[fi].is_test => {}
                    located => out.push(Finding {
                        rule: "raw-file-io-in-store",
                        file: f.path.clone(),
                        line: toks[i].line,
                        function: located.map(|fi| f.fns[fi].name.clone()).unwrap_or_default(),
                        message: format!(
                            "{what} in crates/store outside vfs.rs; route archive I/O through \
                             the `Vfs` trait so fault injection and recovery accounting see \
                             every byte"
                        ),
                    }),
                }
            }
        }
    }
}

/// `detached-thread-spawn`: a statement-position `thread::spawn(..)`
/// in runtime-crate library code discards the `JoinHandle`, so the
/// thread can neither be joined on shutdown nor observed on panic.
/// Every runtime thread is owned: pool workers are named and joined on
/// drop, ingest/query/evaluator threads are held in handle vectors. A
/// spawn whose handle hits the floor leaks past shutdown and hides
/// crashes — bind it, store it, or route the work through the shared
/// `WorkerPool`.
fn rule_detached_thread_spawn(files: &[SourceFile], out: &mut Vec<Finding>) {
    let runtime = |p: &str| {
        p.starts_with("crates/core/")
            || p.starts_with("crates/dsms/")
            || p.starts_with("crates/store/")
    };
    for f in files.iter().filter(|f| runtime(&f.path) && is_lib_file(&f.path)) {
        let toks = &f.toks;
        let test_ranges = cfg_test_mod_ranges(toks);
        for i in 0..toks.len() {
            if test_ranges.iter().any(|r| r.contains(&i)) {
                continue;
            }
            // `thread::spawn(` — optionally prefixed by `std::`.
            if !(toks[i].is_ident("spawn")
                && is_call(toks, i)
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("thread"))
            {
                continue;
            }
            let mut start = i - 3;
            if start >= 3
                && toks[start - 1].is_punct(':')
                && toks[start - 2].is_punct(':')
                && toks[start - 3].is_ident("std")
            {
                start -= 3;
            }
            // Statement position: nothing consumes the handle. Any
            // other predecessor (`=`, `(`, `,`, `.`, an ident…) means
            // the spawn's result is bound, passed, or chained.
            let stmt_start = start == 0
                || toks[start - 1].is_punct(';')
                || toks[start - 1].is_punct('{')
                || toks[start - 1].is_punct('}');
            if !stmt_start {
                continue;
            }
            // A tail expression (`thread::spawn(..)` closing the body)
            // returns the handle to the caller: only a call terminated
            // by `;` drops it. Walk the argument parens to find out.
            let mut j = i + 1;
            let mut pd = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('(') {
                    pd += 1;
                } else if toks[j].is_punct(')') {
                    pd -= 1;
                    if pd == 0 {
                        break;
                    }
                }
                j += 1;
            }
            if !(j + 1 < toks.len() && toks[j + 1].is_punct(';')) {
                continue;
            }
            match innermost(&f.fns, i) {
                Some(fi) if f.fns[fi].is_test => {}
                located => out.push(Finding {
                    rule: "detached-thread-spawn",
                    file: f.path.clone(),
                    line: toks[i].line,
                    function: located.map(|fi| f.fns[fi].name.clone()).unwrap_or_default(),
                    message: "statement-position `thread::spawn` discards the `JoinHandle`; \
                              bind or store the handle (or use the runtime's `WorkerPool`) so \
                              the thread is joined on shutdown and its panics are observed"
                        .to_string(),
                }),
            }
        }
    }
}
