//! A comment- and string-aware Rust tokenizer.
//!
//! Deliberately tiny: geolint's rules need identifier/punctuation
//! streams with line numbers, not a full grammar. The lexer's one hard
//! job is to never be fooled by the things `grep` is fooled by —
//! comments (line, nested block, doc), string literals (plain, raw,
//! byte), char literals, and lifetimes.

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `lock`, `Ordering`, ...).
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct,
    /// String literal of any flavor (the text is the raw source slice).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (identifiers/numbers verbatim; punctuation is one
    /// character; literals keep their quotes).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes Rust source, skipping comments and whitespace entirely.
/// The lexer is lossy by design (no spans, no doc text) but never
/// misclassifies code inside comments or strings as code.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Nested block comments, per the Rust grammar.
                let mut depth = 1u32;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (tok, ni, nl) = lex_string(&b, i, line);
                toks.push(tok);
                i = ni;
                line = nl;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let (tok, ni, nl) = lex_raw_or_byte(&b, i, line);
                toks.push(tok);
                i = ni;
                line = nl;
            }
            '\'' => {
                let (tok, ni) = lex_quote(&b, i, line);
                toks.push(tok);
                i = ni;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Ident, text: b[start..i].iter().collect(), line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (is_ident_continue(b[i]) || b[i] == '.') {
                    // Stop a `0..10` range from being eaten as one number.
                    if b[i] == '.' && i + 1 < n && b[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Num, text: b[start..i].iter().collect(), line });
            }
            c => {
                toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
                i += 1;
            }
        }
    }
    toks
}

/// True when position `i` starts `r"`, `r#"`, `b"`, `br"`, `b'`, etc.
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < n && b[j] == '\'' {
            return true;
        }
    }
    if j < n && b[j] == 'r' {
        j += 1;
        while j < n && b[j] == '#' {
            j += 1;
        }
    }
    j < n && b[j] == '"' && j > i
}

fn lex_string(b: &[char], start: usize, mut line: u32) -> (Tok, usize, u32) {
    let tline = line;
    let n = b.len();
    let mut i = start + 1;
    while i < n {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                line += 1;
                i += 1;
            }
            '"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    (Tok { kind: TokKind::Str, text: b[start..i.min(n)].iter().collect(), line: tline }, i, line)
}

fn lex_raw_or_byte(b: &[char], start: usize, mut line: u32) -> (Tok, usize, u32) {
    let tline = line;
    let n = b.len();
    let mut i = start;
    if b[i] == 'b' {
        i += 1;
        if i < n && b[i] == '\'' {
            // Byte char `b'x'`.
            let (mut tok, ni) = lex_quote(b, i, line);
            tok.kind = TokKind::Char;
            return (tok, ni, line);
        }
    }
    let raw = i < n && b[i] == 'r';
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < n && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    // Opening quote.
    i += 1;
    while i < n {
        if b[i] == '\n' {
            line += 1;
            i += 1;
        } else if b[i] == '\\' && !raw {
            i += 2;
        } else if b[i] == '"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while raw && h < hashes && j < n && b[j] == '#' {
                h += 1;
                j += 1;
            }
            if !raw || h == hashes {
                i = j;
                break;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (Tok { kind: TokKind::Str, text: b[start..i.min(n)].iter().collect(), line: tline }, i, line)
}

/// Disambiguates char literals from lifetimes, starting at a `'`.
fn lex_quote(b: &[char], start: usize, line: u32) -> (Tok, usize) {
    let n = b.len();
    // `'\x'` escape char.
    if start + 1 < n && b[start + 1] == '\\' {
        let mut i = start + 2;
        while i < n && b[i] != '\'' {
            i += 1;
        }
        i = (i + 1).min(n);
        return (Tok { kind: TokKind::Char, text: b[start..i].iter().collect(), line }, i);
    }
    // `'c'` plain char (exactly one char then a closing quote).
    if start + 2 < n && b[start + 2] == '\'' && b[start + 1] != '\'' {
        return (
            Tok { kind: TokKind::Char, text: b[start..start + 3].iter().collect(), line },
            start + 3,
        );
    }
    // Otherwise: a lifetime (`'a`, `'static`) — consume the identifier.
    let mut i = start + 1;
    while i < n && is_ident_continue(b[i]) {
        i += 1;
    }
    (Tok { kind: TokKind::Lifetime, text: b[start..i].iter().collect(), line }, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // panic!("not real")
            /* lock().send() /* nested */ still comment */
            let s = "panic!(\"in a string\")";
            let r = r#"lock().send("raw")"#;
            real();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"send".to_string()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn block_comment_newlines_counted() {
        let toks = lex("/* a\nb\nc */ x");
        assert_eq!(toks[0].line, 3);
        assert_eq!(toks[0].text, "x");
    }
}
