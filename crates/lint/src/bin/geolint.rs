//! `geolint` — the workspace's first-party static analyzer.
//!
//! ```text
//! geolint [--root DIR] [--allow FILE] [--json]
//! ```
//!
//! Scans the `src/` trees of the first-party crates, applies the rule
//! catalog (DESIGN.md §14), screens findings through the allowlist
//! (default: `ROOT/geolint.allow` when present), and prints a report.
//!
//! Exit codes: `0` clean, `1` findings remain or the allowlist has
//! stale entries, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use geostreams_lint::{
    collect_workspace_sources, lint_files, render_human, render_json, Allowlist,
};

struct Opts {
    root: PathBuf,
    allow: Option<PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut root = PathBuf::from(".");
    let mut allow = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--allow" => {
                allow = Some(PathBuf::from(args.next().ok_or("--allow needs a file")?));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                return Err("usage: geolint [--root DIR] [--allow FILE] [--json]".to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Opts { root, allow, json })
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let files = collect_workspace_sources(&opts.root)?;
    if files.is_empty() {
        return Err(format!(
            "no first-party sources under {} (is --root the repository root?)",
            opts.root.display()
        ));
    }
    let findings = lint_files(&files);
    let allow_path = match &opts.allow {
        Some(p) => Some(p.clone()),
        None => {
            let default = opts.root.join("geolint.allow");
            default.is_file().then_some(default)
        }
    };
    let allow = match allow_path {
        Some(p) => {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| format!("read allowlist {}: {e}", p.display()))?;
            Allowlist::parse(&text)?
        }
        None => Allowlist::default(),
    };
    let screened = allow.screen(findings);
    let report = if opts.json { render_json(&screened) } else { render_human(&screened) };
    print!("{report}");
    Ok(screened.kept.is_empty() && screened.unused.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("geolint: {msg}");
            ExitCode::from(2)
        }
    }
}
