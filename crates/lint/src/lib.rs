//! # geolint: first-party static analysis for the GeoStreams workspace
//!
//! A comment/string-aware tokenizer plus a catalog of workspace-specific
//! rules (DESIGN.md §14). geolint exists because the properties this
//! workspace cares about — no panics on the operator path, no lock
//! guard held across a blocking channel call, a consistent lock
//! acquisition order, bounded growth on the chunk hot path, the sampled
//! clock discipline, coherent atomics orderings — are *cross-cutting
//! protocol invariants*, not syntax, and `grep` cannot see past a
//! comment or a string literal.
//!
//! The engine is pure (`lint_files` over `(path, text)` pairs); the
//! `geolint` binary adds filesystem walking, the allowlist, and exit
//! codes for CI (`scripts/lint_gate.sh`).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::Path;

use rules::SourceFile;

/// First-party crates scanned by the `geolint` binary. The shim crates
/// (`serde*`, `criterion`) mirror external APIs and are exempt.
pub const FIRST_PARTY_CRATES: &[&str] =
    &["bench", "core", "dsms", "geo", "lint", "raster", "satsim", "store"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code, e.g. `panic-in-lib`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Enclosing function name (empty at module scope).
    pub function: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fun = if self.function.is_empty() { "-" } else { &self.function };
        write!(f, "{}:{}: [{}] (fn {}) {}", self.file, self.line, self.rule, fun, self.message)
    }
}

/// Lints a set of `(path, source)` pairs with every rule. Paths should
/// be workspace-relative with forward slashes; cross-file rules (lock
/// ordering, atomics pairing) see the whole set at once. Findings come
/// back sorted by `(file, line, rule)` and deduplicated, so repeated
/// runs over identical input are byte-identical.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    let mut findings = Vec::new();
    rules::run_all(&parsed, &mut findings);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    findings
}

/// One allowlist entry: `rule file-substring function justification...`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule code the entry suppresses.
    pub rule: String,
    /// Substring the finding's file path must contain.
    pub file: String,
    /// Exact function name, or `*` for any.
    pub function: String,
    /// Why the finding is acceptable (required, shown in reports).
    pub justification: String,
    /// 1-indexed line in the allowlist file (for drift reports).
    pub line: u32,
}

impl AllowEntry {
    fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && f.file.contains(&self.file)
            && (self.function == "*" || self.function == f.function)
    }
}

/// The result of applying an allowlist to a finding set.
#[derive(Debug)]
pub struct Screened {
    /// Findings not covered by any entry — these gate CI.
    pub kept: Vec<Finding>,
    /// Count of findings suppressed by the allowlist.
    pub allowed: usize,
    /// Entries that matched nothing: stale suppressions ("drift") that
    /// must be deleted so the allowlist never outlives its findings.
    pub unused: Vec<AllowEntry>,
}

/// A parsed allowlist file.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format: one entry per line as
    /// `rule file-substring function justification...`; blank lines and
    /// `#` comments are skipped. A missing justification is an error —
    /// every suppression must say why.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, char::is_whitespace);
            let (rule, file, function, just) =
                (parts.next(), parts.next(), parts.next(), parts.next());
            match (rule, file, function, just) {
                (Some(r), Some(f), Some(fun), Some(j)) if !j.trim().is_empty() => {
                    entries.push(AllowEntry {
                        rule: r.to_string(),
                        file: f.to_string(),
                        function: fun.to_string(),
                        justification: j.trim().to_string(),
                        line: idx as u32 + 1,
                    });
                }
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `rule file-substring function \
                         justification...`, got `{line}`",
                        idx + 1
                    ));
                }
            }
        }
        Ok(Allowlist { entries })
    }

    /// Splits findings into kept / allowed and reports unused entries.
    pub fn screen(&self, findings: Vec<Finding>) -> Screened {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut allowed = 0usize;
        for f in findings {
            let hit = self.entries.iter().position(|e| e.matches(&f));
            match hit {
                Some(i) => {
                    used[i] = true;
                    allowed += 1;
                }
                None => kept.push(f),
            }
        }
        let unused =
            self.entries.iter().zip(&used).filter(|(_, u)| !**u).map(|(e, _)| e.clone()).collect();
        Screened { kept, allowed, unused }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a screened report as JSON. The output is fully determined by
/// the (sorted) findings, so two runs over the same tree are
/// byte-identical — `scripts/lint_gate.sh` diffs exactly this.
pub fn render_json(s: &Screened) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in s.kept.iter().enumerate() {
        let sep = if i + 1 == s.kept.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"function\": \"{}\", \
             \"message\": \"{}\"}}{sep}\n",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.function),
            json_escape(&f.message),
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"allowed\": {},\n", s.allowed));
    out.push_str("  \"unused_allow_entries\": [\n");
    for (i, e) in s.unused.iter().enumerate() {
        let sep = if i + 1 == s.unused.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"line\": {}, \"rule\": \"{}\", \"file\": \"{}\", \"function\": \"{}\"}}{sep}\n",
            e.line,
            json_escape(&e.rule),
            json_escape(&e.file),
            json_escape(&e.function),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a screened report for humans.
pub fn render_human(s: &Screened) -> String {
    let mut out = String::new();
    for f in &s.kept {
        out.push_str(&format!("{f}\n"));
    }
    for e in &s.unused {
        out.push_str(&format!(
            "geolint.allow:{}: stale entry `{} {} {}` matches no finding; delete it\n",
            e.line, e.rule, e.file, e.function
        ));
    }
    out.push_str(&format!(
        "geolint: {} finding(s), {} allowed, {} stale allowlist entr{}\n",
        s.kept.len(),
        s.allowed,
        s.unused.len(),
        if s.unused.len() == 1 { "y" } else { "ies" }
    ));
    out
}

/// Collects `(relative_path, source)` for every `.rs` file under the
/// `src/` trees of the first-party crates, sorted by path so runs are
/// deterministic.
pub fn collect_workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for krate in FIRST_PARTY_CRATES {
        let dir = root.join("crates").join(krate).join("src");
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        out.push((rel, text));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut children: Vec<_> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        children.push(entry.path());
    }
    children.sort();
    for path in children {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, function: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 10,
            function: function.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn allowlist_screens_and_reports_drift() {
        let allow = Allowlist::parse(
            "# comment\n\
             panic-in-lib core/src/exec.rs run_chunked sampled clock\n\
             unbounded-growth store/src/ingest.rs * bounded by frame size\n",
        )
        .unwrap();
        let findings = vec![
            finding("panic-in-lib", "crates/core/src/exec.rs", "run_chunked"),
            finding("panic-in-lib", "crates/core/src/exec.rs", "other_fn"),
        ];
        let s = allow.screen(findings);
        assert_eq!(s.allowed, 1);
        assert_eq!(s.kept.len(), 1);
        assert_eq!(s.kept[0].function, "other_fn");
        assert_eq!(s.unused.len(), 1);
        assert_eq!(s.unused[0].rule, "unbounded-growth");
    }

    #[test]
    fn allowlist_rejects_missing_justification() {
        assert!(Allowlist::parse("panic-in-lib file fn\n").is_err());
        assert!(Allowlist::parse("panic-in-lib file\n").is_err());
    }

    #[test]
    fn json_output_is_stable_across_runs() {
        let files = vec![(
            "crates/core/src/x.rs".to_string(),
            "pub fn f() { panic!(\"boom\") }\n".to_string(),
        )];
        let a = render_json(&Allowlist::default().screen(lint_files(&files)));
        let b = render_json(&Allowlist::default().screen(lint_files(&files)));
        assert_eq!(a, b);
        assert!(a.contains("panic-in-lib"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let s = json_escape("a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }
}
