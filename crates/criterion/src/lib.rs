//! In-repo `criterion` shim for offline builds.
//!
//! The real criterion crate is unavailable (no network access to
//! crates.io), so this crate provides the subset of its API that the
//! workspace's benches use — `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, `criterion_group!`, `criterion_main!` — with a
//! deliberately simple measurement loop: a short warm-up, then a fixed
//! number of timed iterations, reporting mean ns/iter on stdout. No
//! statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark (recorded, reported alongside).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter, for groups benching one function at many sizes.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `iters` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: the shim exists to keep benches compiling and
        // runnable, not to produce publication-quality numbers.
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into_id(), self.iters, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: self.iters, throughput: None, _c: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares throughput for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        run_bench(&id, self.iters, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, iters: u64, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = match tp {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:.1} Melem/s", n as f64 / per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / per_iter * 1e9 / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench {id}: {per_iter:.0} ns/iter{rate}");
}

/// Declares a group function running each target with a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_groups_and_functions() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("standalone", |b| b.iter(|| calls += 1));
        // warm-up + 3 timed iterations
        assert_eq!(calls, 4);
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(5));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.bench_function("plain", |b| b.iter(|| ()));
        group.finish();
    }
}
