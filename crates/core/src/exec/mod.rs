//! Pull-based pipeline executor.
//!
//! The §4 prototype's "Execution" box: drives an operator pipeline to
//! completion (or sector by sector), collecting the per-operator
//! statistics that the experiment suite reports. Every run also times
//! root pulls into a lock-free [`obs::Histogram`] so reports carry
//! latency percentiles alongside the paper's buffered-points peaks.
//!
//! The driver is chunk-native: it pulls whole point runs via
//! [`GeoStream::next_chunk`] and times pulls with the sampled-clock
//! discipline ([`SampledClock`]): one `Instant` pair every
//! [`PULL_SAMPLE_EVERY`](crate::obs::PULL_SAMPLE_EVERY)th pull, with
//! intervening pulls charged at the last measured per-element cost, so
//! `pull_latency.count` stays element-denominated while observation
//! overhead drops below two clock reads per run.
//!
//! Two sibling modules extend the driver across cores:
//!
//! * [`pool`] — a fixed work-stealing [`WorkerPool`] with per-worker
//!   chunk recycling and an order-restoring [`OrderedCollector`];
//! * [`morsel`] — the morsel-driven parallel driver: partitions the
//!   input into sector/frame morsels, runs the partitionable operator
//!   suffix on pool workers, and merges results back in lattice order
//!   so output is byte-identical to [`run_chunked`] at every budget
//!   and worker count.

pub mod morsel;
pub mod pool;

pub use morsel::{
    compile_stages, run_morsels, split_and_compile, split_parallel, CompiledStages, MorselReport,
    ParallelSplit, StageSpec,
};
pub use pool::{OrderedCollector, WorkerPool, WorkerStatsSnapshot};

use crate::model::{ChunkOrMarker, Element, GeoStream, Marker, DEFAULT_CHUNK_BUDGET};
use crate::obs::{Histogram, HistogramSnapshot, PipelineObs, SampledClock, TraceKind};
use crate::ops::ChunkProtocolChecker;
use crate::stats::OpReport;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Result of draining a pipeline.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock time spent pulling the pipeline.
    pub wall: Duration,
    /// Total elements produced by the pipeline root.
    pub elements: u64,
    /// Points delivered by the pipeline root.
    pub points_delivered: u64,
    /// Sectors completed.
    pub sectors: u64,
    /// Per-operator statistics, upstream first.
    pub per_op: Vec<OpReport>,
    /// Per-element pull latency at the pipeline root (nanoseconds).
    pub pull_latency: HistogramSnapshot,
    /// Stream-protocol violations the debug-build
    /// [`ChunkProtocolChecker`] observed at the pipeline root (marker
    /// bracketing breaks, chunks crossing frame/sector edges). Always 0
    /// in release builds, where the checker compiles out.
    pub protocol_violations: u64,
}

impl RunReport {
    /// Peak buffered points across all operators (the paper's space
    /// measure).
    pub fn peak_buffered_points(&self) -> u64 {
        self.per_op.iter().map(|r| r.stats.buffered_points_peak).max().unwrap_or(0)
    }

    /// Peak buffered bytes across all operators.
    pub fn peak_buffered_bytes(&self) -> u64 {
        self.per_op.iter().map(|r| r.stats.buffered_bytes_peak).max().unwrap_or(0)
    }

    /// Sum of points consumed across all operators (total work measure).
    pub fn total_points_processed(&self) -> u64 {
        self.per_op.iter().map(|r| r.stats.points_in).sum()
    }

    /// Nanoseconds of wall time per delivered point.
    pub fn ns_per_point(&self) -> f64 {
        if self.points_delivered == 0 {
            return 0.0;
        }
        self.wall.as_nanos() as f64 / self.points_delivered as f64
    }

    /// Median root pull latency in nanoseconds.
    pub fn pull_p50_ns(&self) -> u64 {
        self.pull_latency.p50()
    }

    /// 95th-percentile root pull latency in nanoseconds.
    pub fn pull_p95_ns(&self) -> u64 {
        self.pull_latency.p95()
    }

    /// 99th-percentile root pull latency in nanoseconds.
    pub fn pull_p99_ns(&self) -> u64 {
        self.pull_latency.p99()
    }

    /// The latency snapshot of a named operator, if it was traced.
    pub fn op_pull_latency(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.per_op.iter().find(|r| r.name == name).and_then(|r| r.pull_latency.as_ref())
    }
}

/// Serializable summary of a [`RunReport`] (for the DSMS's JSON stats
/// delivery format).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Wall-clock microseconds spent pulling the pipeline.
    pub wall_us: u64,
    /// Total elements produced by the pipeline root.
    pub elements: u64,
    /// Points delivered by the pipeline root.
    pub points_delivered: u64,
    /// Sectors completed.
    pub sectors: u64,
    /// Peak buffered points across all operators.
    pub peak_buffered_points: u64,
    /// Peak buffered bytes across all operators.
    pub peak_buffered_bytes: u64,
    /// Median root pull latency (nanoseconds).
    #[serde(default)]
    pub pull_p50_ns: u64,
    /// 95th-percentile root pull latency (nanoseconds).
    #[serde(default)]
    pub pull_p95_ns: u64,
    /// 99th-percentile root pull latency (nanoseconds).
    #[serde(default)]
    pub pull_p99_ns: u64,
    /// Full root pull-latency histogram.
    #[serde(default)]
    pub pull_latency: HistogramSnapshot,
    /// Stream-protocol violations observed at the pipeline root (debug
    /// builds only; see [`RunReport::protocol_violations`]).
    #[serde(default)]
    pub protocol_violations: u64,
    /// Per-operator statistics, upstream first.
    pub per_op: Vec<OpReport>,
}

impl RunReport {
    /// Builds the serializable summary.
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            wall_us: self.wall.as_micros() as u64,
            elements: self.elements,
            points_delivered: self.points_delivered,
            sectors: self.sectors,
            peak_buffered_points: self.peak_buffered_points(),
            peak_buffered_bytes: self.peak_buffered_bytes(),
            pull_p50_ns: self.pull_p50_ns(),
            pull_p95_ns: self.pull_p95_ns(),
            pull_p99_ns: self.pull_p99_ns(),
            pull_latency: self.pull_latency.clone(),
            protocol_violations: self.protocol_violations,
            per_op: self.per_op.clone(),
        }
    }
}

/// Drains the pipeline, invoking `on_element` for every element.
pub fn run_with<S, F>(stream: &mut S, on_element: F) -> RunReport
where
    S: GeoStream,
    F: FnMut(&Element<S::V>),
{
    run_observed(stream, &PipelineObs::default(), on_element)
}

/// Drains the pipeline under an observation config: root pull latency
/// is always histogrammed; query start/end (and any operator-level
/// events from [`TracedStream`](crate::obs::TracedStream) wrappers in
/// the pipeline) land in `obs.trace` when present.
///
/// Elements are pulled in chunks of [`DEFAULT_CHUNK_BUDGET`] points and
/// flattened for the callback, so `on_element` still sees the exact
/// scalar element sequence.
pub fn run_observed<S, F>(stream: &mut S, obs: &PipelineObs, mut on_element: F) -> RunReport
where
    S: GeoStream,
    F: FnMut(&Element<S::V>),
{
    run_chunked(stream, obs, DEFAULT_CHUNK_BUDGET, |item| {
        item.for_each_element(&mut |el| on_element(el));
    })
}

/// The chunk-native driver: drains the pipeline pulling up to `budget`
/// points per call, invoking `on_item` once per run. Pull timing uses
/// the [`SampledClock`] discipline — a clock read only every
/// [`PULL_SAMPLE_EVERY`](crate::obs::PULL_SAMPLE_EVERY)th pull, backlog
/// charged at the last measured per-element cost — so
/// [`RunReport::pull_latency`] stays element-denominated (`count` equals
/// `elements`) without an `Instant` pair per chunk.
pub fn run_chunked<S, F>(
    stream: &mut S,
    obs: &PipelineObs,
    budget: usize,
    mut on_item: F,
) -> RunReport
where
    S: GeoStream,
    F: FnMut(&ChunkOrMarker<S::V>),
{
    let name = stream.schema().name.clone();
    if let Some(trace) = &obs.trace {
        trace.record(obs.query_id, &name, TraceKind::QueryStart, "");
    }
    let pull_ns = Histogram::new();
    // Live protocol cross-check: observes every pulled item in debug
    // builds; compiles to a no-op in release builds (the static
    // certificate already carries the proof).
    let mut checker = ChunkProtocolChecker::new();
    let mut clock = SampledClock::new();
    let start = Instant::now();
    let mut elements = 0u64;
    let mut points = 0u64;
    let mut sectors = 0u64;
    loop {
        let t0 = clock.begin();
        let Some(item) = stream.next_chunk(budget) else { break };
        let n = item.element_count().max(1);
        clock.end(t0, n, &pull_ns);
        elements += n;
        points += item.point_count() as u64;
        if let Some(Marker::SectorEnd(_)) = item.marker() {
            sectors += 1;
        }
        checker.observe(&item);
        on_item(&item);
        item.recycle();
    }
    clock.flush(&pull_ns);
    let wall = start.elapsed();
    let mut per_op = Vec::new();
    stream.collect_stats(&mut per_op);
    if let Some(trace) = &obs.trace {
        trace.record(
            obs.query_id,
            &name,
            TraceKind::QueryEnd,
            format!("{points} points, {sectors} sectors, {} µs", wall.as_micros()),
        );
    }
    RunReport {
        wall,
        elements,
        points_delivered: points,
        sectors,
        per_op,
        pull_latency: pull_ns.snapshot(),
        protocol_violations: checker.violations(),
    }
}

/// Drains the pipeline, discarding elements (pure measurement run).
/// Skips per-element flattening entirely: counters advance per chunk.
pub fn run_to_end<S: GeoStream>(stream: &mut S) -> RunReport {
    run_chunked(stream, &PipelineObs::default(), DEFAULT_CHUNK_BUDGET, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecStream;
    use crate::obs::TraceLog;
    use crate::ops::SpatialRestrict;
    use geostreams_geo::{Crs, LatticeGeoref, Rect, Region};
    use std::sync::Arc;

    fn source() -> VecStream<f32> {
        let lattice = LatticeGeoref::north_up(Crs::LatLon, Rect::new(0.0, 0.0, 10.0, 10.0), 10, 10);
        VecStream::sectors("src", lattice, 2, |s, c, r| f64::from(c + r) + s as f64)
    }

    #[test]
    fn run_counts_everything() {
        let mut s = source();
        let report = run_to_end(&mut s);
        assert_eq!(report.points_delivered, 200);
        assert_eq!(report.sectors, 2);
        // 2 sectors x (1 SectorStart + 10*(2 frame markers) + 100 points
        // + 1 SectorEnd).
        assert_eq!(report.elements, 2 * (1 + 20 + 100 + 1));
        assert_eq!(report.per_op.len(), 1);
    }

    #[test]
    fn report_aggregates_pipeline_stats() {
        let region = Region::Rect(Rect::new(0.0, 0.0, 5.0, 5.0));
        let mut op = SpatialRestrict::new(source(), region);
        let report = run_to_end(&mut op);
        assert_eq!(report.per_op.len(), 2);
        assert_eq!(report.per_op[1].name, "restrict_space");
        assert!(report.points_delivered < 200);
        assert_eq!(report.peak_buffered_points(), 0);
        assert!(report.total_points_processed() >= 200);
    }

    #[test]
    fn every_run_histograms_root_pulls() {
        let mut s = source();
        let report = run_to_end(&mut s);
        assert_eq!(report.pull_latency.count, report.elements);
        assert!(report.pull_p99_ns() >= report.pull_p50_ns());
    }

    #[test]
    fn observed_run_traces_query_boundaries() {
        let log = Arc::new(TraceLog::new(64));
        let obs = PipelineObs::for_query(3).with_trace(Arc::clone(&log));
        let mut s = source();
        let report = run_observed(&mut s, &obs, |_| {});
        assert_eq!(report.points_delivered, 200);
        let evs = log.drain();
        assert_eq!(evs.first().map(|e| e.kind), Some(TraceKind::QueryStart));
        assert_eq!(evs.last().map(|e| e.kind), Some(TraceKind::QueryEnd));
        assert!(evs.iter().all(|e| e.query_id == 3));
    }

    #[test]
    fn summary_serializes_to_json() {
        let mut s = source();
        let report = run_to_end(&mut s);
        let summary = report.summary();
        let json = serde_json::to_string(&summary).unwrap();
        let back: RunSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
        assert_eq!(back.points_delivered, 200);
        assert_eq!(back.pull_latency.count, report.elements);
    }

    #[test]
    fn callback_sees_all_elements() {
        let mut s = source();
        let mut n = 0u64;
        let report = run_with(&mut s, |_| n += 1);
        assert_eq!(n, report.elements);
    }

    #[test]
    fn chunked_driver_matches_scalar_element_order() {
        // The chunk-native driver must present the callback with the
        // exact element sequence the scalar pull loop produced.
        let scalar = source().drain_elements();
        let mut replayed = Vec::new();
        let mut s = source();
        let report = run_with(&mut s, |el| replayed.push(el.clone()));
        assert_eq!(replayed, scalar);
        assert_eq!(report.elements as usize, scalar.len());
    }

    #[test]
    fn runs_are_protocol_clean() {
        for budget in [1usize, 7, 64, DEFAULT_CHUNK_BUDGET] {
            let mut s = source();
            let report = run_chunked(&mut s, &PipelineObs::default(), budget, |_| {});
            assert_eq!(report.protocol_violations, 0, "budget {budget}");
        }
        let region = Region::Rect(Rect::new(0.0, 0.0, 5.0, 5.0));
        let mut op = SpatialRestrict::new(source(), region);
        assert_eq!(run_to_end(&mut op).protocol_violations, 0);
    }

    #[test]
    fn run_chunked_reports_per_element_latency_counts() {
        for budget in [1usize, 7, 64] {
            let mut s = source();
            let report = run_chunked(&mut s, &PipelineObs::default(), budget, |_| {});
            assert_eq!(report.pull_latency.count, report.elements, "budget {budget}");
            assert_eq!(report.points_delivered, 200);
            assert_eq!(report.sectors, 2);
        }
    }
}
