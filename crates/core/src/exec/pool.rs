//! Fixed work-stealing worker pool and order-restoring collector.
//!
//! The morsel driver (see [`super::morsel`]) needs two primitives:
//!
//! * [`WorkerPool`] — a fixed set of named OS threads, each with its own
//!   job deque. Submission round-robins across deques; an idle worker
//!   first drains its own deque front-to-back, then *steals* from the
//!   back of a sibling's deque, so skewed morsel costs still keep every
//!   core busy. Workers park with a bounded timeout when idle and are
//!   unparked on submit, so an idle pool burns no CPU.
//! * [`OrderedCollector`] — a sequence-number reorder buffer. Workers
//!   push results tagged with the morsel's submission sequence; the
//!   consumer pops them strictly in sequence order, which is what makes
//!   parallel output byte-identical to the serial pipeline.
//!
//! Locking discipline (geolint `lock-across-blocking`): every mutex
//! guard in this module lives inside an explicit block scope and is
//! dropped *before* any park or job execution. Parking uses
//! [`std::thread::park_timeout`] + [`std::thread::Thread::unpark`] —
//! token-based, so an unpark that races ahead of the park simply makes
//! the next park return immediately; the bounded timeout covers the
//! remaining window without a busy loop.
//!
//! Chunk buffers recycled on worker threads land in the worker's
//! thread-local pool tier and migrate to the shared tier at pool
//! shutdown (see [`crate::model::chunk`]), so cross-thread recycling
//! conserves buffers.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle, Thread};
use std::time::{Duration, Instant};

/// How long an idle worker (or waiting collector consumer) parks before
/// re-checking for work; bounds wakeup latency if an unpark is missed.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

#[derive(Default)]
struct WorkerStats {
    jobs: AtomicU64,
    steals: AtomicU64,
    busy_ns: AtomicU64,
}

/// Point-in-time counters for one worker, for metrics export and the
/// `geostreams_exec_worker_*` gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStatsSnapshot {
    /// Worker index within the pool.
    pub worker: u64,
    /// Jobs executed (own-queue pops plus steals).
    pub jobs: u64,
    /// Jobs obtained by stealing from a sibling's deque.
    pub steals: u64,
    /// Wall nanoseconds spent inside job closures.
    pub busy_ns: u64,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Job>>>,
    stats: Vec<WorkerStats>,
    shutdown: AtomicBool,
}

impl Shared {
    fn pop_own(&self, me: usize) -> Option<Job> {
        let mut q = self.queues[me].lock().unwrap_or_else(PoisonError::into_inner);
        q.pop_front()
    }

    fn steal(&self, me: usize) -> Option<Job> {
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            let job = {
                let mut q = self.queues[victim].lock().unwrap_or_else(PoisonError::into_inner);
                q.pop_back()
            };
            if job.is_some() {
                self.stats[me].steals.fetch_add(1, Ordering::Relaxed);
                return job;
            }
        }
        None
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        let job = match shared.pop_own(me) {
            Some(j) => Some(j),
            None => shared.steal(me),
        };
        match job {
            Some(job) => {
                // One Instant pair per *job* (a whole morsel), not per
                // chunk: the sampled-clock rule does not apply here.
                let t0 = Instant::now();
                job(me);
                let stats = &shared.stats[me];
                stats.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                stats.jobs.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                thread::park_timeout(PARK_TIMEOUT);
            }
        }
    }
}

/// A fixed pool of worker threads with per-worker work-stealing deques.
///
/// Dropping the pool signals shutdown, unparks every worker, and joins
/// them; jobs still queued at that point are executed first (workers
/// only exit once their queues and all steal targets are dry).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Unpark handles, index-aligned with `shared.queues`; `None` where
    /// OS thread creation failed (submission then skips that deque).
    threads: Vec<Option<Thread>>,
    live: Vec<usize>,
    next: AtomicUsize,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one deque is always created).
    /// If the OS refuses a thread, the pool degrades gracefully: fewer
    /// workers, and with zero workers jobs run inline on the submitting
    /// thread.
    pub fn new(workers: usize) -> WorkerPool {
        let n = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            stats: (0..n).map(|_| WorkerStats::default()).collect(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(n);
        let mut threads = Vec::with_capacity(n);
        let mut live = Vec::with_capacity(n);
        for i in 0..n {
            let sh = Arc::clone(&shared);
            let spawned = thread::Builder::new()
                .name(format!("exec-worker-{i}"))
                .spawn(move || worker_loop(&sh, i));
            match spawned {
                Ok(h) => {
                    threads.push(Some(h.thread().clone()));
                    handles.push(h);
                    live.push(i);
                }
                Err(_) => threads.push(None),
            }
        }
        WorkerPool { shared, handles, threads, live, next: AtomicUsize::new(0) }
    }

    /// Number of live worker threads.
    pub fn workers(&self) -> usize {
        self.live.len()
    }

    /// Submits a job; the closure receives the executing worker's index.
    /// Round-robins across live workers. With no live workers (thread
    /// spawn failed everywhere) the job runs inline, so submission never
    /// strands work.
    pub fn submit(&self, job: impl FnOnce(usize) + Send + 'static) {
        if self.live.is_empty() {
            job(0);
            return;
        }
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.live.len();
        let idx = self.live[slot];
        {
            let mut q = self.shared.queues[idx].lock().unwrap_or_else(PoisonError::into_inner);
            q.push_back(Box::new(job));
        }
        if let Some(t) = &self.threads[idx] {
            t.unpark();
        }
    }

    /// Per-worker counters (jobs, steals, busy time) since pool creation.
    pub fn stats(&self) -> Vec<WorkerStatsSnapshot> {
        self.shared
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| WorkerStatsSnapshot {
                worker: i as u64,
                jobs: s.jobs.load(Ordering::Relaxed),
                steals: s.steals.load(Ordering::Relaxed),
                busy_ns: s.busy_ns.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in self.threads.iter().flatten() {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers()).finish()
    }
}

struct CollectorState<T> {
    next: u64,
    ready: BTreeMap<u64, T>,
}

/// A sequence-number reorder buffer: producers [`push`](Self::push)
/// results tagged with their submission sequence from any thread; the
/// *constructing* thread pops them back in exact sequence order.
///
/// `wait_next` parks the consumer between arrivals; every push unparks
/// it. Only the thread that constructed the collector may call
/// `wait_next` (it is the one push unparks).
pub struct OrderedCollector<T> {
    inner: Mutex<CollectorState<T>>,
    consumer: Thread,
}

impl<T> OrderedCollector<T> {
    /// A collector whose consumer is the current thread, expecting
    /// sequences `0, 1, 2, …`.
    pub fn new() -> OrderedCollector<T> {
        OrderedCollector {
            inner: Mutex::new(CollectorState { next: 0, ready: BTreeMap::new() }),
            consumer: thread::current(),
        }
    }

    /// Delivers the result for sequence number `seq` (each sequence must
    /// be pushed exactly once).
    pub fn push(&self, seq: u64, item: T) {
        {
            let mut st = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            st.ready.insert(seq, item);
        }
        self.consumer.unpark();
    }

    /// Pops the next in-order result if it has arrived.
    pub fn try_next(&self) -> Option<T> {
        let mut st = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = st.next;
        let item = st.ready.remove(&seq)?;
        st.next += 1;
        Some(item)
    }

    /// Blocks (parking) until the next in-order result arrives. Call
    /// only from the constructing thread, and only when that sequence
    /// number is guaranteed to eventually be pushed.
    pub fn wait_next(&self) -> T {
        loop {
            if let Some(item) = self.try_next() {
                return item;
            }
            thread::park_timeout(PARK_TIMEOUT);
        }
    }

    /// Results buffered out of order, waiting for an earlier sequence.
    pub fn pending(&self) -> usize {
        let st = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        st.ready.len()
    }

    /// The next sequence number the consumer will pop.
    pub fn next_seq(&self) -> u64 {
        let st = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        st.next
    }
}

impl<T> Default for OrderedCollector<T> {
    fn default() -> Self {
        OrderedCollector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_executes_every_submitted_job() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(4);
            for _ in 0..64 {
                let c = Arc::clone(&counter);
                pool.submit(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop joins after draining.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn pool_stats_account_for_all_jobs() {
        let pool = WorkerPool::new(2);
        let gate = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let g = Arc::clone(&gate);
            pool.submit(move |_| {
                g.fetch_add(1, Ordering::Relaxed);
            });
        }
        while gate.load(Ordering::Relaxed) < 32 {
            thread::park_timeout(Duration::from_micros(50));
        }
        let total: u64 = pool.stats().iter().map(|s| s.jobs).sum();
        assert_eq!(total, 32);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn collector_restores_submission_order() {
        let collector = Arc::new(OrderedCollector::new());
        let pool = WorkerPool::new(3);
        for seq in 0..100u64 {
            let col = Arc::clone(&collector);
            pool.submit(move |_| {
                // Reverse-ish completion order within each worker queue.
                if seq % 3 == 0 {
                    thread::park_timeout(Duration::from_micros(200));
                }
                col.push(seq, seq * 10);
            });
        }
        for seq in 0..100u64 {
            assert_eq!(collector.wait_next(), seq * 10);
        }
        assert_eq!(collector.pending(), 0);
        assert_eq!(collector.next_seq(), 100);
    }

    #[test]
    fn try_next_holds_until_gap_fills() {
        let collector: OrderedCollector<&str> = OrderedCollector::new();
        collector.push(1, "b");
        assert!(collector.try_next().is_none(), "seq 0 missing");
        assert_eq!(collector.pending(), 1);
        collector.push(0, "a");
        assert_eq!(collector.try_next(), Some("a"));
        assert_eq!(collector.try_next(), Some("b"));
        assert!(collector.try_next().is_none());
    }

    #[test]
    fn worker_receives_its_index() {
        let pool = WorkerPool::new(2);
        let collector = Arc::new(OrderedCollector::new());
        for seq in 0..8u64 {
            let col = Arc::clone(&collector);
            pool.submit(move |w| col.push(seq, w));
        }
        for _ in 0..8 {
            let w = collector.wait_next();
            assert!(w < 2, "worker index in range, got {w}");
        }
    }
}
